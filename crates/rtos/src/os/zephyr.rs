//! Zephyr kernel model.
//!
//! Personality: `k_`-prefixed snake_case APIs, fully preemptive
//! scheduling with work queues, `k_heap`/`sys_heap` split, `k_msgq`
//! message queues, and the JSON library from Zephyr's `subsys/net`.
//! Hosts four Table-2 bugs: #1 (`sys_heap_stress`), #2
//! (`z_impl_k_msgq_get`), #3 (`json_obj_encode`) and #4 (`k_heap_init`).

use crate::api::{ApiDescriptor, InvokeResult, KArg, KernelFault};
use crate::bugs::BugId;
use crate::ctx::ExecCtx;
use crate::kernel::{Kernel, OsKind};
use crate::os::{a_bytes, a_enum, a_int, a_res, a_str, arg_bytes, arg_int, arg_str};
use crate::subsys::heap::{FreeListHeap, HeapError};
use crate::subsys::ipc::{IpcError, MsgQueue, Semaphore};
use crate::subsys::json;
use crate::subsys::sched::{Policy, SchedError, Scheduler};
use eof_hal::FaultKind;

/// Zephyr's K_FOREVER timeout encoding (all-ones).
pub const K_FOREVER: u64 = u64::MAX;

/// The `k_timeout_t` constructors the specification exposes.
const K_TIMEOUTS: &[(&str, u64)] = &[
    ("K_NO_WAIT", 0),
    ("K_MSEC_10", 10),
    ("K_MSEC_100", 100),
    ("K_SECONDS_1", 1_000),
    ("K_FOREVER", K_FOREVER),
];

/// PC-site ids for the driver layer's MMIO polls (replay keys on them).
const SITE_SPI_STATUS: u32 = 0x4700;
const SITE_SPI_DATA: u32 = 0x4710;
const SITE_I2C_STATUS: u32 = 0x4720;
const SITE_I2C_DATA: u32 = 0x4730;
const SITE_DMA_STATUS: u32 = 0x4740;

/// One k_heap instance.
struct KHeap {
    heap: FreeListHeap,
}

/// The Zephyr model.
pub struct ZephyrKernel {
    api: Vec<ApiDescriptor>,
    sched: Scheduler,
    msgqs: Vec<MsgQueue>,
    kheaps: Vec<KHeap>,
    sems: Vec<Semaphore>,
    /// Live allocation count across all kheaps (bug #1's gate).
    live_allocs: u32,
}

impl Default for ZephyrKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl ZephyrKernel {
    /// A freshly booted Zephyr.
    pub fn new() -> Self {
        ZephyrKernel {
            api: Self::build_api(),
            sched: Scheduler::new(Policy::Preemptive, 16, 15, 32, 256),
            msgqs: Vec::new(),
            kheaps: Vec::new(),
            sems: Vec::new(),
            live_allocs: 0,
        }
    }

    fn build_api() -> Vec<ApiDescriptor> {
        let mut v = Vec::new();
        let mut id = 0u16;
        let mut api = |name: &'static str,
                       args: Vec<crate::api::ArgMeta>,
                       returns: Option<&'static str>,
                       module: &'static str,
                       doc: &'static str| {
            let d = ApiDescriptor {
                id,
                name,
                args,
                returns,
                module,
                doc,
            };
            id += 1;
            d
        };
        v.push(api(
            "k_thread_create",
            vec![
                a_str("name", 32),
                a_int("prio", 0, 15),
                a_int("stack_size", 256, 8192),
            ],
            Some("thread"),
            "thread",
            "Create a thread under fully preemptive scheduling.",
        ));
        v.push(api(
            "k_thread_abort",
            vec![a_res("thread", "thread")],
            None,
            "thread",
            "Abort a thread.",
        ));
        v.push(api(
            "k_thread_suspend",
            vec![a_res("thread", "thread")],
            None,
            "thread",
            "Suspend a thread.",
        ));
        v.push(api(
            "k_thread_resume",
            vec![a_res("thread", "thread")],
            None,
            "thread",
            "Resume a thread.",
        ));
        v.push(api(
            "k_sleep",
            vec![a_res("thread", "thread"), a_int("ms", 0, 1000)],
            None,
            "thread",
            "Put a thread to sleep for a duration.",
        ));
        v.push(api(
            "k_yield",
            vec![],
            None,
            "kernel",
            "Yield the processor, running the scheduler.",
        ));
        v.push(api(
            "k_msgq_alloc_init",
            vec![a_int("max_msgs", 1, 16), a_int("msg_size", 1, 64)],
            Some("msgq"),
            "kernel",
            "Allocate and initialise a message queue.",
        ));
        v.push(api(
            "z_impl_k_msgq_put",
            vec![a_res("msgq", "msgq"), a_bytes("data", 64)],
            None,
            "kernel",
            "Put a message into a queue.",
        ));
        v.push(api(
            "z_impl_k_msgq_get",
            vec![
                a_res("msgq", "msgq"),
                a_enum("timeout", "k_timeout", K_TIMEOUTS),
            ],
            None,
            "kernel",
            "Get a message with a k_timeout_t; the agent bounds K_FOREVER waits.",
        ));
        v.push(api(
            "k_msgq_purge",
            vec![a_res("msgq", "msgq")],
            None,
            "kernel",
            "Discard all queued messages.",
        ));
        v.push(api(
            "k_heap_init",
            vec![a_int("size", 0, 8192), a_int("align", 0, 64)],
            Some("kheap"),
            "kheap",
            "Initialise a k_heap over a caller-supplied region.",
        ));
        v.push(api(
            "k_heap_alloc",
            vec![a_res("kheap", "kheap"), a_int("size", 1, 2048)],
            Some("mem"),
            "kheap",
            "Allocate from a k_heap.",
        ));
        v.push(api(
            "k_heap_free",
            vec![a_res("kheap", "kheap"), a_res("mem", "mem")],
            None,
            "kheap",
            "Free a k_heap allocation.",
        ));
        v.push(api(
            "sys_heap_stress",
            vec![a_int("ops", 1, 64), a_int("seed", 0, 1024)],
            None,
            "heap",
            "Run the sys_heap stress harness for a number of operations.",
        ));
        v.push(api(
            "k_sem_init",
            vec![a_int("initial", 0, 8), a_int("limit", 1, 8)],
            Some("sem"),
            "sem",
            "Initialise a semaphore.",
        ));
        v.push(api(
            "k_sem_take",
            vec![a_res("sem", "sem")],
            None,
            "sem",
            "Take a semaphore (no wait).",
        ));
        v.push(api(
            "k_sem_give",
            vec![a_res("sem", "sem")],
            None,
            "sem",
            "Give a semaphore.",
        ));
        v.push(api(
            "json_obj_parse",
            vec![a_bytes("json", 256)],
            None,
            "json",
            "Parse a JSON object with Zephyr's JSON library.",
        ));
        v.push(api(
            "json_obj_encode",
            vec![a_int("depth", 0, 16), a_int("width", 1, 4)],
            None,
            "json",
            "Encode an object descriptor tree to JSON.",
        ));
        v.push(api(
            "spi_transceive",
            vec![a_int("tx_len", 0, 64), a_int("rx_len", 0, 64)],
            None,
            "spi",
            "Full-duplex SPI transfer through the spi_context layer.",
        ));
        v.push(api(
            "i2c_read",
            vec![a_int("addr", 0, 127), a_int("len", 0, 32)],
            None,
            "i2c",
            "Master-mode I2C read from a slave address.",
        ));
        v.push(api(
            "dma_start",
            vec![a_int("channel", 0, 7), a_int("len", 0, 65536)],
            None,
            "dma",
            "Kick a DMA channel and return the programmed length.",
        ));
        v
    }

    fn map_sched(e: SchedError) -> InvokeResult {
        InvokeResult::Err(match e {
            SchedError::NameTooLong => -22,
            SchedError::BadPriority | SchedError::StackTooSmall => -22,
            SchedError::TooManyTasks => -12,
            SchedError::BadHandle => -3,
        })
    }

    fn map_ipc(e: IpcError) -> InvokeResult {
        InvokeResult::Err(match e {
            IpcError::Full => -105,
            IpcError::Empty | IpcError::WouldBlock => -11,
            IpcError::MsgTooBig => -22,
            _ => -1,
        })
    }
}

impl Kernel for ZephyrKernel {
    fn os(&self) -> OsKind {
        OsKind::Zephyr
    }

    fn on_interrupt(&mut self, ctx: &mut ExecCtx<'_>, line: u8, payload: &[u8]) -> InvokeResult {
        match line {
            eof_hal::irq::GPIO => {
                ctx.cov("zephyr::isr::gpio::entry");
                ctx.charge(3);
                // The callback gives the first semaphore, if any exists —
                // the canonical Zephyr ISR→thread handoff.
                if let Some(sem) = self.sems.first_mut() {
                    ctx.cov("zephyr::isr::gpio::sem_give");
                    let _ = sem.give(ctx, "zephyr::sem::k_sem_give");
                } else {
                    ctx.cov("zephyr::isr::gpio::no_consumer");
                }
                InvokeResult::Ok(0)
            }
            eof_hal::irq::SERIAL_RX => {
                ctx.cov("zephyr::isr::uart_rx::entry");
                ctx.charge(4 + payload.len() as u64 / 4);
                // RX data lands in the first message queue, if any.
                if let Some(q) = self.msgqs.first_mut() {
                    match q.put(
                        ctx,
                        "zephyr::kernel::k_msgq_put",
                        &payload[..payload.len().min(32)],
                    ) {
                        Ok(()) => ctx.cov("zephyr::isr::uart_rx::queued"),
                        Err(_) => ctx.cov("zephyr::isr::uart_rx::dropped"),
                    }
                }
                InvokeResult::Ok(payload.len() as u64)
            }
            eof_hal::irq::TIMER => {
                ctx.cov("zephyr::isr::tick::entry");
                self.sched.tick(ctx, "zephyr::kernel::k_yield");
                InvokeResult::Ok(self.sched.tick_count())
            }
            eof_hal::irq::SPI => {
                ctx.cov("zephyr::isr::spi_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::I2C => {
                ctx.cov("zephyr::isr::i2c_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::DMA => {
                ctx.cov("zephyr::isr::dma_done::entry");
                ctx.charge(4);
                let len = payload
                    .first_chunk::<4>()
                    .map(|b| u32::from_le_bytes(*b))
                    .unwrap_or(0);
                ctx.cov_var("zephyr::isr::dma_done::len_band", (len as u64 / 64).min(15));
                InvokeResult::Ok(len as u64)
            }
            _ => InvokeResult::Err(-38),
        }
    }

    fn api_table(&self) -> &[ApiDescriptor] {
        &self.api
    }

    fn exception_symbol(&self) -> &'static str {
        "z_fatal_error"
    }

    fn assert_symbol(&self) -> &'static str {
        "assert_post_action"
    }

    fn total_branch_sites(&self) -> usize {
        crate::image::total_sites(OsKind::Zephyr)
    }

    fn boot_banner(&self) -> Vec<String> {
        vec![
            "*** Booting Zephyr OS build 143b14b ***".into(),
            "sched: preemptive, 16 priorities".into(),
        ]
    }

    fn reset(&mut self, _ctx: &mut ExecCtx<'_>) {
        let api = std::mem::take(&mut self.api);
        *self = ZephyrKernel::new();
        self.api = api;
    }

    fn invoke(&mut self, ctx: &mut ExecCtx<'_>, api_id: u16, args: &[KArg]) -> InvokeResult {
        match api_id {
            // k_thread_create
            0 => match self.sched.create(
                ctx,
                "zephyr::thread::k_thread_create",
                arg_str(args, 0),
                arg_int(args, 1) as u8,
                arg_int(args, 2) as u32,
            ) {
                Ok(h) => {
                    // Silicon-only: userspace MPU partitioning per stack
                    // geometry.
                    if ctx.bus.silicon {
                        ctx.cov_var(
                            "zephyr::mpu::stack_region",
                            (arg_int(args, 2) / 512).min(15),
                        );
                    }
                    InvokeResult::Ok(h as u64)
                }
                Err(e) => Self::map_sched(e),
            },
            // k_thread_abort
            1 => match self.sched.delete(
                ctx,
                "zephyr::thread::k_thread_abort",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_sched(e),
            },
            // k_thread_suspend
            2 => match self.sched.suspend(
                ctx,
                "zephyr::thread::k_thread_suspend",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_sched(e),
            },
            // k_thread_resume
            3 => match self.sched.resume(
                ctx,
                "zephyr::thread::k_thread_resume",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_sched(e),
            },
            // k_sleep
            4 => match self.sched.delay(
                ctx,
                "zephyr::thread::k_sleep",
                arg_int(args, 0) as u32,
                arg_int(args, 1),
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_sched(e),
            },
            // k_yield
            5 => {
                self.sched.tick(ctx, "zephyr::kernel::k_yield");
                InvokeResult::Ok(self.sched.tick_count())
            }
            // k_msgq_alloc_init
            6 => {
                ctx.cov("zephyr::kernel::k_msgq_alloc_init::entry");
                let cap = arg_int(args, 0).clamp(1, 16) as usize;
                let size = arg_int(args, 1).clamp(1, 64) as u32;
                self.msgqs.push(MsgQueue::new(size, cap));
                InvokeResult::Ok(self.msgqs.len() as u64 - 1)
            }
            // z_impl_k_msgq_put
            7 => match self.msgqs.get_mut(arg_int(args, 0) as usize) {
                Some(q) => match q.put(ctx, "zephyr::kernel::k_msgq_put", arg_bytes(args, 1)) {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_ipc(e),
                },
                None => InvokeResult::Err(-3),
            },
            // z_impl_k_msgq_get — bug #2.
            8 => {
                let timeout = arg_int(args, 1);
                ctx.cov_var(
                    "zephyr::kernel::k_msgq_get::timeout_kind",
                    timeout.min(2000),
                );
                let Some(q) = self.msgqs.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-3);
                };
                // Bug #2: getting with K_FOREVER from a queue that was
                // purged dereferences the freed wait queue — the pending
                // thread pointer was dropped by the purge.
                if timeout == K_FOREVER && q.purged {
                    ctx.cov("zephyr::kernel::k_msgq_get::forever_purged");
                    ctx.klog("E: <err> os: r15/pc: z_impl_k_msgq_get");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B02MsgqGet,
                        FaultKind::Panic,
                        ">>> ZEPHYR FATAL ERROR 4: Kernel panic in z_impl_k_msgq_get",
                        vec!["z_impl_k_msgq_get", "k_msgq_get", "executor"],
                        false,
                    ));
                }
                match q.get(ctx, "zephyr::kernel::k_msgq_get") {
                    Ok(m) => InvokeResult::Ok(m.len() as u64),
                    Err(IpcError::Empty) if timeout == K_FOREVER => {
                        // Would block forever; the agent harness bounds
                        // the wait (syzkaller-style) and reports -EAGAIN.
                        ctx.cov("zephyr::kernel::k_msgq_get::block_forever");
                        ctx.charge(500);
                        InvokeResult::Err(-11)
                    }
                    Err(e) => Self::map_ipc(e),
                }
            }
            // k_msgq_purge
            9 => match self.msgqs.get_mut(arg_int(args, 0) as usize) {
                Some(q) => {
                    q.purge(ctx, "zephyr::kernel::k_msgq_purge");
                    InvokeResult::Ok(0)
                }
                None => InvokeResult::Err(-3),
            },
            // k_heap_init — bug #4.
            10 => {
                ctx.cov("zephyr::kheap::k_heap_init::entry");
                let size = arg_int(args, 0);
                let align = arg_int(args, 1);
                // Argument-shaped edges: every size band and alignment
                // value is its own basic block in the init fast paths.
                ctx.cov_var("zephyr::kheap::k_heap_init::size_band", (size / 16).min(64));
                ctx.cov_var("zephyr::kheap::k_heap_init::small_size", size.min(17));
                ctx.cov_var("zephyr::kheap::k_heap_init::align", align.min(64));
                if align > 0 {
                    ctx.cov("zephyr::kheap::k_heap_init::aligned");
                }
                // Bug #4: a region smaller than one chunk header with
                // the odd sub-word alignment 7 underflows the first-chunk
                // size computation; the init loop then scribbles past the
                // region and locks up.
                if size > 0 && size < 16 && align == 7 {
                    ctx.cov("zephyr::kheap::k_heap_init::underflow");
                    ctx.klog("E: sys_heap: chunk size underflow");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B04KHeapInit,
                        FaultKind::MemFault,
                        ">>> ZEPHYR FATAL ERROR 0: CPU exception in k_heap_init",
                        vec!["k_heap_init", "sys_heap_init", "chunk_set"],
                        true,
                    ));
                }
                if size == 0 {
                    ctx.cov("zephyr::kheap::k_heap_init::zero");
                    return InvokeResult::Err(-22);
                }
                self.kheaps.push(KHeap {
                    heap: FreeListHeap::new(size.min(8192) as u32),
                });
                InvokeResult::Ok(self.kheaps.len() as u64 - 1)
            }
            // k_heap_alloc
            11 => {
                let Some(kh) = self.kheaps.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-3);
                };
                match kh
                    .heap
                    .alloc(ctx, "zephyr::kheap::k_heap_alloc", arg_int(args, 1) as u32)
                {
                    Ok(h) => {
                        self.live_allocs += 1;
                        InvokeResult::Ok(h as u64)
                    }
                    Err(HeapError::OutOfMemory) => InvokeResult::Err(-12),
                    Err(_) => InvokeResult::Err(-22),
                }
            }
            // k_heap_free
            12 => {
                let Some(kh) = self.kheaps.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-3);
                };
                match kh
                    .heap
                    .free(ctx, "zephyr::kheap::k_heap_free", arg_int(args, 1) as u32)
                {
                    Ok(()) => {
                        self.live_allocs = self.live_allocs.saturating_sub(1);
                        InvokeResult::Ok(0)
                    }
                    Err(_) => InvokeResult::Err(-22),
                }
            }
            // sys_heap_stress — bug #1.
            13 => {
                ctx.cov("zephyr::heap::sys_heap_stress::entry");
                let ops = arg_int(args, 0).clamp(1, 64);
                let seed = arg_int(args, 1);
                // The stress harness walks a scratch heap; each op band
                // is its own edge so progress is visible to coverage.
                ctx.cov_var("zephyr::heap::sys_heap_stress::band", ops / 8);
                // Bug #1: with live external allocations, a long stress
                // run whose PRNG lands on the rebalance path merges a
                // chunk that is still owned outside the harness.
                if self.live_allocs >= 2 && ops > 48 && seed.is_multiple_of(7) {
                    ctx.cov("zephyr::heap::sys_heap_stress::rebalance_live");
                    ctx.klog("E: sys_heap: assertion failed in rebalance");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B01HeapStress,
                        FaultKind::Panic,
                        ">>> ZEPHYR FATAL ERROR 3: Kernel oops in sys_heap_stress",
                        vec!["sys_heap_stress", "rebalance", "chunk_merge"],
                        false,
                    ));
                }
                InvokeResult::Ok(ops)
            }
            // k_sem_init
            14 => {
                ctx.cov("zephyr::sem::k_sem_init::entry");
                let limit = arg_int(args, 1).clamp(1, 8) as i32;
                let initial = (arg_int(args, 0) as i32).min(limit);
                self.sems.push(Semaphore::new(initial, limit));
                InvokeResult::Ok(self.sems.len() as u64 - 1)
            }
            // k_sem_take
            15 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(s) => match s.try_take(ctx, "zephyr::sem::k_sem_take") {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_ipc(e),
                },
                None => InvokeResult::Err(-3),
            },
            // k_sem_give
            16 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(s) => match s.give(ctx, "zephyr::sem::k_sem_give") {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_ipc(e),
                },
                None => InvokeResult::Err(-3),
            },
            // json_obj_parse
            17 => match json::parse(ctx, "zephyr::json::parse", arg_bytes(args, 0)) {
                Ok(stats) => InvokeResult::Ok(stats.objects as u64),
                Err(_) => InvokeResult::Err(-22),
            },
            // json_obj_encode — bug #3.
            18 => {
                let depth = arg_int(args, 0) as u32;
                let width = arg_int(args, 1) as u32;
                ctx.cov_var(
                    "zephyr::json::encode::shape",
                    (depth.min(20) * 8 + width.min(7)) as u64,
                );
                // Bug #3: one past the library limit, a three-wide
                // descriptor lands exactly on the encoder's spilled frame
                // and runs off the fixed stack instead of returning
                // -EINVAL. (Other too-deep shapes hit the depth check a
                // frame earlier and error out.)
                if depth == json::MAX_DEPTH + 1 && width == 3 {
                    ctx.cov("zephyr::json::encode::stack_overrun");
                    ctx.klog("E: json: descriptor nesting overflow");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B03JsonEncode,
                        FaultKind::MemFault,
                        ">>> ZEPHYR FATAL ERROR 2: Stack overflow in json_obj_encode",
                        vec!["json_obj_encode", "encode_obj", "encode_obj"],
                        true,
                    ));
                }
                if width == 0 || width > 8 {
                    ctx.cov("zephyr::json::encode::bad_width");
                    return InvokeResult::Err(-22);
                }
                match json::encode(
                    ctx,
                    "zephyr::json::encode",
                    depth.min(json::MAX_DEPTH + 4),
                    width,
                ) {
                    Ok(len) => InvokeResult::Ok(len as u64),
                    Err(_) => InvokeResult::Err(-22),
                }
            }
            // spi_transceive — driver bug #21.
            19 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("zephyr::spi::spi_transceive::entry");
                let tx_len = arg_int(args, 0).min(64);
                let rx_len = arg_int(args, 1).min(64);
                ctx.charge(8 + tx_len + rx_len);
                ctx.bus
                    .mmio_write(periph::SPI, reg::CTRL, CTRL_START | (tx_len << 8));
                let status = ctx.bus.mmio_read(SITE_SPI_STATUS, periph::SPI, reg::STATUS);
                ctx.cov_var(
                    "zephyr::spi::spi_transceive::status_band",
                    (status & 0x7) as u64,
                );
                // Bug #21: a long RX leg with the controller's OVERRUN bit
                // already latched copies one FIFO depth too many into the
                // spi_context RX buffer and corrupts the adjacent struct.
                if rx_len > 32 && status & 0x40 != 0 {
                    ctx.cov("zephyr::spi::spi_transceive::rx_overrun");
                    ctx.klog("E: <err> spi: RX FIFO overrun");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B21SpiRxOverrun,
                        FaultKind::Panic,
                        ">>> ZEPHYR FATAL ERROR 4: Kernel panic in spi_transceive",
                        vec!["spi_transceive", "spi_context_update_rx", "executor"],
                        false,
                    ));
                }
                let mut sum = 0u64;
                for i in 0..rx_len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_SPI_DATA + i, periph::SPI, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // i2c_read
            20 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("zephyr::i2c::i2c_read::entry");
                let addr = arg_int(args, 0) & 0x7f;
                let len = arg_int(args, 1).min(32);
                ctx.charge(6 + len);
                ctx.bus
                    .mmio_write(periph::I2C, reg::CTRL, CTRL_START | (addr << 1));
                let status = ctx.bus.mmio_read(SITE_I2C_STATUS, periph::I2C, reg::STATUS);
                if status & 0x1 != 0 {
                    ctx.cov("zephyr::i2c::i2c_read::nack");
                    return InvokeResult::Err(-5);
                }
                // Bug #27: the driver parses a vendor register word inline
                // while draining the FIFO — the tag byte followed by the
                // mode byte (two exact magic bytes back to back in the
                // peripheral's response stream) takes a config path that
                // dereferences a never-initialised transfer descriptor.
                // Neither byte is in the mutation dictionary. The planted
                // trace_cmp hooks expose the rolling 16-bit window to the
                // cmplog ring — stream order equals little-endian operand
                // order, so one positional splice plants both bytes at
                // the exact consumed offsets — plus a per-byte tag
                // compare with a near-miss edge once the tag lands.
                let mut sum = 0u64;
                let mut prev: Option<u64> = None;
                for i in 0..len.min(8) as u32 {
                    let byte = ctx.bus.mmio_read(SITE_I2C_DATA + i, periph::I2C, reg::DATA) as u64;
                    if let Some(prev) = prev {
                        let word = (byte << 8) | prev;
                        ctx.cmp("zephyr::i2c::i2c_read::vendor_word", 16, word, 0xC35A);
                        if word == 0xC35A {
                            return InvokeResult::Fault(KernelFault::bug(
                                BugId::B27I2cMagicSeq,
                                FaultKind::Panic,
                                ">>> ZEPHYR FATAL ERROR 4: Kernel panic in i2c_read",
                                vec!["i2c_read", "i2c_parse_vendor_tag", "executor"],
                                false,
                            ));
                        }
                    }
                    ctx.cmp("zephyr::i2c::i2c_read::tag_magic", 8, byte, 0x5A);
                    if byte == 0x5A {
                        ctx.cov("zephyr::i2c::i2c_read::tag_seen");
                    }
                    prev = Some(byte);
                    sum += byte;
                }
                InvokeResult::Ok(sum)
            }
            // dma_start
            21 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("zephyr::dma::dma_start::entry");
                let chan = arg_int(args, 0) & 0x7;
                let len = arg_int(args, 1).min(65536);
                ctx.charge(10 + len / 64);
                ctx.bus.mmio_write(periph::DMA, reg::SRC, chan);
                ctx.bus.mmio_write(periph::DMA, reg::LEN, len);
                ctx.bus.mmio_write(periph::DMA, reg::CTRL, CTRL_START);
                let status = ctx.bus.mmio_read(SITE_DMA_STATUS, periph::DMA, reg::STATUS);
                ctx.cov_var("zephyr::dma::dma_start::chan_band", (status & 0x3) as u64);
                InvokeResult::Ok(len)
            }
            _ => InvokeResult::Err(-88),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::testutil::{bus, call, is_bug, ok};

    #[test]
    fn bug2_needs_purge_then_forever_get() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        let q = ok(call(
            &mut k,
            &mut b,
            "k_msgq_alloc_init",
            &[KArg::Int(4), KArg::Int(16)],
        ));
        // Forever-get on a fresh empty queue: the agent bounds the wait.
        assert_eq!(
            call(
                &mut k,
                &mut b,
                "z_impl_k_msgq_get",
                &[KArg::Int(q), KArg::Int(K_FOREVER)]
            ),
            InvokeResult::Err(-11)
        );
        // Non-forever get on a purged queue is only -EAGAIN.
        ok(call(&mut k, &mut b, "k_msgq_purge", &[KArg::Int(q)]));
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "z_impl_k_msgq_get",
                &[KArg::Int(q), KArg::Int(10)]
            ),
            InvokeResult::Err(_)
        ));
        // Purge then K_FOREVER get: bug #2.
        ok(call(&mut k, &mut b, "k_msgq_purge", &[KArg::Int(q)]));
        let r = call(
            &mut k,
            &mut b,
            "z_impl_k_msgq_get",
            &[KArg::Int(q), KArg::Int(K_FOREVER)],
        );
        assert!(is_bug(&r, 2));
    }

    #[test]
    fn bug4_needs_tiny_size_and_align_seven() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        for (size, align) in [(64, 7), (12, 4), (12, 3), (0, 7), (16, 7)] {
            let r = call(
                &mut k,
                &mut b,
                "k_heap_init",
                &[KArg::Int(size), KArg::Int(align)],
            );
            assert!(!r.is_fault(), "size={size} align={align}");
        }
        let r = call(
            &mut k,
            &mut b,
            "k_heap_init",
            &[KArg::Int(12), KArg::Int(7)],
        );
        assert!(is_bug(&r, 4));
        if let InvokeResult::Fault(f) = r {
            assert!(f.hangs_after);
        }
    }

    #[test]
    fn bug1_needs_live_allocs_long_run_and_seed() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        // Without live allocations, nothing happens.
        assert!(!call(
            &mut k,
            &mut b,
            "sys_heap_stress",
            &[KArg::Int(64), KArg::Int(7)]
        )
        .is_fault());
        let h = ok(call(
            &mut k,
            &mut b,
            "k_heap_init",
            &[KArg::Int(4096), KArg::Int(8)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "k_heap_alloc",
            &[KArg::Int(h), KArg::Int(64)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "k_heap_alloc",
            &[KArg::Int(h), KArg::Int(64)],
        ));
        // Wrong seed: safe. Short run: safe.
        assert!(!call(
            &mut k,
            &mut b,
            "sys_heap_stress",
            &[KArg::Int(64), KArg::Int(8)]
        )
        .is_fault());
        assert!(!call(
            &mut k,
            &mut b,
            "sys_heap_stress",
            &[KArg::Int(48), KArg::Int(7)]
        )
        .is_fault());
        let r = call(
            &mut k,
            &mut b,
            "sys_heap_stress",
            &[KArg::Int(64), KArg::Int(7)],
        );
        assert!(is_bug(&r, 1));
    }

    #[test]
    fn bug3_fires_one_past_depth_limit_at_width_three() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        // In-range shapes and other too-deep shapes error cleanly.
        assert!(!call(
            &mut k,
            &mut b,
            "json_obj_encode",
            &[KArg::Int(12), KArg::Int(3)]
        )
        .is_fault());
        assert!(!call(
            &mut k,
            &mut b,
            "json_obj_encode",
            &[KArg::Int(13), KArg::Int(2)]
        )
        .is_fault());
        assert!(!call(
            &mut k,
            &mut b,
            "json_obj_encode",
            &[KArg::Int(14), KArg::Int(3)]
        )
        .is_fault());
        let r = call(
            &mut k,
            &mut b,
            "json_obj_encode",
            &[KArg::Int(13), KArg::Int(3)],
        );
        assert!(is_bug(&r, 3));
    }

    #[test]
    fn preemptive_thread_api() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        let lo = ok(call(
            &mut k,
            &mut b,
            "k_thread_create",
            &[KArg::Str("lo".into()), KArg::Int(1), KArg::Int(512)],
        ));
        let hi = ok(call(
            &mut k,
            &mut b,
            "k_thread_create",
            &[KArg::Str("hi".into()), KArg::Int(9), KArg::Int(512)],
        ));
        ok(call(&mut k, &mut b, "k_yield", &[]));
        assert_eq!(k.sched.running(), Some(hi as u32));
        ok(call(&mut k, &mut b, "k_thread_abort", &[KArg::Int(hi)]));
        ok(call(&mut k, &mut b, "k_yield", &[]));
        assert_eq!(k.sched.running(), Some(lo as u32));
    }

    #[test]
    fn sem_take_give() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        let s = ok(call(
            &mut k,
            &mut b,
            "k_sem_init",
            &[KArg::Int(1), KArg::Int(2)],
        ));
        ok(call(&mut k, &mut b, "k_sem_take", &[KArg::Int(s)]));
        assert!(matches!(
            call(&mut k, &mut b, "k_sem_take", &[KArg::Int(s)]),
            InvokeResult::Err(-11)
        ));
        ok(call(&mut k, &mut b, "k_sem_give", &[KArg::Int(s)]));
    }

    #[test]
    fn gpio_isr_gives_first_semaphore() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        let s = ok(call(
            &mut k,
            &mut b,
            "k_sem_init",
            &[KArg::Int(0), KArg::Int(4)],
        ));
        let mut cov = crate::ctx::CovState::uninstrumented();
        {
            let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
            k.on_interrupt(&mut ctx, eof_hal::irq::GPIO, &[]);
        }
        // The semaphore is now takable: the ISR→thread handoff worked.
        ok(call(&mut k, &mut b, "k_sem_take", &[KArg::Int(s)]));
    }

    #[test]
    fn serial_rx_isr_feeds_first_msgq() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        let q = ok(call(
            &mut k,
            &mut b,
            "k_msgq_alloc_init",
            &[KArg::Int(4), KArg::Int(32)],
        ));
        let mut cov = crate::ctx::CovState::uninstrumented();
        {
            let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
            k.on_interrupt(&mut ctx, eof_hal::irq::SERIAL_RX, b"rx-data");
        }
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "z_impl_k_msgq_get",
                &[KArg::Int(q), KArg::Int(0)]
            )),
            7
        );
    }

    #[test]
    fn no_spurious_faults_on_zero_args() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        for id in 0..k.api_table().len() as u16 {
            let mut cov = crate::ctx::CovState::uninstrumented();
            let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
            let r = k.invoke(&mut ctx, id, &[]);
            assert!(!r.is_fault(), "api {id} faulted with no args");
        }
    }

    #[test]
    fn bug21_needs_long_rx_and_latched_overrun() {
        // Short RX with overrun, long RX on a clean controller: benign.
        for (stream, rx) in [(0x40u8, 32), (0x00, 64)] {
            let mut k = ZephyrKernel::new();
            let mut b = bus();
            b.mmio.load_stream(&[stream]);
            let r = call(
                &mut k,
                &mut b,
                "spi_transceive",
                &[KArg::Int(8), KArg::Int(rx)],
            );
            assert!(!r.is_fault(), "{stream:#x}/{rx}");
        }
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x40]);
        let r = call(
            &mut k,
            &mut b,
            "spi_transceive",
            &[KArg::Int(8), KArg::Int(64)],
        );
        assert!(is_bug(&r, 21), "got {r:?}");
    }

    #[test]
    fn i2c_magic_byte_pair_is_bug27_and_lone_tag_is_not() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        // A lone tag byte is a near miss: new coverage, no fault.
        b.mmio.load_stream(&[0x00, 0x5A, 0x00, 0x11]);
        let r = call(&mut k, &mut b, "i2c_read", &[KArg::Int(0x29), KArg::Int(3)]);
        assert!(!r.is_fault(), "got {r:?}");
        // Tag then mode back to back dereferences the bad descriptor.
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x00, 0x11, 0x5A, 0xC3]);
        let r = call(&mut k, &mut b, "i2c_read", &[KArg::Int(0x29), KArg::Int(4)]);
        assert!(is_bug(&r, 27), "got {r:?}");
    }

    #[test]
    fn i2c_and_dma_drivers_complete_with_irqs() {
        let mut k = ZephyrKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x00, 0x11, 0x22]);
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "i2c_read",
                &[KArg::Int(0x29), KArg::Int(2)],
            )),
            0x11 + 0x22
        );
        ok(call(
            &mut k,
            &mut b,
            "dma_start",
            &[KArg::Int(1), KArg::Int(512)],
        ));
        let lines: Vec<u8> = b.pending_irqs.iter().map(|r| r.line).collect();
        assert!(lines.contains(&eof_hal::irq::I2C));
        assert!(lines.contains(&eof_hal::irq::DMA));
    }
}
