//! The five OS personalities.
//!
//! Each module implements [`crate::kernel::Kernel`] for one operating
//! system, composing the shared subsystems under its own API names,
//! error conventions and scheduling policy, and seeding its share of the
//! Table-2 bugs.

pub mod freertos;
pub mod nuttx;
pub mod pokos;
pub mod rtthread;
pub mod zephyr;

pub use freertos::FreeRtosKernel;
pub use nuttx::NuttxKernel;
pub use pokos::PokKernel;
pub use rtthread::RtThreadKernel;
pub use zephyr::ZephyrKernel;

use crate::api::{ArgKind, ArgMeta};

/// 32-bit integer parameter with inclusive bounds.
pub(crate) fn a_int(name: &'static str, min: u64, max: u64) -> ArgMeta {
    ArgMeta::new(name, ArgKind::Int { bits: 32, min, max })
}

/// 64-bit integer parameter with inclusive bounds.
pub(crate) fn a_int64(name: &'static str, min: u64, max: u64) -> ArgMeta {
    ArgMeta::new(name, ArgKind::Int { bits: 64, min, max })
}

/// Enumerated flag parameter.
pub(crate) fn a_enum(
    name: &'static str,
    set: &'static str,
    values: &'static [(&'static str, u64)],
) -> ArgMeta {
    ArgMeta::new(name, ArgKind::Enum { set, values })
}

/// Bounded string parameter.
pub(crate) fn a_str(name: &'static str, max: u32) -> ArgMeta {
    ArgMeta::new(name, ArgKind::Str { max })
}

/// Bounded byte-buffer parameter.
pub(crate) fn a_bytes(name: &'static str, max: u32) -> ArgMeta {
    ArgMeta::new(name, ArgKind::Bytes { max })
}

/// Resource-consuming parameter.
pub(crate) fn a_res(name: &'static str, kind: &'static str) -> ArgMeta {
    ArgMeta::new(name, ArgKind::ResourceIn(kind))
}

/// Fetch argument `i` as a scalar, defaulting to 0 when the call is
/// under-supplied (C calling convention: garbage registers, not a crash).
pub(crate) fn arg_int(args: &[crate::api::KArg], i: usize) -> u64 {
    args.get(i).map(|a| a.as_int()).unwrap_or(0)
}

/// Fetch argument `i` as a string slice.
pub(crate) fn arg_str(args: &[crate::api::KArg], i: usize) -> &str {
    args.get(i).map(|a| a.as_str()).unwrap_or("")
}

/// Fetch argument `i` as bytes.
pub(crate) fn arg_bytes(args: &[crate::api::KArg], i: usize) -> &[u8] {
    args.get(i).map(|a| a.as_bytes()).unwrap_or(&[])
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared test scaffolding for driving kernels directly.

    use crate::api::{InvokeResult, KArg};
    use crate::ctx::{CovState, ExecCtx};
    use crate::kernel::Kernel;
    use eof_hal::{Bus, Endianness};

    /// Drive a kernel call with a fresh uninstrumented context.
    pub fn call(k: &mut dyn Kernel, bus: &mut Bus, api: &str, args: &[KArg]) -> InvokeResult {
        let id = k
            .api_table()
            .iter()
            .find(|d| d.name == api)
            .unwrap_or_else(|| panic!("API {api} not found in {}", k.os()))
            .id;
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(bus, &mut cov);
        k.invoke(&mut ctx, id, args)
    }

    /// Fresh bus for kernel tests.
    pub fn bus() -> Bus {
        Bus::new(0x2000_0000, 0x2_0000, Endianness::Little)
    }

    /// Assert the result is `Ok` and return the value.
    pub fn ok(r: InvokeResult) -> u64 {
        match r {
            InvokeResult::Ok(v) => v,
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    /// Assert the result is a fault attributed to the given bug number.
    pub fn is_bug(r: &InvokeResult, number: u8) -> bool {
        matches!(r, InvokeResult::Fault(f) if f.bug.map(|b| b.number()) == Some(number))
    }
}
