//! IPC primitives: message queues, semaphores, mutexes and event groups.
//!
//! These are the state machines behind Zephyr's `k_msgq_*` (bug #2),
//! RT-Thread's `rt_event_send` (bug #10) and NuttX's `nxsem_*` (bug #17).
//! Blocking semantics are modelled as `WouldBlock` returns — the agent
//! runs a single fuzzing task, so a real block would simply hang, which
//! is itself one of the degraded states the watchdogs exist for.
//!
//! Branch variants documented per structure.

use crate::ctx::ExecCtx;
use std::collections::VecDeque;

/// IPC failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcError {
    /// Queue/semaphore is at capacity.
    Full,
    /// Nothing to receive / count is zero.
    Empty,
    /// Message larger than the queue's message size.
    MsgTooBig,
    /// The operation would block.
    WouldBlock,
    /// Mutex is owned by another holder.
    Busy,
    /// Caller does not own the mutex.
    NotOwner,
    /// Object was purged/deleted under the caller.
    Purged,
}

/// A bounded message queue (Zephyr `k_msgq` / FreeRTOS `xQueue`).
///
/// Variants: 0 put entry, 1 msg too big, 2 put ok, 3 queue full,
/// 4 get entry, 5 get ok, 6 empty, 7 purge.
#[derive(Debug, Clone)]
pub struct MsgQueue {
    msg_size: u32,
    capacity: usize,
    msgs: VecDeque<Vec<u8>>,
    /// Set by purge; cleared on next successful put. Getting from a
    /// purged-while-waited queue is the precondition of bug #2.
    pub purged: bool,
    puts: u64,
    gets: u64,
}

impl MsgQueue {
    /// A queue of `capacity` messages of at most `msg_size` bytes.
    pub fn new(msg_size: u32, capacity: usize) -> Self {
        MsgQueue {
            msg_size,
            capacity,
            msgs: VecDeque::new(),
            purged: false,
            puts: 0,
            gets: 0,
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.msgs.len() >= self.capacity
    }

    /// Lifetime put count.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Enqueue a message.
    pub fn put(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        msg: &[u8],
    ) -> Result<(), IpcError> {
        ctx.cov_var(site, 0);
        ctx.charge(3);
        if msg.len() > self.msg_size as usize {
            ctx.cov_var(site, 1);
            return Err(IpcError::MsgTooBig);
        }
        if self.is_full() {
            ctx.cov_var(site, 3);
            return Err(IpcError::Full);
        }
        ctx.cov_var(site, 2);
        ctx.cov_var(site, 100 + self.msgs.len() as u64);
        ctx.cov_var(site, 130 + (msg.len() as u64 / 8).min(8));
        self.msgs.push_back(msg.to_vec());
        self.purged = false;
        self.puts += 1;
        Ok(())
    }

    /// Dequeue a message.
    pub fn get(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str) -> Result<Vec<u8>, IpcError> {
        ctx.cov_var(site, 4);
        ctx.charge(3);
        match self.msgs.pop_front() {
            Some(m) => {
                ctx.cov_var(site, 5);
                ctx.cov_var(site, 150 + self.msgs.len() as u64);
                self.gets += 1;
                Ok(m)
            }
            None => {
                ctx.cov_var(site, 6);
                Err(IpcError::Empty)
            }
        }
    }

    /// Drop all queued messages and mark the queue purged.
    pub fn purge(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str) {
        ctx.cov_var(site, 7);
        ctx.charge(2);
        self.msgs.clear();
        self.purged = true;
    }
}

/// A counting semaphore.
///
/// Variants: 0 take ok, 1 would block, 2 give ok, 3 at max,
/// 4 trywait-on-contended.
#[derive(Debug, Clone)]
pub struct Semaphore {
    count: i32,
    max: i32,
    /// Waiters simulated for the trywait-under-contention path (bug #17's
    /// precondition in the NuttX model).
    pub waiters: u32,
    /// Destroyed-while-waited flag.
    pub destroyed: bool,
}

impl Semaphore {
    /// A semaphore with initial `count` and maximum `max`.
    pub fn new(count: i32, max: i32) -> Self {
        Semaphore {
            count,
            max,
            waiters: 0,
            destroyed: false,
        }
    }

    /// Current count (negative means waiters in POSIX style).
    pub fn count(&self) -> i32 {
        self.count
    }

    /// Non-blocking take.
    pub fn try_take(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str) -> Result<(), IpcError> {
        ctx.charge(2);
        if self.count > 0 {
            ctx.cov_var(site, 0);
            self.count -= 1;
            Ok(())
        } else {
            ctx.cov_var(site, 1);
            if self.waiters > 0 {
                ctx.cov_var(site, 4);
            }
            Err(IpcError::WouldBlock)
        }
    }

    /// Blocking-take bookkeeping: records a waiter and drives the count
    /// negative (POSIX semantics).
    pub fn take_blocking(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str) {
        ctx.charge(2);
        ctx.cov_var(site, 1);
        self.count -= 1;
        if self.count < 0 {
            self.waiters += 1;
            // Breadcrumb: the wait-list insertion branches per queue
            // position.
            ctx.cov_var(site, 10 + (self.waiters as u64).min(7));
        }
    }

    /// Give the semaphore.
    pub fn give(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str) -> Result<(), IpcError> {
        ctx.charge(2);
        if self.count >= self.max {
            ctx.cov_var(site, 3);
            return Err(IpcError::Full);
        }
        ctx.cov_var(site, 2);
        self.count += 1;
        if self.waiters > 0 && self.count <= 0 {
            self.waiters -= 1;
        }
        Ok(())
    }
}

/// A (recursive) mutex.
///
/// Variants: 0 lock acquired, 1 recursive relock, 2 busy, 3 unlock,
/// 4 not owner.
#[derive(Debug, Clone, Default)]
pub struct Mutex {
    owner: Option<u32>,
    depth: u32,
}

impl Mutex {
    /// An unlocked mutex.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current owner handle.
    pub fn owner(&self) -> Option<u32> {
        self.owner
    }

    /// Acquire for `who`.
    pub fn lock(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        who: u32,
    ) -> Result<(), IpcError> {
        ctx.charge(2);
        match self.owner {
            None => {
                ctx.cov_var(site, 0);
                self.owner = Some(who);
                self.depth = 1;
                Ok(())
            }
            Some(o) if o == who => {
                ctx.cov_var(site, 1);
                self.depth += 1;
                Ok(())
            }
            Some(_) => {
                ctx.cov_var(site, 2);
                Err(IpcError::Busy)
            }
        }
    }

    /// Release for `who`.
    pub fn unlock(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        who: u32,
    ) -> Result<(), IpcError> {
        ctx.charge(2);
        match self.owner {
            Some(o) if o == who => {
                ctx.cov_var(site, 3);
                self.depth -= 1;
                if self.depth == 0 {
                    self.owner = None;
                }
                Ok(())
            }
            _ => {
                ctx.cov_var(site, 4);
                Err(IpcError::NotOwner)
            }
        }
    }
}

/// An event group (RT-Thread `rt_event` / FreeRTOS event bits).
///
/// Variants: 0 send entry, 1 bits set, 2 waiter satisfied AND,
/// 3 waiter satisfied OR, 4 recv no match, 5 recv match+clear, 6 zero set.
#[derive(Debug, Clone, Default)]
pub struct EventGroup {
    bits: u32,
    sends: u64,
    /// Deleted-object marker (bug #10's precondition in the RT-Thread
    /// model: send to a deleted event).
    pub deleted: bool,
}

impl EventGroup {
    /// A cleared event group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current event bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Lifetime sends.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// OR `set` into the group.
    pub fn send(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        set: u32,
    ) -> Result<u32, IpcError> {
        ctx.cov_var(site, 0);
        ctx.charge(2);
        if set == 0 {
            ctx.cov_var(site, 6);
            return Err(IpcError::Empty);
        }
        ctx.cov_var(site, 1);
        ctx.cov_var(site, 100 + set.count_ones() as u64);
        self.bits |= set;
        ctx.cov_var(site, 140 + (self.bits & 0xff) as u64);
        self.sends += 1;
        Ok(self.bits)
    }

    /// Receive: wait for `want` bits with AND/OR semantics; optionally
    /// clear on success.
    pub fn recv(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        want: u32,
        all: bool,
        clear: bool,
    ) -> Result<u32, IpcError> {
        ctx.charge(2);
        let hit = if all {
            self.bits & want == want
        } else {
            self.bits & want != 0
        };
        if !hit {
            ctx.cov_var(site, 4);
            return Err(IpcError::WouldBlock);
        }
        ctx.cov_var(site, if all { 2 } else { 3 });
        ctx.cov_var(site, 100 + (self.bits & want).count_ones() as u64);
        let got = self.bits & want;
        if clear {
            ctx.cov_var(site, 5);
            self.bits &= !want;
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn msgq_fifo_order() {
        with_ctx(|ctx| {
            let mut q = MsgQueue::new(16, 4);
            q.put(ctx, "s", b"one").unwrap();
            q.put(ctx, "s", b"two").unwrap();
            assert_eq!(q.get(ctx, "s").unwrap(), b"one");
            assert_eq!(q.get(ctx, "s").unwrap(), b"two");
            assert_eq!(q.get(ctx, "s"), Err(IpcError::Empty));
        });
    }

    #[test]
    fn msgq_limits() {
        with_ctx(|ctx| {
            let mut q = MsgQueue::new(4, 1);
            assert_eq!(q.put(ctx, "s", b"toolong"), Err(IpcError::MsgTooBig));
            q.put(ctx, "s", b"ok").unwrap();
            assert_eq!(q.put(ctx, "s", b"no"), Err(IpcError::Full));
        });
    }

    #[test]
    fn msgq_purge_flag() {
        with_ctx(|ctx| {
            let mut q = MsgQueue::new(8, 4);
            q.put(ctx, "s", b"x").unwrap();
            q.purge(ctx, "s");
            assert!(q.purged);
            assert!(q.is_empty());
            q.put(ctx, "s", b"y").unwrap();
            assert!(!q.purged);
        });
    }

    #[test]
    fn semaphore_counting() {
        with_ctx(|ctx| {
            let mut s = Semaphore::new(1, 2);
            s.try_take(ctx, "s").unwrap();
            assert_eq!(s.try_take(ctx, "s"), Err(IpcError::WouldBlock));
            s.give(ctx, "s").unwrap();
            s.give(ctx, "s").unwrap();
            assert_eq!(s.give(ctx, "s"), Err(IpcError::Full));
        });
    }

    #[test]
    fn semaphore_waiters_go_negative() {
        with_ctx(|ctx| {
            let mut s = Semaphore::new(0, 4);
            s.take_blocking(ctx, "s");
            assert_eq!(s.count(), -1);
            assert_eq!(s.waiters, 1);
            s.give(ctx, "s").unwrap();
            assert_eq!(s.waiters, 0);
        });
    }

    #[test]
    fn mutex_recursion_and_ownership() {
        with_ctx(|ctx| {
            let mut m = Mutex::new();
            m.lock(ctx, "s", 1).unwrap();
            m.lock(ctx, "s", 1).unwrap();
            assert_eq!(m.lock(ctx, "s", 2), Err(IpcError::Busy));
            assert_eq!(m.unlock(ctx, "s", 2), Err(IpcError::NotOwner));
            m.unlock(ctx, "s", 1).unwrap();
            assert_eq!(m.owner(), Some(1));
            m.unlock(ctx, "s", 1).unwrap();
            assert_eq!(m.owner(), None);
        });
    }

    #[test]
    fn event_group_and_or_semantics() {
        with_ctx(|ctx| {
            let mut e = EventGroup::new();
            assert_eq!(e.send(ctx, "s", 0), Err(IpcError::Empty));
            e.send(ctx, "s", 0b0101).unwrap();
            // AND on a partially-set mask blocks.
            assert_eq!(
                e.recv(ctx, "s", 0b0111, true, false),
                Err(IpcError::WouldBlock)
            );
            // OR succeeds and clears only the matched bits.
            assert_eq!(e.recv(ctx, "s", 0b0100, false, true).unwrap(), 0b0100);
            assert_eq!(e.bits(), 0b0001);
        });
    }
}
