//! Software timers (FreeRTOS `xTimer*` / NuttX `timer_*` substrate).
//!
//! A timer wheel advanced by the kernel tick. One-shot timers fire once
//! and disarm; periodic timers re-arm. NuttX's `timer_create` (bug #18)
//! is seeded in the OS wrapper around [`TimerWheel::create`].
//!
//! Variants: 0 create, 1 bad period, 2 start, 3 stop, 4 fire oneshot,
//! 5 fire periodic, 6 bad handle, 7 delete.

use crate::ctx::ExecCtx;

/// Timer mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerMode {
    /// Fires once, then disarms.
    OneShot,
    /// Fires every period.
    Periodic,
}

/// Timer failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerError {
    /// Period of zero ticks.
    BadPeriod,
    /// Handle does not name a live timer.
    BadHandle,
    /// Timer table is full.
    TooMany,
}

#[derive(Debug, Clone)]
struct Timer {
    handle: u32,
    period: u64,
    mode: TimerMode,
    /// Absolute tick of next expiry; `None` = stopped.
    deadline: Option<u64>,
    fires: u64,
}

/// The timer subsystem of one kernel.
#[derive(Debug, Clone)]
pub struct TimerWheel {
    timers: Vec<Timer>,
    max_timers: usize,
    now: u64,
    next_handle: u32,
    total_fires: u64,
}

impl TimerWheel {
    /// A wheel with room for `max_timers` timers.
    pub fn new(max_timers: usize) -> Self {
        TimerWheel {
            timers: Vec::new(),
            max_timers,
            now: 0,
            next_handle: 1,
            total_fires: 0,
        }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Live timer count.
    pub fn len(&self) -> usize {
        self.timers.len()
    }

    /// Whether no timers exist.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }

    /// Total expirations processed.
    pub fn total_fires(&self) -> u64 {
        self.total_fires
    }

    /// Expiry count of a specific timer.
    pub fn fires_of(&self, handle: u32) -> Option<u64> {
        self.timers
            .iter()
            .find(|t| t.handle == handle)
            .map(|t| t.fires)
    }

    /// Create a stopped timer.
    pub fn create(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        period: u64,
        mode: TimerMode,
    ) -> Result<u32, TimerError> {
        ctx.cov_var(site, 0);
        ctx.charge(3);
        if period == 0 {
            ctx.cov_var(site, 1);
            return Err(TimerError::BadPeriod);
        }
        if self.timers.len() >= self.max_timers {
            return Err(TimerError::TooMany);
        }
        ctx.cov_var(site, 100 + (period / 64).min(15));
        ctx.cov_var(site, 130 + self.timers.len() as u64);
        let handle = self.next_handle;
        self.next_handle += 1;
        self.timers.push(Timer {
            handle,
            period,
            mode,
            deadline: None,
            fires: 0,
        });
        Ok(handle)
    }

    fn find_mut(&mut self, handle: u32) -> Option<&mut Timer> {
        self.timers.iter_mut().find(|t| t.handle == handle)
    }

    /// Arm a timer.
    pub fn start(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), TimerError> {
        ctx.charge(2);
        let now = self.now;
        match self.find_mut(handle) {
            Some(t) => {
                ctx.cov_var(site, 2);
                t.deadline = Some(now + t.period);
                Ok(())
            }
            None => {
                ctx.cov_var(site, 6);
                Err(TimerError::BadHandle)
            }
        }
    }

    /// Disarm a timer.
    pub fn stop(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), TimerError> {
        ctx.charge(2);
        match self.find_mut(handle) {
            Some(t) => {
                ctx.cov_var(site, 3);
                t.deadline = None;
                Ok(())
            }
            None => {
                ctx.cov_var(site, 6);
                Err(TimerError::BadHandle)
            }
        }
    }

    /// Delete a timer.
    pub fn delete(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), TimerError> {
        ctx.charge(2);
        let before = self.timers.len();
        self.timers.retain(|t| t.handle != handle);
        if self.timers.len() == before {
            ctx.cov_var(site, 6);
            Err(TimerError::BadHandle)
        } else {
            ctx.cov_var(site, 7);
            Ok(())
        }
    }

    /// Advance `ticks`, firing due timers. Returns total fires.
    pub fn advance(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str, ticks: u64) -> u64 {
        ctx.charge(1 + ticks / 4);
        let mut fired = 0;
        for _ in 0..ticks {
            self.now += 1;
            for t in &mut self.timers {
                if t.deadline == Some(self.now) {
                    t.fires += 1;
                    fired += 1;
                    match t.mode {
                        TimerMode::OneShot => {
                            ctx.cov_var(site, 4);
                            t.deadline = None;
                        }
                        TimerMode::Periodic => {
                            ctx.cov_var(site, 5);
                            t.deadline = Some(self.now + t.period);
                        }
                    }
                }
            }
        }
        self.total_fires += fired;
        if fired > 0 {
            ctx.cov_var(site, 100 + fired.min(15));
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn oneshot_fires_once() {
        with_ctx(|ctx| {
            let mut w = TimerWheel::new(8);
            let t = w.create(ctx, "s", 3, TimerMode::OneShot).unwrap();
            w.start(ctx, "s", t).unwrap();
            assert_eq!(w.advance(ctx, "s", 10), 1);
            assert_eq!(w.fires_of(t), Some(1));
            assert_eq!(w.advance(ctx, "s", 10), 0);
        });
    }

    #[test]
    fn periodic_fires_repeatedly() {
        with_ctx(|ctx| {
            let mut w = TimerWheel::new(8);
            let t = w.create(ctx, "s", 2, TimerMode::Periodic).unwrap();
            w.start(ctx, "s", t).unwrap();
            assert_eq!(w.advance(ctx, "s", 10), 5);
        });
    }

    #[test]
    fn stop_prevents_fire() {
        with_ctx(|ctx| {
            let mut w = TimerWheel::new(8);
            let t = w.create(ctx, "s", 2, TimerMode::Periodic).unwrap();
            w.start(ctx, "s", t).unwrap();
            w.stop(ctx, "s", t).unwrap();
            assert_eq!(w.advance(ctx, "s", 10), 0);
        });
    }

    #[test]
    fn zero_period_rejected() {
        with_ctx(|ctx| {
            let mut w = TimerWheel::new(8);
            assert_eq!(
                w.create(ctx, "s", 0, TimerMode::OneShot),
                Err(TimerError::BadPeriod)
            );
        });
    }

    #[test]
    fn table_limit() {
        with_ctx(|ctx| {
            let mut w = TimerWheel::new(1);
            w.create(ctx, "s", 1, TimerMode::OneShot).unwrap();
            assert_eq!(
                w.create(ctx, "s", 1, TimerMode::OneShot),
                Err(TimerError::TooMany)
            );
        });
    }

    #[test]
    fn delete_and_bad_handles() {
        with_ctx(|ctx| {
            let mut w = TimerWheel::new(8);
            let t = w.create(ctx, "s", 5, TimerMode::OneShot).unwrap();
            w.delete(ctx, "s", t).unwrap();
            assert_eq!(w.start(ctx, "s", t), Err(TimerError::BadHandle));
            assert_eq!(w.stop(ctx, "s", t), Err(TimerError::BadHandle));
            assert_eq!(w.delete(ctx, "s", t), Err(TimerError::BadHandle));
        });
    }

    #[test]
    fn restart_pushes_deadline() {
        with_ctx(|ctx| {
            let mut w = TimerWheel::new(8);
            let t = w.create(ctx, "s", 5, TimerMode::OneShot).unwrap();
            w.start(ctx, "s", t).unwrap();
            w.advance(ctx, "s", 3);
            w.start(ctx, "s", t).unwrap();
            assert_eq!(w.advance(ctx, "s", 4), 0);
            assert_eq!(w.advance(ctx, "s", 1), 1);
        });
    }
}
