//! Shared subsystem building blocks of the kernel models.
//!
//! Real embedded OSs implement the same concepts (heaps, schedulers,
//! queues) with different APIs and semantics. The models share these
//! implementations but each OS wires them with its own API surface, error
//! conventions, scheduling policy and — crucially for coverage accounting
//! — its own edge namespace: every subsystem entry point takes a
//! `site: &'static str` supplied by the calling OS, and derives its
//! internal branch edges as deterministic variants of that site
//! ([`crate::ctx::ExecCtx::cov_var`]). Two OSs exercising the same
//! allocator therefore discover disjoint edges, exactly as two separately
//! compiled binaries would.

pub mod env;
pub mod heap;
pub mod http;
pub mod ipc;
pub mod json;
pub mod mq;
pub mod object;
pub mod pool;
pub mod sal;
pub mod sched;
pub mod serial;
pub mod timer;
