//! Task scheduler: TCBs, ready queues and two scheduling policies.
//!
//! The paper's deployment challenge (§3.1) leans on exactly this
//! divergence: "FreeRTOS uses `xTaskCreate()` with optional static stacks
//! and tick-driven scheduling, whereas Zephyr uses `k_thread_create()`
//! under fully preemptive scheduling". Both policies are implemented; the
//! OS layer picks one and exposes its own API names on top.
//!
//! Branch variants: 0 create entry, 1 name too long, 2 bad priority,
//! 3 table full, 4 created, 5 delete ok, 6 delete bad handle, 7 suspend,
//! 8 resume, 9 tick round-robin rotation, 10 tick preempt switch,
//! 11 priority change causes switch, 12 delay blocks task, 13 unblock.

use crate::ctx::ExecCtx;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// FreeRTOS-style: same-priority tasks rotate on the tick.
    TickRoundRobin,
    /// Zephyr-style: highest priority always runs; ties run to block.
    Preemptive,
}

/// Task lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Eligible to run.
    Ready,
    /// Currently running.
    Running,
    /// Suspended by API.
    Suspended,
    /// Blocked on a delay until the stored tick.
    Delayed(u64),
}

/// Scheduler failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedError {
    /// Task name exceeds the OS's name field.
    NameTooLong,
    /// Priority outside the configured range.
    BadPriority,
    /// TCB table is full.
    TooManyTasks,
    /// Handle does not name a live task.
    BadHandle,
    /// Stack size below the OS minimum.
    StackTooSmall,
}

/// A task control block.
#[derive(Debug, Clone)]
pub struct Tcb {
    /// Task handle (index + generation, opaque to callers).
    pub handle: u32,
    /// Task name (bounded).
    pub name: String,
    /// Priority (0 = lowest here; OSs map their own conventions).
    pub priority: u8,
    /// Stack size in bytes.
    pub stack: u32,
    /// Current state.
    pub state: TaskState,
    /// Ticks this task has been scheduled.
    pub runtime_ticks: u64,
}

/// The scheduler for one kernel.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: Policy,
    max_tasks: usize,
    max_priority: u8,
    max_name: usize,
    min_stack: u32,
    tasks: Vec<Tcb>,
    tick: u64,
    next_handle: u32,
    context_switches: u64,
    running: Option<u32>,
}

impl Scheduler {
    /// Build a scheduler with the OS's limits.
    pub fn new(
        policy: Policy,
        max_tasks: usize,
        max_priority: u8,
        max_name: usize,
        min_stack: u32,
    ) -> Self {
        Scheduler {
            policy,
            max_tasks,
            max_priority,
            max_name,
            min_stack,
            tasks: Vec::new(),
            tick: 0,
            next_handle: 1,
            context_switches: 0,
            running: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Current tick count.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Number of live tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Handle of the running task.
    pub fn running(&self) -> Option<u32> {
        self.running
    }

    /// Look up a task by handle.
    pub fn task(&self, handle: u32) -> Option<&Tcb> {
        self.tasks.iter().find(|t| t.handle == handle)
    }

    fn task_mut(&mut self, handle: u32) -> Option<&mut Tcb> {
        self.tasks.iter_mut().find(|t| t.handle == handle)
    }

    /// Create a task.
    pub fn create(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        name: &str,
        priority: u8,
        stack: u32,
    ) -> Result<u32, SchedError> {
        ctx.cov_var(site, 0);
        ctx.charge(6);
        if name.len() > self.max_name {
            ctx.cov_var(site, 1);
            return Err(SchedError::NameTooLong);
        }
        if priority > self.max_priority {
            ctx.cov_var(site, 2);
            return Err(SchedError::BadPriority);
        }
        if stack < self.min_stack {
            ctx.cov_var(site, 2);
            return Err(SchedError::StackTooSmall);
        }
        if self.tasks.len() >= self.max_tasks {
            ctx.cov_var(site, 3);
            return Err(SchedError::TooManyTasks);
        }
        ctx.cov_var(site, 4);
        ctx.cov_var(site, 100 + priority as u64);
        ctx.cov_var(site, 200 + (stack as u64 / 512).min(15));
        let handle = self.next_handle;
        self.next_handle += 1;
        self.tasks.push(Tcb {
            handle,
            name: name.to_string(),
            priority,
            stack,
            state: TaskState::Ready,
            runtime_ticks: 0,
        });
        Ok(handle)
    }

    /// Delete a task by handle.
    pub fn delete(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), SchedError> {
        ctx.charge(4);
        let Some(idx) = self.tasks.iter().position(|t| t.handle == handle) else {
            ctx.cov_var(site, 6);
            return Err(SchedError::BadHandle);
        };
        ctx.cov_var(site, 5);
        if self.running == Some(handle) {
            self.running = None;
        }
        self.tasks.remove(idx);
        Ok(())
    }

    /// Suspend a task.
    pub fn suspend(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), SchedError> {
        ctx.charge(2);
        if self.running == Some(handle) {
            self.running = None;
        }
        match self.task_mut(handle) {
            Some(t) => {
                ctx.cov_var(site, 7);
                t.state = TaskState::Suspended;
                Ok(())
            }
            None => {
                ctx.cov_var(site, 6);
                Err(SchedError::BadHandle)
            }
        }
    }

    /// Resume a suspended task.
    pub fn resume(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), SchedError> {
        ctx.charge(2);
        match self.task_mut(handle) {
            Some(t) => {
                ctx.cov_var(site, 8);
                if t.state == TaskState::Suspended {
                    t.state = TaskState::Ready;
                }
                Ok(())
            }
            None => {
                ctx.cov_var(site, 6);
                Err(SchedError::BadHandle)
            }
        }
    }

    /// Change a task's priority.
    pub fn set_priority(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
        priority: u8,
    ) -> Result<(), SchedError> {
        ctx.charge(2);
        if priority > self.max_priority {
            ctx.cov_var(site, 2);
            return Err(SchedError::BadPriority);
        }
        match self.task_mut(handle) {
            Some(t) => {
                t.priority = priority;
                ctx.cov_var(site, 11);
                Ok(())
            }
            None => {
                ctx.cov_var(site, 6);
                Err(SchedError::BadHandle)
            }
        }
    }

    /// Delay the running (or named) task for `ticks`.
    pub fn delay(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
        ticks: u64,
    ) -> Result<(), SchedError> {
        ctx.charge(2);
        // A fuzzed delay can be astronomically large. Real kernels do
        // modular tick arithmetic (FreeRTOS' vTaskDelay wraps its
        // TickType_t), so the deadline wraps too — which in the model
        // means an absurd delay comes due almost immediately rather
        // than parking the task forever.
        let wake = self.tick.wrapping_add(ticks);
        if self.running == Some(handle) {
            self.running = None;
        }
        match self.task_mut(handle) {
            Some(t) => {
                ctx.cov_var(site, 12);
                t.state = TaskState::Delayed(wake);
                Ok(())
            }
            None => {
                ctx.cov_var(site, 6);
                Err(SchedError::BadHandle)
            }
        }
    }

    /// Advance the scheduler one tick: wake expired delays, then pick the
    /// next task to run according to the policy.
    pub fn tick(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str) {
        ctx.charge(3);
        self.tick += 1;
        let now = self.tick;
        for t in &mut self.tasks {
            if let TaskState::Delayed(wake) = t.state {
                if now >= wake {
                    ctx.cov_var(site, 13);
                    t.state = TaskState::Ready;
                }
            }
        }
        // Demote the running task back to ready for the pick.
        let prev = self.running.take();
        if let Some(h) = prev {
            if let Some(t) = self.task_mut(h) {
                if t.state == TaskState::Running {
                    t.state = TaskState::Ready;
                }
            }
        }
        // Pick the highest-priority ready task; round-robin rotates among
        // equals, preemptive sticks with the first.
        let mut best: Option<usize> = None;
        for (i, t) in self.tasks.iter().enumerate() {
            if t.state != TaskState::Ready {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let better = t.priority > self.tasks[b].priority
                        || (t.priority == self.tasks[b].priority
                            && self.policy == Policy::TickRoundRobin
                            && self.tasks[b].handle == prev.unwrap_or(0));
                    if better {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        if let Some(i) = best {
            ctx.cov_var(site, 300 + self.tasks[i].priority as u64);
            let handle = self.tasks[i].handle;
            if prev != Some(handle) {
                self.context_switches += 1;
                ctx.cov_var(
                    site,
                    if self.policy == Policy::TickRoundRobin {
                        9
                    } else {
                        10
                    },
                );
            }
            self.tasks[i].state = TaskState::Running;
            self.tasks[i].runtime_ticks += 1;
            self.running = Some(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    fn sched(policy: Policy) -> Scheduler {
        Scheduler::new(policy, 8, 31, 16, 128)
    }

    #[test]
    fn create_validates_limits() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::TickRoundRobin);
            assert_eq!(
                s.create(ctx, "s", "averyveryverylongname", 1, 256),
                Err(SchedError::NameTooLong)
            );
            assert_eq!(
                s.create(ctx, "s", "t", 99, 256),
                Err(SchedError::BadPriority)
            );
            assert_eq!(
                s.create(ctx, "s", "t", 1, 16),
                Err(SchedError::StackTooSmall)
            );
            let h = s.create(ctx, "s", "t", 1, 256).unwrap();
            assert!(s.task(h).is_some());
        });
    }

    #[test]
    fn table_fills_up() {
        with_ctx(|ctx| {
            let mut s = Scheduler::new(Policy::Preemptive, 2, 31, 16, 128);
            s.create(ctx, "s", "a", 1, 256).unwrap();
            s.create(ctx, "s", "b", 1, 256).unwrap();
            assert_eq!(
                s.create(ctx, "s", "c", 1, 256),
                Err(SchedError::TooManyTasks)
            );
        });
    }

    #[test]
    fn highest_priority_runs() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::Preemptive);
            let lo = s.create(ctx, "s", "lo", 1, 256).unwrap();
            let hi = s.create(ctx, "s", "hi", 5, 256).unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), Some(hi));
            s.delete(ctx, "s", hi).unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), Some(lo));
        });
    }

    #[test]
    fn round_robin_rotates_equals() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::TickRoundRobin);
            let a = s.create(ctx, "s", "a", 3, 256).unwrap();
            let b = s.create(ctx, "s", "b", 3, 256).unwrap();
            s.tick(ctx, "s");
            let first = s.running().unwrap();
            s.tick(ctx, "s");
            let second = s.running().unwrap();
            assert_ne!(first, second);
            assert!([a, b].contains(&first) && [a, b].contains(&second));
        });
    }

    #[test]
    fn preemptive_does_not_rotate_equals() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::Preemptive);
            s.create(ctx, "s", "a", 3, 256).unwrap();
            s.create(ctx, "s", "b", 3, 256).unwrap();
            s.tick(ctx, "s");
            let first = s.running().unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), Some(first));
        });
    }

    #[test]
    fn delay_blocks_then_wakes() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::Preemptive);
            let t = s.create(ctx, "s", "t", 3, 256).unwrap();
            s.delay(ctx, "s", t, 2).unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), None);
            s.tick(ctx, "s");
            s.tick(ctx, "s");
            assert_eq!(s.running(), Some(t));
        });
    }

    #[test]
    fn suspend_resume() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::Preemptive);
            let t = s.create(ctx, "s", "t", 3, 256).unwrap();
            s.suspend(ctx, "s", t).unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), None);
            s.resume(ctx, "s", t).unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), Some(t));
        });
    }

    #[test]
    fn priority_change_takes_effect() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::Preemptive);
            let a = s.create(ctx, "s", "a", 3, 256).unwrap();
            let b = s.create(ctx, "s", "b", 2, 256).unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), Some(a));
            s.set_priority(ctx, "s", b, 9).unwrap();
            s.tick(ctx, "s");
            assert_eq!(s.running(), Some(b));
        });
    }

    #[test]
    fn bad_handles_everywhere() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::Preemptive);
            assert_eq!(s.delete(ctx, "s", 77), Err(SchedError::BadHandle));
            assert_eq!(s.suspend(ctx, "s", 77), Err(SchedError::BadHandle));
            assert_eq!(s.resume(ctx, "s", 77), Err(SchedError::BadHandle));
            assert_eq!(s.delay(ctx, "s", 77, 1), Err(SchedError::BadHandle));
        });
    }

    #[test]
    fn context_switch_counter() {
        with_ctx(|ctx| {
            let mut s = sched(Policy::TickRoundRobin);
            s.create(ctx, "s", "a", 3, 256).unwrap();
            s.create(ctx, "s", "b", 3, 256).unwrap();
            for _ in 0..6 {
                s.tick(ctx, "s");
            }
            assert!(s.context_switches() >= 5);
        });
    }
}
