//! Fixed-block memory pool (RT-Thread `rt_mp_*` style).
//!
//! A pool hands out equal-size blocks from a bitmap. RT-Thread's memory
//! pool is the substrate of bug #7 (`rt_mp_alloc()`): the OS layer seeds
//! the fault in its wrapper when a precisely exhausted pool is squeezed
//! again under the buggy flag combination.
//!
//! Branch variants: 0 entry, 1 found free block, 2 exhausted, 3 free ok,
//! 4 bad block index, 5 block already free.

use crate::ctx::ExecCtx;

/// Pool failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// All blocks in use.
    Exhausted,
    /// Index out of range.
    BadBlock,
    /// Block already free.
    NotAllocated,
}

/// A fixed-block pool.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    /// Pool name (RT-Thread pools are named kernel objects).
    pub name: String,
    block_size: u32,
    used: Vec<bool>,
    total_allocs: u64,
}

impl MemoryPool {
    /// A pool of `block_count` blocks of `block_size` bytes each.
    pub fn new(name: impl Into<String>, block_size: u32, block_count: usize) -> Self {
        MemoryPool {
            name: name.into(),
            block_size,
            used: vec![false; block_count],
            total_allocs: 0,
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Total block count.
    pub fn block_count(&self) -> usize {
        self.used.len()
    }

    /// Blocks currently allocated.
    pub fn in_use(&self) -> usize {
        self.used.iter().filter(|&&u| u).count()
    }

    /// Whether every block is allocated.
    pub fn is_exhausted(&self) -> bool {
        self.used.iter().all(|&u| u)
    }

    /// Allocate one block, returning its index.
    pub fn alloc(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str) -> Result<u32, PoolError> {
        ctx.cov_var(site, 0);
        ctx.charge(2);
        match self.used.iter().position(|&u| !u) {
            Some(i) => {
                ctx.cov_var(site, 1);
                ctx.cov_var(site, 100 + i as u64);
                self.used[i] = true;
                self.total_allocs += 1;
                Ok(i as u32)
            }
            None => {
                ctx.cov_var(site, 2);
                Err(PoolError::Exhausted)
            }
        }
    }

    /// Free a block by index.
    pub fn free(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        block: u32,
    ) -> Result<(), PoolError> {
        ctx.charge(2);
        let i = block as usize;
        if i >= self.used.len() {
            ctx.cov_var(site, 4);
            return Err(PoolError::BadBlock);
        }
        if !self.used[i] {
            ctx.cov_var(site, 5);
            return Err(PoolError::NotAllocated);
        }
        ctx.cov_var(site, 3);
        self.used[i] = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn exhaustion_and_reuse() {
        with_ctx(|ctx| {
            let mut p = MemoryPool::new("mp0", 32, 3);
            let a = p.alloc(ctx, "s").unwrap();
            let _b = p.alloc(ctx, "s").unwrap();
            let _c = p.alloc(ctx, "s").unwrap();
            assert!(p.is_exhausted());
            assert_eq!(p.alloc(ctx, "s"), Err(PoolError::Exhausted));
            p.free(ctx, "s", a).unwrap();
            assert_eq!(p.alloc(ctx, "s").unwrap(), a);
        });
    }

    #[test]
    fn free_validation() {
        with_ctx(|ctx| {
            let mut p = MemoryPool::new("mp0", 32, 2);
            assert_eq!(p.free(ctx, "s", 5), Err(PoolError::BadBlock));
            assert_eq!(p.free(ctx, "s", 1), Err(PoolError::NotAllocated));
        });
    }

    #[test]
    fn counters() {
        with_ctx(|ctx| {
            let mut p = MemoryPool::new("mp0", 16, 4);
            p.alloc(ctx, "s").unwrap();
            p.alloc(ctx, "s").unwrap();
            assert_eq!(p.in_use(), 2);
            assert_eq!(p.block_count(), 4);
            assert_eq!(p.block_size(), 16);
        });
    }
}
