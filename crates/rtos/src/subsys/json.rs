//! JSON library: a real recursive-descent parser and an encoder.
//!
//! This is one of the two modules the paper uses for the GDBFuzz
//! comparison (Table 4: the JSON component on hardware) and the home of
//! Zephyr bug #3 (`json_obj_encode`). The parser is deliberately branchy —
//! per-state, per-character-class coverage — so coverage-guided input
//! generation has real structure to climb.
//!
//! Variants: parser uses `parse::state`-family edges keyed by
//! (state, char-class); encoder uses depth/width edges.

use crate::ctx::ExecCtx;

/// Parse failure modes, with byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected byte.
    Unexpected(usize),
    /// Input ended mid-value.
    Truncated,
    /// Nesting beyond the library's fixed stack.
    TooDeep,
    /// Trailing bytes after the top-level value.
    Trailing(usize),
    /// Invalid escape sequence.
    BadEscape(usize),
    /// Invalid number syntax.
    BadNumber(usize),
    /// Serialised output exceeds the encode buffer.
    OutputOverflow,
}

/// Statistics of a successful parse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonStats {
    /// Objects seen.
    pub objects: u32,
    /// Arrays seen.
    pub arrays: u32,
    /// Strings seen (keys included).
    pub strings: u32,
    /// Numbers seen.
    pub numbers: u32,
    /// Booleans and nulls seen.
    pub literals: u32,
    /// Maximum nesting depth reached.
    pub max_depth: u32,
}

/// Maximum nesting the library supports.
pub const MAX_DEPTH: u32 = 12;

/// Parse a JSON document, returning its statistics.
pub fn parse(
    ctx: &mut ExecCtx<'_>,
    site: &'static str,
    input: &[u8],
) -> Result<JsonStats, JsonError> {
    ctx.cov_var(site, 0);
    ctx.charge(2 + input.len() as u64 / 8);
    let mut p = Parser {
        input,
        pos: 0,
        stats: JsonStats::default(),
        site,
    };
    p.ws(ctx);
    p.value(ctx, 1)?;
    p.ws(ctx);
    if p.pos != input.len() {
        ctx.cov_var(site, 2);
        return Err(JsonError::Trailing(p.pos));
    }
    ctx.cov_var(site, 1);
    // Shape-of-document edges: what the input actually contained.
    let st = &p.stats;
    ctx.cov_var(site, 200 + (st.objects as u64).min(15));
    ctx.cov_var(site, 220 + (st.arrays as u64).min(15));
    ctx.cov_var(site, 240 + (st.strings as u64).min(15));
    ctx.cov_var(site, 260 + (st.numbers as u64).min(15));
    ctx.cov_var(site, 280 + st.max_depth as u64);
    Ok(p.stats)
}

struct Parser<'i> {
    input: &'i [u8],
    pos: usize,
    stats: JsonStats,
    site: &'static str,
}

impl<'i> Parser<'i> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn ws(&mut self, ctx: &mut ExecCtx<'_>) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
        ctx.charge(1);
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.bump() {
            Some(x) if x == b => Ok(()),
            Some(_) => Err(JsonError::Unexpected(self.pos - 1)),
            None => Err(JsonError::Truncated),
        }
    }

    fn value(&mut self, ctx: &mut ExecCtx<'_>, depth: u32) -> Result<(), JsonError> {
        if depth > MAX_DEPTH {
            ctx.cov_var(self.site, 3);
            return Err(JsonError::TooDeep);
        }
        self.stats.max_depth = self.stats.max_depth.max(depth);
        // Edge per (depth bucket, value class) — rich, input-shaped space.
        match self.peek() {
            Some(b'{') => {
                ctx.cov_var(self.site, 10 + depth as u64);
                self.object(ctx, depth)
            }
            Some(b'[') => {
                ctx.cov_var(self.site, 30 + depth as u64);
                self.array(ctx, depth)
            }
            Some(b'"') => {
                ctx.cov_var(self.site, 50);
                self.string(ctx)?;
                self.stats.strings += 1;
                Ok(())
            }
            Some(b't') => {
                ctx.cov_var(self.site, 51);
                self.literal(b"true")?;
                self.stats.literals += 1;
                Ok(())
            }
            Some(b'f') => {
                ctx.cov_var(self.site, 52);
                self.literal(b"false")?;
                self.stats.literals += 1;
                Ok(())
            }
            Some(b'n') => {
                ctx.cov_var(self.site, 53);
                self.literal(b"null")?;
                self.stats.literals += 1;
                Ok(())
            }
            Some(b'-' | b'0'..=b'9') => {
                ctx.cov_var(self.site, 54);
                self.number(ctx)?;
                self.stats.numbers += 1;
                Ok(())
            }
            Some(_) => {
                ctx.cov_var(self.site, 55);
                Err(JsonError::Unexpected(self.pos))
            }
            None => Err(JsonError::Truncated),
        }
    }

    fn object(&mut self, ctx: &mut ExecCtx<'_>, depth: u32) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.stats.objects += 1;
        self.ws(ctx);
        if self.peek() == Some(b'}') {
            ctx.cov_var(self.site, 70);
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.ws(ctx);
            if self.peek() != Some(b'"') {
                ctx.cov_var(self.site, 71);
                return Err(JsonError::Unexpected(self.pos));
            }
            self.string(ctx)?;
            self.stats.strings += 1;
            self.ws(ctx);
            self.expect(b':')?;
            self.ws(ctx);
            self.value(ctx, depth + 1)?;
            self.ws(ctx);
            match self.bump() {
                Some(b',') => {
                    ctx.cov_var(self.site, 72);
                    continue;
                }
                Some(b'}') => {
                    ctx.cov_var(self.site, 73);
                    return Ok(());
                }
                Some(_) => return Err(JsonError::Unexpected(self.pos - 1)),
                None => return Err(JsonError::Truncated),
            }
        }
    }

    fn array(&mut self, ctx: &mut ExecCtx<'_>, depth: u32) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.stats.arrays += 1;
        self.ws(ctx);
        if self.peek() == Some(b']') {
            ctx.cov_var(self.site, 80);
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.ws(ctx);
            self.value(ctx, depth + 1)?;
            self.ws(ctx);
            match self.bump() {
                Some(b',') => {
                    ctx.cov_var(self.site, 81);
                    continue;
                }
                Some(b']') => {
                    ctx.cov_var(self.site, 82);
                    return Ok(());
                }
                Some(_) => return Err(JsonError::Unexpected(self.pos - 1)),
                None => return Err(JsonError::Truncated),
            }
        }
    }

    fn string(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                        ctx.cov_var(self.site, 90);
                    }
                    Some(b'u') => {
                        ctx.cov_var(self.site, 91);
                        for _ in 0..4 {
                            match self.bump() {
                                Some(h) if h.is_ascii_hexdigit() => {}
                                Some(_) => return Err(JsonError::BadEscape(self.pos - 1)),
                                None => return Err(JsonError::Truncated),
                            }
                        }
                    }
                    Some(_) => {
                        ctx.cov_var(self.site, 92);
                        return Err(JsonError::BadEscape(self.pos - 1));
                    }
                    None => return Err(JsonError::Truncated),
                },
                Some(c) if c < 0x20 => {
                    ctx.cov_var(self.site, 93);
                    return Err(JsonError::Unexpected(self.pos - 1));
                }
                Some(_) => {}
                None => return Err(JsonError::Truncated),
            }
        }
    }

    fn number(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            ctx.cov_var(self.site, 100);
            self.pos += 1;
        }
        // Integer part.
        match self.bump() {
            Some(b'0') => {
                ctx.cov_var(self.site, 101);
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(JsonError::BadNumber(start));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::BadNumber(start)),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            ctx.cov_var(self.site, 102);
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::BadNumber(start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            ctx.cov_var(self.site, 103);
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::BadNumber(start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), JsonError> {
        for &w in word {
            match self.bump() {
                Some(b) if b == w => {}
                Some(_) => return Err(JsonError::Unexpected(self.pos - 1)),
                None => return Err(JsonError::Truncated),
            }
        }
        Ok(())
    }
}

/// Maximum serialised output the library's buffer can hold.
pub const MAX_ENCODE_BYTES: usize = 64 * 1024;

/// Encode a synthetic object tree of the given shape, returning its
/// serialised length. `depth` beyond the library stack is the substrate
/// of Zephyr bug #3 — the OS wrapper panics instead of erroring when the
/// descriptor's nesting exceeds its unchecked encoder stack. The length
/// is computed bottom-up in O(depth); output past the encode buffer is
/// an overflow error.
pub fn encode(
    ctx: &mut ExecCtx<'_>,
    site: &'static str,
    depth: u32,
    width: u32,
) -> Result<usize, JsonError> {
    ctx.cov_var(site, 0);
    // Validate before doing any work — a wild depth must cost nothing.
    if depth > MAX_DEPTH {
        ctx.cov_var(site, 1);
        ctx.charge(2);
        return Err(JsonError::TooDeep);
    }
    // Work is bounded by the encode buffer regardless of the requested
    // width; cost must be too.
    ctx.charge(2 + (depth as u64) * (width.clamp(1, 64) as u64));
    let width = width.max(1) as usize;
    // len(0) = 1; len(d) = 2 + width*(5 + len(d-1)) + (width-1).
    let mut len = 1usize;
    for d in 1..=depth {
        ctx.cov_var(site, 110 + d as u64);
        len = match len
            .checked_mul(width)
            .and_then(|v| v.checked_add(2 + 6 * width - 1))
        {
            Some(v) if v <= MAX_ENCODE_BYTES => v,
            _ => {
                ctx.cov_var(site, 2);
                return Err(JsonError::OutputOverflow);
            }
        };
    }
    Ok(len)
}

#[cfg(test)]
impl<'a> ExecCtx<'a> {
    /// Test helper: reborrow for multiple uses in one scope.
    pub(crate) fn by_ref(&mut self) -> &mut Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    fn ok(input: &str) -> JsonStats {
        with_ctx(|ctx| parse(ctx, "t::json::parse", input.as_bytes()).unwrap())
    }

    fn err(input: &str) -> JsonError {
        with_ctx(|ctx| parse(ctx, "t::json::parse", input.as_bytes()).unwrap_err())
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(ok("42").numbers, 1);
        assert_eq!(ok("-3.5e+2").numbers, 1);
        assert_eq!(ok("\"hi\"").strings, 1);
        assert_eq!(ok("true").literals, 1);
        assert_eq!(ok("null").literals, 1);
    }

    #[test]
    fn parses_structures() {
        let s = ok(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#);
        assert_eq!(s.objects, 2);
        assert_eq!(s.arrays, 1);
        assert_eq!(s.numbers, 2);
        assert_eq!(s.strings, 4);
        assert_eq!(s.literals, 1);
        assert!(s.max_depth >= 3);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(ok("{}").objects, 1);
        assert_eq!(ok("[]").arrays, 1);
    }

    #[test]
    fn escapes() {
        assert_eq!(ok(r#""a\n\tAb""#).strings, 1);
        assert!(matches!(err(r#""\q""#), JsonError::BadEscape(_)));
        assert!(matches!(err(r#""\u00g1""#), JsonError::BadEscape(_)));
    }

    #[test]
    fn number_syntax_errors() {
        assert!(matches!(err("01"), JsonError::BadNumber(_)));
        assert!(matches!(err("1."), JsonError::BadNumber(_)));
        assert!(matches!(err("1e"), JsonError::BadNumber(_)));
        assert!(matches!(err("-"), JsonError::BadNumber(_)));
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(err("{\"a\" 1}"), JsonError::Unexpected(_)));
        assert!(matches!(err("{1: 2}"), JsonError::Unexpected(_)));
        assert!(matches!(err("[1, 2"), JsonError::Truncated));
        assert!(matches!(err("[] []"), JsonError::Trailing(_)));
        assert!(matches!(err(""), JsonError::Truncated));
    }

    #[test]
    fn control_chars_in_strings_rejected() {
        assert!(matches!(err("\"a\u{0}b\""), JsonError::Unexpected(_)));
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(13) + &"]".repeat(13);
        assert_eq!(err(&deep), JsonError::TooDeep);
        let fine = "[".repeat(11) + "1" + &"]".repeat(11);
        assert!(ok(&fine).max_depth <= MAX_DEPTH);
    }

    #[test]
    fn encoder_length_grows_with_shape() {
        with_ctx(|ctx| {
            let a = encode(ctx, "t::json::enc", 1, 1).unwrap();
            let b = encode(ctx, "t::json::enc", 3, 2).unwrap();
            assert!(b > a);
            assert_eq!(encode(ctx, "t::json::enc", 13, 1), Err(JsonError::TooDeep));
            // Wide and deep shapes overflow the encode buffer instead of
            // taking exponential time.
            assert_eq!(
                encode(ctx, "t::json::enc", 12, 4),
                Err(JsonError::OutputOverflow)
            );
        });
    }

    #[test]
    fn parser_coverage_is_input_shaped() {
        let mut bus = Bus::new(0x2000_0000, 0x8000, Endianness::Little);
        let region = eof_coverage::CovRegion::new(0x2000_1000, 512);
        region.init(&mut bus.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(eof_coverage::InstrumentMode::Full, region);
        {
            let mut ctx = ExecCtx::new(&mut bus, &mut cov);
            parse(ctx.by_ref(), "t::json::parse", b"1").ok();
        }
        let shallow = cov.hits;
        {
            let mut ctx = ExecCtx::new(&mut bus, &mut cov);
            parse(
                ctx.by_ref(),
                "t::json::parse",
                br#"{"a":[1,true,"x"],"b":{"c":null}}"#,
            )
            .ok();
        }
        assert!(cov.hits > shallow * 2, "richer input must hit more edges");
    }
}
