//! Socket abstraction layer (RT-Thread SAL / lwIP-style sockets).
//!
//! The networking substrate of the paper's case study: bug #12 fires when
//! `sal_socket` logs its creation banner through a serial device that an
//! earlier call unregistered. The layer models the socket lifecycle
//! (create, bind, connect, send, close) over an in-kernel loopback.
//!
//! Variants: 0 socket entry, 1 bad domain, 2 bad type, 3 created,
//! 4 table full, 5 bind ok, 6 bind in use, 7 connect ok, 8 connect refused,
//! 9 send ok, 10 send not connected, 11 close, 12 bad handle.

use crate::ctx::ExecCtx;

/// Address family constants (AF_*).
pub mod af {
    /// AF_INET.
    pub const INET: u64 = 2;
    /// AF_INET6.
    pub const INET6: u64 = 10;
    /// AF_UNIX.
    pub const UNIX: u64 = 1;
}

/// Socket types (SOCK_*).
pub mod sock {
    /// SOCK_STREAM.
    pub const STREAM: u64 = 1;
    /// SOCK_DGRAM.
    pub const DGRAM: u64 = 2;
}

/// Socket layer failure modes (mapped to negative errno by OS wrappers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalError {
    /// Unsupported address family.
    BadDomain,
    /// Unsupported socket type.
    BadType,
    /// Socket table full.
    TooMany,
    /// Handle does not name an open socket.
    BadHandle,
    /// Port already bound.
    AddrInUse,
    /// Connect target refused (nothing listening on the loopback port).
    Refused,
    /// Send on an unconnected stream socket.
    NotConnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SockState {
    Open,
    Bound(u16),
    Connected(u16),
    Closed,
}

#[derive(Debug, Clone)]
struct Socket {
    domain: u64,
    ty: u64,
    state: SockState,
    tx_bytes: u64,
}

/// The socket layer of one kernel.
#[derive(Debug, Clone, Default)]
pub struct SocketLayer {
    sockets: Vec<Socket>,
    max_sockets: usize,
    creations: u64,
}

impl SocketLayer {
    /// A layer with room for `max_sockets` concurrent sockets.
    pub fn new(max_sockets: usize) -> Self {
        SocketLayer {
            sockets: Vec::new(),
            max_sockets,
            creations: 0,
        }
    }

    /// Sockets created over the kernel's lifetime.
    pub fn creations(&self) -> u64 {
        self.creations
    }

    /// Open sockets right now.
    pub fn open_count(&self) -> usize {
        self.sockets
            .iter()
            .filter(|s| s.state != SockState::Closed)
            .count()
    }

    /// `socket(domain, type, protocol)`.
    pub fn socket(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        domain: u64,
        ty: u64,
        _protocol: u64,
    ) -> Result<u32, SalError> {
        ctx.cov_var(site, 0);
        ctx.charge(4);
        if ![af::INET, af::INET6, af::UNIX].contains(&domain) {
            ctx.cov_var(site, 1);
            return Err(SalError::BadDomain);
        }
        if ![sock::STREAM, sock::DGRAM].contains(&ty) {
            ctx.cov_var(site, 2);
            return Err(SalError::BadType);
        }
        if self.open_count() >= self.max_sockets {
            ctx.cov_var(site, 4);
            return Err(SalError::TooMany);
        }
        ctx.cov_var(site, 3);
        ctx.cov_var(site, 100 + self.open_count() as u64);
        ctx.cov_var(site, 110 + domain * 4 + ty);
        self.sockets.push(Socket {
            domain,
            ty,
            state: SockState::Open,
            tx_bytes: 0,
        });
        self.creations += 1;
        Ok(self.sockets.len() as u32 - 1)
    }

    fn get_mut(&mut self, handle: u32) -> Result<&mut Socket, SalError> {
        match self.sockets.get_mut(handle as usize) {
            Some(s) if s.state != SockState::Closed => Ok(s),
            _ => Err(SalError::BadHandle),
        }
    }

    /// Bind to a port.
    pub fn bind(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
        port: u16,
    ) -> Result<(), SalError> {
        ctx.charge(3);
        let in_use = self
            .sockets
            .iter()
            .any(|s| matches!(s.state, SockState::Bound(p) if p == port));
        let s = self.get_mut(handle).inspect_err(|_| {
            ctx.cov_var(site, 12);
        })?;
        if in_use {
            ctx.cov_var(site, 6);
            return Err(SalError::AddrInUse);
        }
        ctx.cov_var(site, 5);
        ctx.cov_var(site, 100 + (port as u64 / 4096));
        s.state = SockState::Bound(port);
        Ok(())
    }

    /// Connect to a loopback port; succeeds only if some socket is bound
    /// there.
    pub fn connect(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
        port: u16,
    ) -> Result<(), SalError> {
        ctx.charge(3);
        let listening = self
            .sockets
            .iter()
            .any(|s| matches!(s.state, SockState::Bound(p) if p == port));
        let s = self.get_mut(handle).inspect_err(|_| {
            ctx.cov_var(site, 12);
        })?;
        if !listening {
            ctx.cov_var(site, 8);
            return Err(SalError::Refused);
        }
        ctx.cov_var(site, 7);
        s.state = SockState::Connected(port);
        Ok(())
    }

    /// Send bytes. Streams require connection; datagrams do not.
    pub fn send(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
        data: &[u8],
    ) -> Result<u64, SalError> {
        ctx.charge(2 + data.len() as u64 / 8);
        let s = self.get_mut(handle).inspect_err(|_| {
            ctx.cov_var(site, 12);
        })?;
        if s.ty == sock::STREAM && !matches!(s.state, SockState::Connected(_)) {
            ctx.cov_var(site, 10);
            return Err(SalError::NotConnected);
        }
        ctx.cov_var(site, 9);
        ctx.cov_var(site, 100 + (data.len() as u64 / 16).min(8));
        // Silicon-only: NIC DMA segmentation per payload band.
        if ctx.bus.silicon {
            ctx.cov_var(site, 300 + (data.len() as u64 / 8).min(15));
        }
        s.tx_bytes += data.len() as u64;
        Ok(data.len() as u64)
    }

    /// Close a socket.
    pub fn close(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), SalError> {
        ctx.charge(2);
        let s = self.get_mut(handle).inspect_err(|_| {
            ctx.cov_var(site, 12);
        })?;
        ctx.cov_var(site, 11);
        s.state = SockState::Closed;
        Ok(())
    }

    /// Domain of an open socket (used by log banners).
    pub fn domain_of(&self, handle: u32) -> Option<u64> {
        self.sockets
            .get(handle as usize)
            .filter(|s| s.state != SockState::Closed)
            .map(|s| s.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn stream_lifecycle() {
        with_ctx(|ctx| {
            let mut l = SocketLayer::new(8);
            let srv = l.socket(ctx, "s", af::INET, sock::STREAM, 0).unwrap();
            l.bind(ctx, "s", srv, 8080).unwrap();
            let cli = l.socket(ctx, "s", af::INET, sock::STREAM, 0).unwrap();
            assert_eq!(l.send(ctx, "s", cli, b"x"), Err(SalError::NotConnected));
            l.connect(ctx, "s", cli, 8080).unwrap();
            assert_eq!(l.send(ctx, "s", cli, b"ping").unwrap(), 4);
            l.close(ctx, "s", cli).unwrap();
            assert_eq!(l.send(ctx, "s", cli, b"x"), Err(SalError::BadHandle));
        });
    }

    #[test]
    fn dgram_sends_unconnected() {
        with_ctx(|ctx| {
            let mut l = SocketLayer::new(4);
            let s = l.socket(ctx, "s", af::INET, sock::DGRAM, 0).unwrap();
            assert_eq!(l.send(ctx, "s", s, b"dg").unwrap(), 2);
        });
    }

    #[test]
    fn domain_and_type_validation() {
        with_ctx(|ctx| {
            let mut l = SocketLayer::new(4);
            assert_eq!(
                l.socket(ctx, "s", 99, sock::STREAM, 0),
                Err(SalError::BadDomain)
            );
            assert_eq!(l.socket(ctx, "s", af::INET, 9, 0), Err(SalError::BadType));
        });
    }

    #[test]
    fn port_collision() {
        with_ctx(|ctx| {
            let mut l = SocketLayer::new(4);
            let a = l.socket(ctx, "s", af::INET, sock::STREAM, 0).unwrap();
            let b = l.socket(ctx, "s", af::INET, sock::STREAM, 0).unwrap();
            l.bind(ctx, "s", a, 80).unwrap();
            assert_eq!(l.bind(ctx, "s", b, 80), Err(SalError::AddrInUse));
        });
    }

    #[test]
    fn connect_refused_without_listener() {
        with_ctx(|ctx| {
            let mut l = SocketLayer::new(4);
            let c = l.socket(ctx, "s", af::INET, sock::STREAM, 0).unwrap();
            assert_eq!(l.connect(ctx, "s", c, 9999), Err(SalError::Refused));
        });
    }

    #[test]
    fn table_limit_counts_open_only() {
        with_ctx(|ctx| {
            let mut l = SocketLayer::new(1);
            let a = l.socket(ctx, "s", af::INET, sock::DGRAM, 0).unwrap();
            assert_eq!(
                l.socket(ctx, "s", af::INET, sock::DGRAM, 0),
                Err(SalError::TooMany)
            );
            l.close(ctx, "s", a).unwrap();
            assert!(l.socket(ctx, "s", af::INET, sock::DGRAM, 0).is_ok());
            assert_eq!(l.creations(), 2);
        });
    }
}
