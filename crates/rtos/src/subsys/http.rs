//! HTTP server: request parser and router.
//!
//! The second module of the paper's application-level comparison
//! (Table 4: the HTTP server on an ESP32). A real request-line and
//! header parser with a small routing table, giving byte-level inputs a
//! deep branch structure.

use crate::ctx::ExecCtx;

/// Parse failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Empty or structurally broken request line.
    BadRequestLine,
    /// Unsupported method token.
    BadMethod,
    /// Malformed target path.
    BadPath,
    /// Unknown HTTP version.
    BadVersion,
    /// Malformed header line.
    BadHeader(usize),
    /// Headers did not terminate before the input ended.
    Truncated,
    /// Too many headers.
    TooManyHeaders,
}

/// Supported methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// PUT.
    Put,
    /// DELETE.
    Delete,
    /// HEAD.
    Head,
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path component (before any `?`).
    pub path: String,
    /// Query string, if any.
    pub query: Option<String>,
    /// Header count.
    pub header_count: u32,
    /// Content-Length header value, if present and numeric.
    pub content_length: Option<u32>,
    /// Whether `Connection: keep-alive` was seen.
    pub keep_alive: bool,
}

/// Maximum headers the server accepts.
pub const MAX_HEADERS: u32 = 16;

/// Parse an HTTP/1.x request head (request line + headers).
pub fn parse_request(
    ctx: &mut ExecCtx<'_>,
    site: &'static str,
    input: &[u8],
) -> Result<Request, HttpError> {
    ctx.cov_var(site, 0);
    ctx.charge(3 + input.len() as u64 / 8);
    let text = std::str::from_utf8(input).map_err(|_| HttpError::BadRequestLine)?;
    let lines: Vec<&str> = text.split("\r\n").collect();
    let reqline = *lines.first().ok_or(HttpError::BadRequestLine)?;
    let mut parts = reqline.split(' ');
    let method = match parts.next().unwrap_or("") {
        "GET" => {
            ctx.cov_var(site, 1);
            Method::Get
        }
        "POST" => {
            ctx.cov_var(site, 2);
            Method::Post
        }
        "PUT" => {
            ctx.cov_var(site, 3);
            Method::Put
        }
        "DELETE" => {
            ctx.cov_var(site, 4);
            Method::Delete
        }
        "HEAD" => {
            ctx.cov_var(site, 5);
            Method::Head
        }
        "" => {
            ctx.cov_var(site, 6);
            return Err(HttpError::BadRequestLine);
        }
        _ => {
            ctx.cov_var(site, 7);
            return Err(HttpError::BadMethod);
        }
    };
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    if !target.starts_with('/') {
        ctx.cov_var(site, 8);
        return Err(HttpError::BadPath);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => {
            ctx.cov_var(site, 9);
            (p.to_string(), Some(q.to_string()))
        }
        None => (target.to_string(), None),
    };
    match parts.next() {
        Some("HTTP/1.0") => ctx.cov_var(site, 10),
        Some("HTTP/1.1") => ctx.cov_var(site, 11),
        _ => {
            ctx.cov_var(site, 12);
            return Err(HttpError::BadVersion);
        }
    }
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }

    let mut header_count = 0u32;
    let mut content_length = None;
    let mut keep_alive = false;
    let mut terminated = false;
    for (i, line) in lines.iter().copied().enumerate().skip(1) {
        if line.is_empty() {
            // A trailing empty segment is a split artifact of a lone
            // final CRLF, not the header terminator; a real terminator
            // has *something* (even "") after it.
            if i + 1 < lines.len() {
                ctx.cov_var(site, 13);
                terminated = true;
            }
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADERS {
            ctx.cov_var(site, 14);
            return Err(HttpError::TooManyHeaders);
        }
        let Some((name, value)) = line.split_once(':') else {
            ctx.cov_var(site, 15);
            return Err(HttpError::BadHeader(i));
        };
        if name.is_empty() || name.contains(' ') {
            ctx.cov_var(site, 16);
            return Err(HttpError::BadHeader(i));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            ctx.cov_var(site, 17);
            content_length = value.parse().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            ctx.cov_var(site, 18);
            keep_alive = value.eq_ignore_ascii_case("keep-alive");
        } else {
            ctx.cov_var(site, 19);
        }
    }
    if !terminated {
        ctx.cov_var(site, 20);
        return Err(HttpError::Truncated);
    }
    ctx.cov_var(site, 100 + (path.len() as u64 / 4).min(15));
    ctx.cov_var(site, 120 + header_count as u64);
    if let Some(q) = &query {
        ctx.cov_var(site, 140 + (q.len() as u64 / 4).min(15));
    }
    if let Some(cl) = content_length {
        ctx.cov_var(site, 160 + (cl as u64 / 16).min(15));
    }
    Ok(Request {
        method,
        path,
        query,
        header_count,
        content_length,
        keep_alive,
    })
}

/// The server's routing table and dispatch.
#[derive(Debug, Clone, Default)]
pub struct Router {
    routes: Vec<(Method, String)>,
    hits: u64,
    misses: u64,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default embedded site: a few REST-ish endpoints.
    pub fn with_default_routes() -> Self {
        let mut r = Self::new();
        for (m, p) in [
            (Method::Get, "/"),
            (Method::Get, "/index.html"),
            (Method::Get, "/status"),
            (Method::Get, "/api/sensors"),
            (Method::Post, "/api/sensors"),
            (Method::Put, "/api/config"),
            (Method::Delete, "/api/config"),
            (Method::Get, "/api/metrics"),
        ] {
            r.routes.push((m, p.to_string()));
        }
        r
    }

    /// Successful dispatches.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Dispatch a request: returns the HTTP status code.
    pub fn dispatch(&mut self, ctx: &mut ExecCtx<'_>, site: &'static str, req: &Request) -> u16 {
        ctx.charge(2);
        let exact = self
            .routes
            .iter()
            .position(|(m, p)| *m == req.method && *p == req.path);
        if let Some(i) = exact {
            ctx.cov_var(site, 40 + i as u64);
            self.hits += 1;
            // POST/PUT without a length are rejected by the handler.
            if matches!(req.method, Method::Post | Method::Put) && req.content_length.is_none() {
                ctx.cov_var(site, 30);
                return 411;
            }
            if req.query.is_some() {
                ctx.cov_var(site, 31);
            }
            return 200;
        }
        // Path known under a different method?
        if self.routes.iter().any(|(_, p)| *p == req.path) {
            ctx.cov_var(site, 32);
            self.misses += 1;
            return 405;
        }
        ctx.cov_var(site, 33);
        self.misses += 1;
        404
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    fn parse(raw: &str) -> Result<Request, HttpError> {
        with_ctx(|ctx| parse_request(ctx, "t::http::parse", raw.as_bytes()))
    }

    #[test]
    fn parses_simple_get() {
        let r = parse("GET /status HTTP/1.1\r\nHost: dev\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/status");
        assert_eq!(r.header_count, 1);
        assert!(!r.keep_alive);
    }

    #[test]
    fn parses_query_and_headers() {
        let r = parse(
            "POST /api/sensors?id=3 HTTP/1.0\r\nContent-Length: 12\r\nConnection: keep-alive\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.query.as_deref(), Some("id=3"));
        assert_eq!(r.content_length, Some(12));
        assert!(r.keep_alive);
    }

    #[test]
    fn rejects_bad_method_and_path() {
        assert_eq!(
            parse("BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadMethod)
        );
        assert_eq!(parse("GET pot HTTP/1.1\r\n\r\n"), Err(HttpError::BadPath));
        assert_eq!(parse("GET / HTTP/2.0\r\n\r\n"), Err(HttpError::BadVersion));
        assert_eq!(parse(""), Err(HttpError::BadRequestLine));
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nBad Name: x\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
    }

    #[test]
    fn requires_terminating_blank_line() {
        assert_eq!(
            parse("GET / HTTP/1.1\r\nHost: dev\r\n"),
            Err(HttpError::Truncated)
        );
    }

    #[test]
    fn header_limit() {
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..17 {
            req.push_str(&format!("H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        assert_eq!(parse(&req), Err(HttpError::TooManyHeaders));
    }

    #[test]
    fn router_status_codes() {
        with_ctx(|ctx| {
            let mut router = Router::with_default_routes();
            let get = |path: &str| Request {
                method: Method::Get,
                path: path.into(),
                query: None,
                header_count: 0,
                content_length: None,
                keep_alive: false,
            };
            assert_eq!(router.dispatch(ctx, "t::http::route", &get("/status")), 200);
            assert_eq!(router.dispatch(ctx, "t::http::route", &get("/nope")), 404);
            let mut del = get("/");
            del.method = Method::Delete;
            assert_eq!(router.dispatch(ctx, "t::http::route", &del), 405);
            let mut post = get("/api/sensors");
            post.method = Method::Post;
            assert_eq!(router.dispatch(ctx, "t::http::route", &post), 411);
            post.content_length = Some(4);
            assert_eq!(router.dispatch(ctx, "t::http::route", &post), 200);
            assert_eq!(router.hits(), 3);
        });
    }

    #[test]
    fn non_utf8_rejected() {
        with_ctx(|ctx| {
            assert_eq!(
                parse_request(ctx, "t::http::parse", &[0xff, 0xfe, 0x00]),
                Err(HttpError::BadRequestLine)
            );
        });
    }
}
