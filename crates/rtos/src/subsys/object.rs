//! Kernel object registry (RT-Thread's `rt_object` system).
//!
//! RT-Thread routes every kernel entity — threads, semaphores, events,
//! memory pools, devices — through a typed object registry with
//! per-type container lists. Three of the paper's RT-Thread bugs live
//! here: #5 (`rt_object_get_type` on a detached object), #6
//! (`rt_list_isempty` walking a corrupted container after a double
//! detach) and #8 (`rt_object_init` with an empty name).
//!
//! Variants: 0 init, 1 dup name, 2 table full, 3 detach, 4 find hit,
//! 5 find miss, 6 get_type live, 7 get_type detached.

use crate::ctx::ExecCtx;

/// RT-Thread object classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjClass {
    /// Thread objects.
    Thread,
    /// Semaphore objects.
    Semaphore,
    /// Event objects.
    Event,
    /// Memory-pool objects.
    MemPool,
    /// Device objects.
    Device,
    /// Timer objects.
    Timer,
}

impl ObjClass {
    /// All classes.
    pub const ALL: [ObjClass; 6] = [
        ObjClass::Thread,
        ObjClass::Semaphore,
        ObjClass::Event,
        ObjClass::MemPool,
        ObjClass::Device,
        ObjClass::Timer,
    ];

    /// Numeric type tag (mirrors `rt_object_class_type`).
    pub fn tag(self) -> u8 {
        match self {
            ObjClass::Thread => 1,
            ObjClass::Semaphore => 2,
            ObjClass::Event => 3,
            ObjClass::MemPool => 4,
            ObjClass::Device => 5,
            ObjClass::Timer => 6,
        }
    }
}

/// Registry failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjError {
    /// Name already registered in this class.
    DupName,
    /// Registry full.
    Full,
    /// Handle unknown.
    BadHandle,
    /// Name empty or too long.
    BadName,
    /// Object already detached.
    AlreadyDetached,
}

/// One registered kernel object.
#[derive(Debug, Clone)]
pub struct KObject {
    /// Registry handle.
    pub handle: u32,
    /// Object class.
    pub class: ObjClass,
    /// Object name (≤ 15 chars, RT-Thread's `RT_NAME_MAX`).
    pub name: String,
    /// Detached objects stay in the table as stale entries — the dangling
    /// state bugs #5 and #12 exploit.
    pub detached: bool,
}

/// The object registry.
#[derive(Debug, Clone)]
pub struct ObjectRegistry {
    objects: Vec<KObject>,
    max_objects: usize,
    next_handle: u32,
    /// Count of double-detach events (container corruption proxy for #6).
    pub double_detaches: u32,
}

/// RT-Thread's `RT_NAME_MAX` minus the NUL.
pub const NAME_MAX: usize = 15;

impl ObjectRegistry {
    /// A registry holding at most `max_objects`.
    pub fn new(max_objects: usize) -> Self {
        ObjectRegistry {
            objects: Vec::new(),
            max_objects,
            next_handle: 0x100,
            double_detaches: 0,
        }
    }

    /// Live (non-detached) object count.
    pub fn live_count(&self) -> usize {
        self.objects.iter().filter(|o| !o.detached).count()
    }

    /// Look up by handle (including stale entries).
    pub fn get(&self, handle: u32) -> Option<&KObject> {
        self.objects.iter().find(|o| o.handle == handle)
    }

    /// Register an object. Empty names are a [`ObjError::BadName`] at this
    /// layer; the RT-Thread wrapper turns that into assertion bug #8.
    pub fn init(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        class: ObjClass,
        name: &str,
    ) -> Result<u32, ObjError> {
        ctx.cov_var(site, 0);
        ctx.charge(3);
        if name.is_empty() || name.len() > NAME_MAX {
            return Err(ObjError::BadName);
        }
        if self
            .objects
            .iter()
            .any(|o| !o.detached && o.class == class && o.name == name)
        {
            ctx.cov_var(site, 1);
            return Err(ObjError::DupName);
        }
        if self.live_count() >= self.max_objects {
            ctx.cov_var(site, 2);
            return Err(ObjError::Full);
        }
        ctx.cov_var(site, 100 + class.tag() as u64 * 16 + name.len() as u64);
        let handle = self.next_handle;
        self.next_handle += 1;
        self.objects.push(KObject {
            handle,
            class,
            name: name.to_string(),
            detached: false,
        });
        Ok(handle)
    }

    /// Detach an object (it remains as a stale table entry).
    pub fn detach(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), ObjError> {
        ctx.charge(2);
        let Some(o) = self.objects.iter_mut().find(|o| o.handle == handle) else {
            return Err(ObjError::BadHandle);
        };
        if o.detached {
            self.double_detaches += 1;
            // Breadcrumb: the unlink-twice path is its own branch per
            // object class (the corrupted container the walker later
            // trips over).
            ctx.cov_var(site, 200 + o.class.tag() as u64);
            return Err(ObjError::AlreadyDetached);
        }
        ctx.cov_var(site, 3);
        o.detached = true;
        Ok(())
    }

    /// Find a live object by class and name.
    pub fn find(
        &self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        class: ObjClass,
        name: &str,
    ) -> Option<u32> {
        ctx.charge(2);
        let hit = self
            .objects
            .iter()
            .find(|o| !o.detached && o.class == class && o.name == name)
            .map(|o| o.handle);
        ctx.cov_var(site, if hit.is_some() { 4 } else { 5 });
        hit
    }

    /// Read an object's type tag. Reading a *detached* object's type is
    /// the undefined behaviour behind bug #5 — this layer reports it, the
    /// OS wrapper asserts.
    pub fn get_type(
        &self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(u8, bool), ObjError> {
        ctx.charge(1);
        match self.get(handle) {
            Some(o) => {
                ctx.cov_var(site, if o.detached { 7 } else { 6 });
                Ok((o.class.tag(), o.detached))
            }
            None => Err(ObjError::BadHandle),
        }
    }

    /// Container-list emptiness check for a class (`rt_list_isempty`).
    /// Walking a container whose entries were double-detached dereferences
    /// a poisoned list node — bug #6's substrate. The walk reports
    /// whether poison was touched.
    pub fn container_is_empty(
        &self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        class: ObjClass,
    ) -> (bool, bool) {
        ctx.charge(2);
        let empty = !self.objects.iter().any(|o| !o.detached && o.class == class);
        let poisoned =
            self.double_detaches > 0 && self.objects.iter().any(|o| o.detached && o.class == class);
        ctx.cov_var(site, if empty { 5 } else { 4 });
        (empty, poisoned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn init_find_detach_lifecycle() {
        with_ctx(|ctx| {
            let mut r = ObjectRegistry::new(8);
            let h = r.init(ctx, "s", ObjClass::Semaphore, "sem0").unwrap();
            assert_eq!(r.find(ctx, "s", ObjClass::Semaphore, "sem0"), Some(h));
            r.detach(ctx, "s", h).unwrap();
            assert_eq!(r.find(ctx, "s", ObjClass::Semaphore, "sem0"), None);
            // Stale entry still resolvable by handle.
            assert!(r.get(h).unwrap().detached);
        });
    }

    #[test]
    fn name_validation() {
        with_ctx(|ctx| {
            let mut r = ObjectRegistry::new(8);
            assert_eq!(
                r.init(ctx, "s", ObjClass::Thread, ""),
                Err(ObjError::BadName)
            );
            assert_eq!(
                r.init(ctx, "s", ObjClass::Thread, "sixteen-chars-xx"),
                Err(ObjError::BadName)
            );
        });
    }

    #[test]
    fn duplicate_names_per_class() {
        with_ctx(|ctx| {
            let mut r = ObjectRegistry::new(8);
            r.init(ctx, "s", ObjClass::Event, "e0").unwrap();
            assert_eq!(
                r.init(ctx, "s", ObjClass::Event, "e0"),
                Err(ObjError::DupName)
            );
            // Same name in another class is fine.
            r.init(ctx, "s", ObjClass::Timer, "e0").unwrap();
        });
    }

    #[test]
    fn detached_type_read_is_flagged() {
        with_ctx(|ctx| {
            let mut r = ObjectRegistry::new(8);
            let h = r.init(ctx, "s", ObjClass::Device, "uart1").unwrap();
            assert_eq!(r.get_type(ctx, "s", h).unwrap(), (5, false));
            r.detach(ctx, "s", h).unwrap();
            assert_eq!(r.get_type(ctx, "s", h).unwrap(), (5, true));
        });
    }

    #[test]
    fn double_detach_poisons_container() {
        with_ctx(|ctx| {
            let mut r = ObjectRegistry::new(8);
            let h = r.init(ctx, "s", ObjClass::MemPool, "mp").unwrap();
            r.detach(ctx, "s", h).unwrap();
            assert_eq!(r.detach(ctx, "s", h), Err(ObjError::AlreadyDetached));
            assert_eq!(r.double_detaches, 1);
            let (empty, poisoned) = r.container_is_empty(ctx, "s", ObjClass::MemPool);
            assert!(empty);
            assert!(poisoned);
        });
    }

    #[test]
    fn registry_capacity() {
        with_ctx(|ctx| {
            let mut r = ObjectRegistry::new(1);
            r.init(ctx, "s", ObjClass::Thread, "a").unwrap();
            assert_eq!(r.init(ctx, "s", ObjClass::Thread, "b"), Err(ObjError::Full));
        });
    }
}
