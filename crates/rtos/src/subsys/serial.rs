//! Serial device framework (RT-Thread `rt_device`/`rt_serial` style).
//!
//! Devices live in a table; `open` hands out a handle, `write` walks the
//! polled-TX path the paper's Figure 6 shows (`rt_serial_write` →
//! `_serial_poll_tx`, with the `'\n'` → `'\r\n'` stream translation).
//! The framework keeps *stale* entries after `unregister` — a dangling
//! device pointer survives exactly like the one that crashes in bug #12.
//!
//! Variants: 0 register, 1 dup, 2 unregister, 3 open ok, 4 open missing,
//! 5 write entry, 6 stream CR insertion, 7 write to stale device,
//! 8 close, 9 find.

use crate::ctx::ExecCtx;

/// Open-mode flag: stream mode (translate `\n` to `\r\n`).
pub const FLAG_STREAM: u32 = 0x040;

/// Serial framework failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialError {
    /// Device name already registered.
    DupName,
    /// No such device.
    NotFound,
    /// Handle does not denote an open device.
    BadHandle,
    /// Device exists but was unregistered (stale).
    Stale,
    /// Device is open and cannot be unregistered.
    Busy,
}

#[derive(Debug, Clone)]
struct SerialDevice {
    name: String,
    open_flags: u32,
    registered: bool,
    opened: bool,
    tx_bytes: u64,
}

/// The device table of one kernel.
#[derive(Debug, Clone, Default)]
pub struct SerialFramework {
    devices: Vec<SerialDevice>,
}

impl SerialFramework {
    /// An empty framework.
    pub fn new() -> Self {
        Self::default()
    }

    /// A framework with the usual console UART pre-registered.
    pub fn with_console() -> Self {
        let mut f = Self::new();
        f.devices.push(SerialDevice {
            name: "uart0".into(),
            open_flags: FLAG_STREAM,
            registered: true,
            opened: true,
            tx_bytes: 0,
        });
        f
    }

    /// Number of registered (live) devices.
    pub fn registered_count(&self) -> usize {
        self.devices.iter().filter(|d| d.registered).count()
    }

    /// Register a device by name. Returns its index handle.
    pub fn register(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        name: &str,
    ) -> Result<u32, SerialError> {
        ctx.cov_var(site, 0);
        ctx.charge(2);
        if self.devices.iter().any(|d| d.registered && d.name == name) {
            ctx.cov_var(site, 1);
            return Err(SerialError::DupName);
        }
        self.devices.push(SerialDevice {
            name: name.to_string(),
            open_flags: 0,
            registered: true,
            opened: false,
            tx_bytes: 0,
        });
        Ok(self.devices.len() as u32 - 1)
    }

    /// Unregister a device by name. The table entry stays, stale.
    pub fn unregister(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        name: &str,
    ) -> Result<(), SerialError> {
        ctx.charge(2);
        match self
            .devices
            .iter_mut()
            .find(|d| d.registered && d.name == name)
        {
            Some(d) => {
                ctx.cov_var(site, 2);
                d.registered = false;
                Ok(())
            }
            None => Err(SerialError::NotFound),
        }
    }

    /// Unregister a device by handle (the entry stays, stale). Open
    /// devices are busy and refuse to unregister.
    pub fn unregister_handle(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), SerialError> {
        ctx.charge(2);
        match self.devices.get_mut(handle as usize) {
            Some(d) if d.registered && d.opened => {
                ctx.cov_var(site, 10);
                Err(SerialError::Busy)
            }
            Some(d) if d.registered => {
                ctx.cov_var(site, 2);
                d.registered = false;
                Ok(())
            }
            _ => Err(SerialError::NotFound),
        }
    }

    /// Close an open device by handle.
    pub fn close_handle(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), SerialError> {
        ctx.charge(2);
        match self.devices.get_mut(handle as usize) {
            Some(d) if d.registered && d.opened => {
                ctx.cov_var(site, 8);
                d.opened = false;
                Ok(())
            }
            Some(d) if d.registered => Err(SerialError::BadHandle),
            _ => Err(SerialError::NotFound),
        }
    }

    /// Whether a device is currently open.
    pub fn is_open(&self, handle: u32) -> bool {
        self.devices
            .get(handle as usize)
            .map(|d| d.registered && d.opened)
            .unwrap_or(false)
    }

    /// Find a device handle by name (live devices only).
    pub fn find(&self, ctx: &mut ExecCtx<'_>, site: &'static str, name: &str) -> Option<u32> {
        ctx.charge(1);
        ctx.cov_var(site, 9);
        self.devices
            .iter()
            .position(|d| d.registered && d.name == name)
            .map(|i| i as u32)
    }

    /// Open a device with flags.
    pub fn open(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
        flags: u32,
    ) -> Result<(), SerialError> {
        ctx.charge(2);
        let Some(d) = self.devices.get_mut(handle as usize) else {
            ctx.cov_var(site, 4);
            return Err(SerialError::BadHandle);
        };
        if !d.registered {
            ctx.cov_var(site, 4);
            return Err(SerialError::NotFound);
        }
        ctx.cov_var(site, 3);
        d.opened = true;
        d.open_flags = flags;
        Ok(())
    }

    /// Whether a device entry is stale (unregistered but still present).
    pub fn is_stale(&self, handle: u32) -> bool {
        self.devices
            .get(handle as usize)
            .map(|d| !d.registered)
            .unwrap_or(false)
    }

    /// Write bytes through the polled-TX path. Returns bytes emitted
    /// (after stream translation). Writing to a stale device is reported
    /// as [`SerialError::Stale`] — the RT-Thread wrapper escalates that
    /// into bug #12's panic because its `RT_ASSERT(serial != RT_NULL)`
    /// cannot see staleness.
    pub fn write(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
        data: &[u8],
    ) -> Result<u64, SerialError> {
        ctx.cov_var(site, 5);
        ctx.charge(2 + data.len() as u64 / 4);
        let Some(d) = self.devices.get_mut(handle as usize) else {
            return Err(SerialError::BadHandle);
        };
        if !d.registered {
            ctx.cov_var(site, 7);
            return Err(SerialError::Stale);
        }
        ctx.cov_var(site, 100 + (data.len() as u64 / 8).min(8));
        ctx.cov_var(site, 120 + (d.open_flags & 0xf) as u64);
        // Silicon-only: the UART peripheral's TX FIFO threshold logic
        // branches per fill band; an emulated UART is a bottomless sink.
        if ctx.bus.silicon {
            ctx.cov_var(site, 400 + (d.tx_bytes % 64) / 4);
        }
        let mut emitted = 0u64;
        for &b in data {
            if b == b'\n' && d.open_flags & FLAG_STREAM != 0 {
                ctx.cov_var(site, 6);
                emitted += 1; // The inserted '\r'.
            }
            emitted += 1;
        }
        d.tx_bytes += emitted;
        Ok(emitted)
    }

    /// Total bytes a device has transmitted.
    pub fn tx_bytes(&self, handle: u32) -> Option<u64> {
        self.devices.get(handle as usize).map(|d| d.tx_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn register_find_open_write() {
        with_ctx(|ctx| {
            let mut f = SerialFramework::new();
            let h = f.register(ctx, "s", "uart1").unwrap();
            assert_eq!(f.find(ctx, "s", "uart1"), Some(h));
            f.open(ctx, "s", h, 0).unwrap();
            assert_eq!(f.write(ctx, "s", h, b"hi\n").unwrap(), 3);
        });
    }

    #[test]
    fn stream_mode_inserts_cr() {
        with_ctx(|ctx| {
            let mut f = SerialFramework::new();
            let h = f.register(ctx, "s", "uart1").unwrap();
            f.open(ctx, "s", h, FLAG_STREAM).unwrap();
            // "a\nb\n" → "a\r\nb\r\n": 6 bytes.
            assert_eq!(f.write(ctx, "s", h, b"a\nb\n").unwrap(), 6);
            assert_eq!(f.tx_bytes(h), Some(6));
        });
    }

    #[test]
    fn duplicate_names_rejected() {
        with_ctx(|ctx| {
            let mut f = SerialFramework::new();
            f.register(ctx, "s", "uart1").unwrap();
            assert_eq!(f.register(ctx, "s", "uart1"), Err(SerialError::DupName));
        });
    }

    #[test]
    fn unregister_leaves_stale_entry() {
        with_ctx(|ctx| {
            let mut f = SerialFramework::new();
            let h = f.register(ctx, "s", "uart1").unwrap();
            f.unregister(ctx, "s", "uart1").unwrap();
            assert!(f.is_stale(h));
            assert_eq!(f.find(ctx, "s", "uart1"), None);
            // The stale handle still reaches the write path — and fails
            // the way bug #12 needs.
            assert_eq!(f.write(ctx, "s", h, b"log"), Err(SerialError::Stale));
            // Re-registering the same name creates a fresh entry.
            let h2 = f.register(ctx, "s", "uart1").unwrap();
            assert_ne!(h, h2);
        });
    }

    #[test]
    fn console_preregistered() {
        with_ctx(|ctx| {
            let f = SerialFramework::with_console();
            assert_eq!(f.registered_count(), 1);
            assert!(f.find(ctx, "s", "uart0").is_some());
        });
    }

    #[test]
    fn bad_handles() {
        with_ctx(|ctx| {
            let mut f = SerialFramework::new();
            assert_eq!(f.open(ctx, "s", 42, 0), Err(SerialError::BadHandle));
            assert_eq!(f.write(ctx, "s", 42, b"x"), Err(SerialError::BadHandle));
            assert_eq!(f.unregister(ctx, "s", "ghost"), Err(SerialError::NotFound));
        });
    }
}
