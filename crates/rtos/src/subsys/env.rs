//! Environment variables and clocks (NuttX libc substrate).
//!
//! NuttX exposes a POSIX-flavoured surface; four of its six Table-2 bugs
//! live against this substrate: #14 (`setenv`), #15 (`gettimeofday`),
//! #19 (`clock_getres`), with the OS wrapper seeding the faults on top of
//! the behaviour here.
//!
//! Variants: 0 setenv new, 1 setenv overwrite, 2 setenv no-overwrite,
//! 3 bad name, 4 getenv hit, 5 getenv miss, 6 unsetenv, 7 store full,
//! 8 clock read, 9 bad clock id, 10 settime, 11 time rollback rejected.

use crate::ctx::ExecCtx;

/// Clock identifiers (CLOCK_*).
pub mod clockid {
    /// CLOCK_REALTIME.
    pub const REALTIME: u64 = 0;
    /// CLOCK_MONOTONIC.
    pub const MONOTONIC: u64 = 1;
    /// CLOCK_BOOTTIME.
    pub const BOOTTIME: u64 = 7;
}

/// Failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvError {
    /// Name empty or containing `=`.
    BadName,
    /// Variable store is full.
    Full,
    /// Variable not present.
    NotFound,
    /// Unsupported clock id.
    BadClock,
    /// Attempt to set the realtime clock backwards.
    TimeRollback,
}

/// The environment store plus system clocks.
#[derive(Debug, Clone)]
pub struct EnvSubsystem {
    vars: Vec<(String, String)>,
    max_vars: usize,
    /// Realtime clock offset in microseconds (settable).
    realtime_offset_us: u64,
    sets: u64,
}

impl EnvSubsystem {
    /// A store holding at most `max_vars` variables.
    pub fn new(max_vars: usize) -> Self {
        EnvSubsystem {
            vars: Vec::new(),
            max_vars,
            realtime_offset_us: 1_600_000_000_000_000, // A plausible epoch.
            sets: 0,
        }
    }

    /// Number of variables set.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Lifetime `setenv` calls that succeeded.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// `setenv(name, value, overwrite)`.
    pub fn setenv(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        name: &str,
        value: &str,
        overwrite: bool,
    ) -> Result<(), EnvError> {
        ctx.charge(3);
        if name.is_empty() || name.contains('=') {
            ctx.cov_var(site, 3);
            return Err(EnvError::BadName);
        }
        if let Some(slot) = self.vars.iter_mut().find(|(n, _)| n == name) {
            if overwrite {
                ctx.cov_var(site, 1);
                slot.1 = value.to_string();
                self.sets += 1;
            } else {
                ctx.cov_var(site, 2);
            }
            return Ok(());
        }
        if self.vars.len() >= self.max_vars {
            ctx.cov_var(site, 7);
            return Err(EnvError::Full);
        }
        ctx.cov_var(site, 0);
        ctx.cov_var(site, 100 + (name.len() as u64).min(16));
        ctx.cov_var(site, 120 + (value.len() as u64 / 8).min(8));
        ctx.cov_var(site, 140 + self.vars.len() as u64);
        self.vars.push((name.to_string(), value.to_string()));
        self.sets += 1;
        Ok(())
    }

    /// `getenv(name)`.
    pub fn getenv(&self, ctx: &mut ExecCtx<'_>, site: &'static str, name: &str) -> Option<String> {
        ctx.charge(2);
        let hit = self
            .vars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone());
        ctx.cov_var(site, if hit.is_some() { 4 } else { 5 });
        hit
    }

    /// `unsetenv(name)`.
    pub fn unsetenv(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        name: &str,
    ) -> Result<(), EnvError> {
        ctx.charge(2);
        let before = self.vars.len();
        self.vars.retain(|(n, _)| n != name);
        if self.vars.len() == before {
            ctx.cov_var(site, 5);
            Err(EnvError::NotFound)
        } else {
            ctx.cov_var(site, 6);
            Ok(())
        }
    }

    /// Read a clock in microseconds since its epoch.
    pub fn clock_gettime_us(
        &self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        clock: u64,
    ) -> Result<u64, EnvError> {
        ctx.charge(2);
        let mono = ctx.bus.core_now();
        match clock {
            clockid::REALTIME => {
                ctx.cov_var(site, 8);
                Ok(self.realtime_offset_us + mono)
            }
            clockid::MONOTONIC | clockid::BOOTTIME => {
                ctx.cov_var(site, 8);
                Ok(mono)
            }
            _ => {
                ctx.cov_var(site, 9);
                Err(EnvError::BadClock)
            }
        }
    }

    /// Resolution of a clock in nanoseconds.
    pub fn clock_getres_ns(
        &self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        clock: u64,
    ) -> Result<u64, EnvError> {
        ctx.charge(1);
        match clock {
            clockid::REALTIME | clockid::MONOTONIC => {
                ctx.cov_var(site, 8);
                Ok(1_000)
            }
            clockid::BOOTTIME => {
                ctx.cov_var(site, 8);
                Ok(1_000_000)
            }
            _ => {
                ctx.cov_var(site, 9);
                Err(EnvError::BadClock)
            }
        }
    }

    /// Set the realtime clock (forward only).
    pub fn clock_settime_us(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        us: u64,
    ) -> Result<(), EnvError> {
        ctx.charge(2);
        let now = self.realtime_offset_us + ctx.bus.core_now();
        if us < now {
            ctx.cov_var(site, 11);
            return Err(EnvError::TimeRollback);
        }
        ctx.cov_var(site, 10);
        self.realtime_offset_us = us - ctx.bus.core_now();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn set_get_unset() {
        with_ctx(|ctx| {
            let mut e = EnvSubsystem::new(8);
            e.setenv(ctx, "s", "PATH", "/bin", true).unwrap();
            assert_eq!(e.getenv(ctx, "s", "PATH").as_deref(), Some("/bin"));
            e.unsetenv(ctx, "s", "PATH").unwrap();
            assert_eq!(e.getenv(ctx, "s", "PATH"), None);
            assert_eq!(e.unsetenv(ctx, "s", "PATH"), Err(EnvError::NotFound));
        });
    }

    #[test]
    fn overwrite_semantics() {
        with_ctx(|ctx| {
            let mut e = EnvSubsystem::new(8);
            e.setenv(ctx, "s", "V", "1", true).unwrap();
            e.setenv(ctx, "s", "V", "2", false).unwrap();
            assert_eq!(e.getenv(ctx, "s", "V").as_deref(), Some("1"));
            e.setenv(ctx, "s", "V", "3", true).unwrap();
            assert_eq!(e.getenv(ctx, "s", "V").as_deref(), Some("3"));
        });
    }

    #[test]
    fn name_validation_and_capacity() {
        with_ctx(|ctx| {
            let mut e = EnvSubsystem::new(1);
            assert_eq!(e.setenv(ctx, "s", "A=B", "x", true), Err(EnvError::BadName));
            assert_eq!(e.setenv(ctx, "s", "", "x", true), Err(EnvError::BadName));
            e.setenv(ctx, "s", "A", "x", true).unwrap();
            assert_eq!(e.setenv(ctx, "s", "B", "y", true), Err(EnvError::Full));
        });
    }

    #[test]
    fn clocks() {
        with_ctx(|ctx| {
            let mut e = EnvSubsystem::new(4);
            let rt = e.clock_gettime_us(ctx, "s", clockid::REALTIME).unwrap();
            let mono = e.clock_gettime_us(ctx, "s", clockid::MONOTONIC).unwrap();
            assert!(rt > mono);
            assert_eq!(e.clock_gettime_us(ctx, "s", 42), Err(EnvError::BadClock));
            assert_eq!(
                e.clock_getres_ns(ctx, "s", clockid::REALTIME).unwrap(),
                1_000
            );
            assert_eq!(e.clock_getres_ns(ctx, "s", 42), Err(EnvError::BadClock));
            // Forward set works, rollback rejected.
            e.clock_settime_us(ctx, "s", rt + 1_000_000).unwrap();
            assert_eq!(e.clock_settime_us(ctx, "s", 0), Err(EnvError::TimeRollback));
        });
    }
}
