//! Named POSIX message queues (NuttX `mq_*` substrate).
//!
//! NuttX implements POSIX mqueues in the kernel (`nxmq_*`); bug #16
//! (`nxmq_timedsend`) fires in the OS wrapper when a *full* queue is
//! squeezed with an already-expired absolute timeout — a state only
//! reachable after enough prior sends.
//!
//! Variants: 0 open new, 1 open existing, 2 bad name, 3 table full,
//! 4 send ok, 5 send full, 6 timedsend expired, 7 receive ok,
//! 8 receive empty, 9 close, 10 unlink, 11 bad descriptor, 12 prio order.

use crate::ctx::ExecCtx;
use std::collections::VecDeque;

/// Failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MqError {
    /// Name must start with `/` and be short.
    BadName,
    /// Too many queues.
    TooMany,
    /// Descriptor invalid or closed.
    BadDesc,
    /// Queue full.
    Full,
    /// Queue empty.
    Empty,
    /// Absolute timeout already expired.
    TimedOut,
    /// Message exceeds the queue's message size.
    MsgTooBig,
    /// Queue does not exist.
    NotFound,
}

#[derive(Debug, Clone)]
struct Mq {
    name: String,
    msg_size: u32,
    capacity: usize,
    msgs: VecDeque<(u8, Vec<u8>)>,
    open_descs: u32,
    unlinked: bool,
}

/// The mqueue namespace of one kernel.
#[derive(Debug, Clone, Default)]
pub struct MqNamespace {
    queues: Vec<Mq>,
    descs: Vec<Option<usize>>,
    max_queues: usize,
}

impl MqNamespace {
    /// A namespace with at most `max_queues` queues.
    pub fn new(max_queues: usize) -> Self {
        MqNamespace {
            queues: Vec::new(),
            descs: Vec::new(),
            max_queues,
        }
    }

    /// Live queue count.
    pub fn queue_count(&self) -> usize {
        self.queues.iter().filter(|q| !q.unlinked).count()
    }

    /// `mq_open(name, msg_size, capacity)` — creates or opens.
    pub fn open(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        name: &str,
        msg_size: u32,
        capacity: usize,
    ) -> Result<u32, MqError> {
        ctx.charge(3);
        if !name.starts_with('/') || name.len() < 2 || name.len() > 32 {
            ctx.cov_var(site, 2);
            return Err(MqError::BadName);
        }
        let idx = if let Some(i) = self
            .queues
            .iter()
            .position(|q| !q.unlinked && q.name == name)
        {
            ctx.cov_var(site, 1);
            i
        } else {
            if self.queue_count() >= self.max_queues {
                ctx.cov_var(site, 3);
                return Err(MqError::TooMany);
            }
            ctx.cov_var(site, 0);
            ctx.cov_var(site, 100 + (msg_size as u64 / 8).min(8));
            ctx.cov_var(site, 120 + (capacity as u64).min(8));
            self.queues.push(Mq {
                name: name.to_string(),
                msg_size: msg_size.clamp(1, 256),
                capacity: capacity.clamp(1, 64),
                msgs: VecDeque::new(),
                open_descs: 0,
                unlinked: false,
            });
            self.queues.len() - 1
        };
        self.queues[idx].open_descs += 1;
        self.descs.push(Some(idx));
        Ok(self.descs.len() as u32 - 1)
    }

    fn queue_of(&mut self, desc: u32) -> Result<usize, MqError> {
        self.descs
            .get(desc as usize)
            .copied()
            .flatten()
            .ok_or(MqError::BadDesc)
    }

    /// `mq_send(desc, msg, prio)` — non-blocking.
    pub fn send(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        desc: u32,
        msg: &[u8],
        prio: u8,
    ) -> Result<(), MqError> {
        ctx.charge(3);
        let qi = self.queue_of(desc).inspect_err(|_| {
            ctx.cov_var(site, 11);
        })?;
        let q = &mut self.queues[qi];
        if msg.len() > q.msg_size as usize {
            return Err(MqError::MsgTooBig);
        }
        if q.msgs.len() >= q.capacity {
            ctx.cov_var(site, 5);
            return Err(MqError::Full);
        }
        ctx.cov_var(site, 4);
        ctx.cov_var(site, 100 + prio as u64);
        ctx.cov_var(site, 140 + q.msgs.len() as u64);
        // Priority-ordered insertion (highest first).
        let pos = q.msgs.iter().position(|(p, _)| *p < prio);
        match pos {
            Some(i) => {
                ctx.cov_var(site, 12);
                q.msgs.insert(i, (prio, msg.to_vec()));
            }
            None => q.msgs.push_back((prio, msg.to_vec())),
        }
        Ok(())
    }

    /// `mq_timedsend(desc, msg, prio, abs_deadline_cycles)`.
    pub fn timedsend(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        desc: u32,
        msg: &[u8],
        prio: u8,
        abs_deadline: u64,
    ) -> Result<(), MqError> {
        let now = ctx.bus.core_now();
        let qi = self.queue_of(desc).inspect_err(|_| {
            ctx.cov_var(site, 11);
        })?;
        let full = self.queues[qi].msgs.len() >= self.queues[qi].capacity;
        if full && abs_deadline <= now {
            ctx.cov_var(site, 6);
            return Err(MqError::TimedOut);
        }
        self.send(ctx, site, desc, msg, prio)
    }

    /// `mq_receive(desc)` — highest priority first.
    pub fn receive(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        desc: u32,
    ) -> Result<(u8, Vec<u8>), MqError> {
        ctx.charge(3);
        let qi = self.queue_of(desc).inspect_err(|_| {
            ctx.cov_var(site, 11);
        })?;
        match self.queues[qi].msgs.pop_front() {
            Some(m) => {
                ctx.cov_var(site, 7);
                Ok(m)
            }
            None => {
                ctx.cov_var(site, 8);
                Err(MqError::Empty)
            }
        }
    }

    /// `mq_close(desc)`.
    pub fn close(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        desc: u32,
    ) -> Result<(), MqError> {
        ctx.charge(2);
        let qi = self.queue_of(desc).inspect_err(|_| {
            ctx.cov_var(site, 11);
        })?;
        ctx.cov_var(site, 9);
        self.queues[qi].open_descs = self.queues[qi].open_descs.saturating_sub(1);
        self.descs[desc as usize] = None;
        Ok(())
    }

    /// `mq_unlink(name)`.
    pub fn unlink(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        name: &str,
    ) -> Result<(), MqError> {
        ctx.charge(2);
        match self
            .queues
            .iter_mut()
            .find(|q| !q.unlinked && q.name == name)
        {
            Some(q) => {
                ctx.cov_var(site, 10);
                q.unlinked = true;
                Ok(())
            }
            None => Err(MqError::NotFound),
        }
    }

    /// Whether the queue behind a descriptor is full (bug #16's gate).
    pub fn is_full(&self, desc: u32) -> bool {
        self.descs
            .get(desc as usize)
            .copied()
            .flatten()
            .map(|qi| self.queues[qi].msgs.len() >= self.queues[qi].capacity)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn open_send_receive() {
        with_ctx(|ctx| {
            let mut ns = MqNamespace::new(4);
            let d = ns.open(ctx, "s", "/q0", 16, 4).unwrap();
            ns.send(ctx, "s", d, b"hello", 0).unwrap();
            assert_eq!(ns.receive(ctx, "s", d).unwrap().1, b"hello");
            assert_eq!(ns.receive(ctx, "s", d), Err(MqError::Empty));
        });
    }

    #[test]
    fn priority_ordering() {
        with_ctx(|ctx| {
            let mut ns = MqNamespace::new(4);
            let d = ns.open(ctx, "s", "/q", 8, 8).unwrap();
            ns.send(ctx, "s", d, b"low", 1).unwrap();
            ns.send(ctx, "s", d, b"high", 9).unwrap();
            ns.send(ctx, "s", d, b"mid", 5).unwrap();
            assert_eq!(ns.receive(ctx, "s", d).unwrap(), (9, b"high".to_vec()));
            assert_eq!(ns.receive(ctx, "s", d).unwrap(), (5, b"mid".to_vec()));
            assert_eq!(ns.receive(ctx, "s", d).unwrap(), (1, b"low".to_vec()));
        });
    }

    #[test]
    fn capacity_and_timedsend() {
        with_ctx(|ctx| {
            let mut ns = MqNamespace::new(4);
            let d = ns.open(ctx, "s", "/q", 8, 2).unwrap();
            ns.send(ctx, "s", d, b"a", 0).unwrap();
            ns.send(ctx, "s", d, b"b", 0).unwrap();
            assert!(ns.is_full(d));
            assert_eq!(ns.send(ctx, "s", d, b"c", 0), Err(MqError::Full));
            // Expired absolute deadline on a full queue.
            assert_eq!(
                ns.timedsend(ctx, "s", d, b"c", 0, 0),
                Err(MqError::TimedOut)
            );
            // Future deadline on a full queue degrades to Full.
            let later = ctx.bus.now() + 1_000_000;
            assert_eq!(
                ns.timedsend(ctx, "s", d, b"c", 0, later),
                Err(MqError::Full)
            );
        });
    }

    #[test]
    fn name_rules() {
        with_ctx(|ctx| {
            let mut ns = MqNamespace::new(4);
            assert_eq!(ns.open(ctx, "s", "noslash", 8, 2), Err(MqError::BadName));
            assert_eq!(ns.open(ctx, "s", "/", 8, 2), Err(MqError::BadName));
        });
    }

    #[test]
    fn open_existing_shares_queue() {
        with_ctx(|ctx| {
            let mut ns = MqNamespace::new(4);
            let a = ns.open(ctx, "s", "/q", 8, 4).unwrap();
            let b = ns.open(ctx, "s", "/q", 8, 4).unwrap();
            ns.send(ctx, "s", a, b"x", 0).unwrap();
            assert_eq!(ns.receive(ctx, "s", b).unwrap().1, b"x");
            assert_eq!(ns.queue_count(), 1);
        });
    }

    #[test]
    fn close_invalidates_descriptor() {
        with_ctx(|ctx| {
            let mut ns = MqNamespace::new(4);
            let d = ns.open(ctx, "s", "/q", 8, 4).unwrap();
            ns.close(ctx, "s", d).unwrap();
            assert_eq!(ns.send(ctx, "s", d, b"x", 0), Err(MqError::BadDesc));
            assert_eq!(ns.close(ctx, "s", d), Err(MqError::BadDesc));
        });
    }

    #[test]
    fn unlink_hides_name() {
        with_ctx(|ctx| {
            let mut ns = MqNamespace::new(4);
            ns.open(ctx, "s", "/q", 8, 4).unwrap();
            ns.unlink(ctx, "s", "/q").unwrap();
            assert_eq!(ns.unlink(ctx, "s", "/q"), Err(MqError::NotFound));
            assert_eq!(ns.queue_count(), 0);
        });
    }
}
