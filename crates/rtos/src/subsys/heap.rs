//! First-fit free-list heap allocator with canaries.
//!
//! The allocator every kernel model builds its dynamic memory on. It is a
//! real allocator over a byte arena: block headers carry size, a free
//! flag and a canary; allocation splits blocks, freeing coalesces
//! neighbours, and canary damage is detected — the raw material of the
//! heap-scope bugs (#1, #4, #9) in Table 2.
//!
//! Branch variants of the caller's site:
//! 0 entry, 1 zero-size reject, 2 fit found, 3 block split, 4 no fit,
//! 5 free entry, 6 bad handle, 7 coalesce-next, 8 coalesce-prev,
//! 9 canary damage, 10 double free.

use crate::ctx::ExecCtx;

const CANARY: u32 = 0xfee1_dead;
const MIN_SPLIT: u32 = 16;

/// Allocation failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// Zero-size or oversize request.
    BadSize,
    /// No block large enough.
    OutOfMemory,
    /// Handle does not denote a live allocation.
    BadHandle,
    /// The block was already free.
    DoubleFree,
    /// A canary was overwritten — heap corruption.
    Corrupted,
}

#[derive(Debug, Clone)]
struct Block {
    offset: u32,
    size: u32,
    free: bool,
    canary: u32,
}

/// A first-fit heap over a fixed arena.
#[derive(Debug, Clone)]
pub struct FreeListHeap {
    capacity: u32,
    blocks: Vec<Block>,
    allocs: u64,
    frees: u64,
    peak_used: u32,
}

impl FreeListHeap {
    /// A heap managing `capacity` bytes.
    pub fn new(capacity: u32) -> Self {
        FreeListHeap {
            capacity,
            blocks: vec![Block {
                offset: 0,
                size: capacity,
                free: true,
                canary: CANARY,
            }],
            allocs: 0,
            frees: 0,
            peak_used: 0,
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u32 {
        self.blocks.iter().filter(|b| !b.free).map(|b| b.size).sum()
    }

    /// High-water mark of [`Self::used`].
    pub fn peak_used(&self) -> u32 {
        self.peak_used
    }

    /// Number of live (non-free) blocks.
    pub fn live_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.free).count()
    }

    /// Lifetime allocation count.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Allocate `size` bytes, returning the block offset as a handle.
    pub fn alloc(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        size: u32,
    ) -> Result<u32, HeapError> {
        ctx.cov_var(site, 0);
        ctx.charge(4);
        if size == 0 || size > self.capacity {
            ctx.cov_var(site, 1);
            return Err(HeapError::BadSize);
        }
        let aligned = (size + 7) & !7;
        let idx = self.blocks.iter().position(|b| b.free && b.size >= aligned);
        let Some(idx) = idx else {
            ctx.cov_var(site, 4);
            return Err(HeapError::OutOfMemory);
        };
        ctx.cov_var(site, 2);
        // State-shaped edges: request-size band and heap-occupancy band.
        ctx.cov_var(site, 100 + (aligned as u64 / 64).min(63));
        ctx.cov_var(site, 200 + (self.live_blocks() as u64).min(31));
        let (offset, remainder) = {
            let b = &mut self.blocks[idx];
            b.free = false;
            b.canary = CANARY;
            let rem = b.size - aligned;
            if rem >= MIN_SPLIT {
                b.size = aligned;
                (b.offset, Some((b.offset + aligned, rem)))
            } else {
                (b.offset, None)
            }
        };
        if let Some((roff, rsize)) = remainder {
            ctx.cov_var(site, 3);
            self.blocks.insert(
                idx + 1,
                Block {
                    offset: roff,
                    size: rsize,
                    free: true,
                    canary: CANARY,
                },
            );
        }
        self.allocs += 1;
        self.peak_used = self.peak_used.max(self.used());
        Ok(offset)
    }

    /// Free an allocation by handle.
    pub fn free(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        site: &'static str,
        handle: u32,
    ) -> Result<(), HeapError> {
        ctx.cov_var(site, 5);
        ctx.charge(3);
        let Some(idx) = self.blocks.iter().position(|b| b.offset == handle) else {
            ctx.cov_var(site, 6);
            return Err(HeapError::BadHandle);
        };
        if self.blocks[idx].canary != CANARY {
            ctx.cov_var(site, 9);
            return Err(HeapError::Corrupted);
        }
        if self.blocks[idx].free {
            ctx.cov_var(site, 10);
            return Err(HeapError::DoubleFree);
        }
        self.blocks[idx].free = true;
        self.frees += 1;
        ctx.cov_var(site, 300 + (idx as u64).min(31));
        // Coalesce with next.
        if idx + 1 < self.blocks.len() && self.blocks[idx + 1].free {
            ctx.cov_var(site, 7);
            let next = self.blocks.remove(idx + 1);
            self.blocks[idx].size += next.size;
        }
        // Coalesce with previous.
        if idx > 0 && self.blocks[idx - 1].free {
            ctx.cov_var(site, 8);
            let cur = self.blocks.remove(idx);
            self.blocks[idx - 1].size += cur.size;
        }
        Ok(())
    }

    /// Deliberately damage a block's canary (bug-seeding hook).
    pub fn smash_canary(&mut self, handle: u32) {
        if let Some(b) = self.blocks.iter_mut().find(|b| b.offset == handle) {
            b.canary = 0;
        }
    }

    /// Walk the heap verifying canaries and layout invariants.
    pub fn check(&self) -> Result<(), HeapError> {
        let mut cursor = 0u32;
        for b in &self.blocks {
            if b.canary != CANARY {
                return Err(HeapError::Corrupted);
            }
            if b.offset != cursor {
                return Err(HeapError::Corrupted);
            }
            cursor += b.size;
        }
        if cursor != self.capacity {
            return Err(HeapError::Corrupted);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CovState;
    use eof_hal::{Bus, Endianness};

    fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
        let mut cov = CovState::uninstrumented();
        let mut ctx = ExecCtx::new(&mut bus, &mut cov);
        f(&mut ctx)
    }

    #[test]
    fn alloc_free_roundtrip() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(1024);
            let a = h.alloc(ctx, "t::heap::a", 100).unwrap();
            let b = h.alloc(ctx, "t::heap::a", 200).unwrap();
            assert_ne!(a, b);
            assert_eq!(h.live_blocks(), 2);
            h.free(ctx, "t::heap::f", a).unwrap();
            h.free(ctx, "t::heap::f", b).unwrap();
            assert_eq!(h.live_blocks(), 0);
            h.check().unwrap();
            // Full coalescing back to one block.
            assert_eq!(h.alloc(ctx, "t::heap::a", 1024).unwrap(), 0);
        });
    }

    #[test]
    fn zero_size_rejected() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(64);
            assert_eq!(h.alloc(ctx, "s", 0), Err(HeapError::BadSize));
        });
    }

    #[test]
    fn out_of_memory() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(64);
            h.alloc(ctx, "s", 48).unwrap();
            assert_eq!(h.alloc(ctx, "s", 48), Err(HeapError::OutOfMemory));
        });
    }

    #[test]
    fn double_free_detected() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(256);
            let a = h.alloc(ctx, "s", 32).unwrap();
            h.free(ctx, "s", a).unwrap();
            assert_eq!(h.free(ctx, "s", a), Err(HeapError::DoubleFree));
        });
    }

    #[test]
    fn bad_handle_detected() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(256);
            assert_eq!(h.free(ctx, "s", 9999), Err(HeapError::BadHandle));
        });
    }

    #[test]
    fn canary_damage_detected() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(256);
            let a = h.alloc(ctx, "s", 32).unwrap();
            h.smash_canary(a);
            assert_eq!(h.free(ctx, "s", a), Err(HeapError::Corrupted));
            assert_eq!(h.check(), Err(HeapError::Corrupted));
        });
    }

    #[test]
    fn fragmentation_then_coalesce() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(1024);
            // Fill the heap completely: 16 × 64 bytes.
            let handles: Vec<u32> = (0..16).map(|_| h.alloc(ctx, "s", 64).unwrap()).collect();
            // Free every other block: no coalescing possible.
            for &hd in handles.iter().step_by(2) {
                h.free(ctx, "s", hd).unwrap();
            }
            // A 128-byte request cannot fit in a 64-byte hole.
            assert_eq!(h.alloc(ctx, "s", 128), Err(HeapError::OutOfMemory));
            // Free the rest: coalescing makes room.
            for &hd in handles.iter().skip(1).step_by(2) {
                h.free(ctx, "s", hd).unwrap();
            }
            assert!(h.alloc(ctx, "s", 512).is_ok());
            h.check().unwrap();
        });
    }

    #[test]
    fn peak_tracking() {
        with_ctx(|ctx| {
            let mut h = FreeListHeap::new(512);
            let a = h.alloc(ctx, "s", 256).unwrap();
            h.free(ctx, "s", a).unwrap();
            assert_eq!(h.used(), 0);
            assert!(h.peak_used() >= 256);
        });
    }
}
