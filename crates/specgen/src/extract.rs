//! Deterministic Syzlang extraction from kernel API metadata.

use eof_rtos::api::{ApiDescriptor, ArgKind};
use eof_rtos::kernel::OsKind;
use eof_rtos::registry::make_kernel;
use std::collections::BTreeMap;

/// Render one argument kind as Syzlang type syntax.
fn render_kind(kind: &ArgKind) -> String {
    match kind {
        ArgKind::Int { bits, min, max } => {
            let full = match bits {
                8 => *min == 0 && *max == u8::MAX as u64,
                16 => *min == 0 && *max == u16::MAX as u64,
                32 => *min == 0 && *max == u32::MAX as u64,
                _ => *min == 0 && *max == u64::MAX,
            };
            if full {
                format!("int{bits}")
            } else {
                format!("int{bits}[{min}:{max}]")
            }
        }
        ArgKind::Enum { set, .. } => format!("flags[{set}]"),
        ArgKind::Str { max } => format!("ptr[cstring[{max}]]"),
        ArgKind::Bytes { max } => format!("ptr[buffer[{max}]]"),
        ArgKind::ResourceIn(kind) => (*kind).to_string(),
    }
}

/// Modules that belong to the driver layer. Default extraction excludes
/// them so the legacy pure-API specs stay byte-identical; campaigns that
/// target kernel↔peripheral interaction opt in with
/// [`extract_spec_text_scoped`].
pub const DRIVER_MODULES: &[&str] = &["spi", "i2c", "dma"];

/// Extract the Syzlang specification text for an OS — resources, flag
/// sets, then API signatures with their doc comments, in the same layout
/// the paper's Figure 6 shows. Driver-layer APIs are excluded; see
/// [`extract_spec_text_scoped`].
pub fn extract_spec_text(os: OsKind) -> String {
    extract_spec_text_scoped(os, false)
}

/// Extraction with an explicit driver-layer scope. `include_drivers`
/// adds the SPI/I2C/DMA driver APIs (the [`DRIVER_MODULES`]) to the
/// spec; `false` reproduces the legacy pure-API spec byte-for-byte.
pub fn extract_spec_text_scoped(os: OsKind, include_drivers: bool) -> String {
    let kernel = make_kernel(os);
    if include_drivers {
        extract_from_descriptors(kernel.api_table())
    } else {
        let pure: Vec<ApiDescriptor> = kernel
            .api_table()
            .iter()
            .filter(|d| !DRIVER_MODULES.contains(&d.module))
            .cloned()
            .collect();
        extract_from_descriptors(&pure)
    }
}

/// Extraction over an explicit descriptor slice (testable without a
/// kernel).
pub fn extract_from_descriptors(apis: &[ApiDescriptor]) -> String {
    let mut out = String::new();

    // Resource declarations: every produced or consumed resource kind.
    let mut resources: Vec<&str> = Vec::new();
    for d in apis {
        if let Some(r) = d.returns {
            if !resources.contains(&r) {
                resources.push(r);
            }
        }
        for a in &d.args {
            if let ArgKind::ResourceIn(r) = &a.kind {
                if !resources.contains(r) {
                    resources.push(r);
                }
            }
        }
    }
    resources.sort_unstable();
    for r in &resources {
        out.push_str(&format!("resource {r}[int32]: -1\n"));
    }
    if !resources.is_empty() {
        out.push('\n');
    }

    // Flag sets, deduplicated by name.
    let mut flagsets: BTreeMap<&str, &[(&str, u64)]> = BTreeMap::new();
    for d in apis {
        for a in &d.args {
            if let ArgKind::Enum { set, values } = &a.kind {
                flagsets.entry(set).or_insert(values);
            }
        }
    }
    for (name, values) in &flagsets {
        let rendered: Vec<String> = values
            .iter()
            .map(|(sym, v)| format!("{sym}:{v:#x}"))
            .collect();
        out.push_str(&format!("{name} = {}\n", rendered.join(", ")));
    }
    if !flagsets.is_empty() {
        out.push('\n');
    }

    // API signatures with doc comments.
    for d in apis {
        if !d.doc.is_empty() {
            out.push_str(&format!("# {}\n", d.doc));
        }
        let params: Vec<String> = d
            .args
            .iter()
            .map(|a| format!("{} {}", a.name, render_kind(&a.kind)))
            .collect();
        out.push_str(&format!("{}({})", d.name, params.join(", ")));
        if let Some(r) = d.returns {
            out.push_str(&format!(" {r}"));
        }
        out.push('\n');
    }
    out
}

/// Line count of an OS's generated specification — the metric the paper
/// reports ("203 lines of API specification code" for FreeRTOS).
pub fn spec_line_count(os: OsKind) -> usize {
    extract_spec_text(os)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_speclang::parser::parse_spec;
    use eof_speclang::typecheck::typecheck;

    #[test]
    fn extracted_specs_parse_and_typecheck_for_every_os() {
        for os in OsKind::ALL {
            let text = extract_spec_text(os);
            let spec = parse_spec(&text).unwrap_or_else(|e| panic!("{os}: {e}\n{text}"));
            let errors = typecheck(&spec);
            assert!(errors.is_empty(), "{os}: {errors:?}");
            assert!(!spec.apis.is_empty(), "{os}");
        }
    }

    #[test]
    fn covers_full_api_surface() {
        for os in OsKind::ALL {
            let kernel = make_kernel(os);
            let spec = parse_spec(&extract_spec_text(os)).unwrap();
            let pure: Vec<_> = kernel
                .api_table()
                .iter()
                .filter(|d| !DRIVER_MODULES.contains(&d.module))
                .collect();
            assert_eq!(spec.apis.len(), pure.len(), "{os}");
            for d in pure {
                assert!(spec.api(d.name).is_some(), "{os}: missing {}", d.name);
            }
        }
    }

    #[test]
    fn driver_scope_extends_the_pure_spec() {
        for os in OsKind::ALL {
            let kernel = make_kernel(os);
            let pure = parse_spec(&extract_spec_text_scoped(os, false)).unwrap();
            let full = parse_spec(&extract_spec_text_scoped(os, true)).unwrap();
            assert_eq!(full.apis.len(), kernel.api_table().len(), "{os}");
            assert!(typecheck(&full).is_empty(), "{os}");
            // Legacy default is the driver-free scope, byte-identical.
            assert_eq!(extract_spec_text(os), extract_spec_text_scoped(os, false));
            // Every driver API is present in full and absent from pure.
            for d in kernel
                .api_table()
                .iter()
                .filter(|d| DRIVER_MODULES.contains(&d.module))
            {
                assert!(full.api(d.name).is_some(), "{os}: missing {}", d.name);
                assert!(pure.api(d.name).is_none(), "{os}: leaked {}", d.name);
            }
        }
    }

    #[test]
    fn pseudo_syscalls_survive_extraction() {
        let spec = parse_spec(&extract_spec_text(OsKind::RtThread)).unwrap();
        let sock = spec.api("syz_create_bind_socket").unwrap();
        assert!(sock.is_pseudo());
        assert_eq!(sock.returns.as_deref(), Some("sock"));
        assert!(sock.doc.as_deref().unwrap().contains("Pseudo-syscall"));
    }

    #[test]
    fn flags_round_trip_values() {
        let spec = parse_spec(&extract_spec_text(OsKind::RtThread)).unwrap();
        let classes = &spec.flags["obj_class"];
        assert!(classes
            .values
            .iter()
            .any(|(sym, v)| sym == "RT_Object_Class_Device" && *v == 5));
    }

    #[test]
    fn line_counts_are_plausible() {
        // The paper reports ~200 lines for a full OS spec; ours are in
        // the tens because the doc lines and signatures are denser, but
        // every OS must have a substantial spec.
        for os in OsKind::ALL {
            let n = spec_line_count(os);
            assert!(n >= 15, "{os}: only {n} lines");
        }
    }

    #[test]
    fn resource_declarations_cover_consumption() {
        for os in OsKind::ALL {
            let spec = parse_spec(&extract_spec_text(os)).unwrap();
            for api in &spec.apis {
                for r in api.consumed_resources() {
                    assert!(spec.resources.contains_key(r), "{os}: dangling {r}");
                }
            }
        }
    }
}
