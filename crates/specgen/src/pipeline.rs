//! The specification admission pipeline.
//!
//! "Generated specifications are then post-validated by parsing and type
//! checking, and only validated specifications are admitted to the
//! corpus" (§4.5). The pipeline runs: extract → perturb (noise model) →
//! render → re-parse → type check → evict offending APIs → re-validate,
//! and reports what happened — the numbers the validation-gate ablation
//! bench compares.

use crate::extract::extract_spec_text_scoped;
use crate::noise::{apply_noise, NoiseConfig};
use eof_rtos::kernel::OsKind;
use eof_speclang::ast::SpecFile;
use eof_speclang::display::render_spec;
use eof_speclang::parser::parse_spec;
use eof_speclang::typecheck::typecheck;
use std::collections::BTreeSet;

/// What the pipeline did.
#[derive(Debug, Clone, Default)]
pub struct GenReport {
    /// APIs in the raw generated spec (including hallucinations).
    pub generated_apis: usize,
    /// Defects the noise model injected.
    pub defects_injected: usize,
    /// APIs evicted by the validation gate.
    pub rejected_apis: usize,
    /// APIs admitted to the corpus.
    pub admitted_apis: usize,
    /// Evicted real APIs recovered by the regeneration round.
    pub regenerated_apis: usize,
    /// Type errors found on the first validation pass.
    pub initial_errors: usize,
    /// Whether the gate was enabled.
    pub validated: bool,
}

/// Run the full pipeline for an OS. With `validate` off (the ablation),
/// the noisy spec is admitted as-is — mirroring a fuzzer that trusts
/// LLM output blindly.
pub fn generate_validated(
    os: OsKind,
    noise: &NoiseConfig,
    validate: bool,
) -> (SpecFile, GenReport) {
    generate_validated_scoped(os, noise, validate, false)
}

/// [`generate_validated`] with an explicit driver-layer scope —
/// `include_drivers` runs the pipeline over the spec that also carries
/// the SPI/I2C/DMA driver APIs.
pub fn generate_validated_scoped(
    os: OsKind,
    noise: &NoiseConfig,
    validate: bool,
    include_drivers: bool,
) -> (SpecFile, GenReport) {
    let text = extract_spec_text_scoped(os, include_drivers);
    let mut spec = parse_spec(&text).expect("extractor output always parses");
    let injected = apply_noise(&mut spec, noise);

    let mut report = GenReport {
        generated_apis: spec.apis.len(),
        defects_injected: injected.len(),
        validated: validate,
        ..GenReport::default()
    };

    // The "LLM emitted text" step: render and re-parse, so the admitted
    // artefact really went through the concrete syntax.
    let rendered = render_spec(&spec);
    let mut spec = match parse_spec(&rendered) {
        Ok(s) => s,
        // A spec so broken it does not re-parse is rejected wholesale.
        Err(_) => {
            report.rejected_apis = report.generated_apis;
            return (SpecFile::default(), report);
        }
    };

    if !validate {
        report.admitted_apis = spec.apis.len();
        return (spec, report);
    }

    let mut errors = typecheck(&spec);
    report.initial_errors = errors.len();
    // Evict offending APIs until clean (duplicate names make eviction by
    // name slightly aggressive, which matches a conservative gate).
    let mut evicted = BTreeSet::new();
    let mut rounds = 0;
    while !errors.is_empty() && rounds < 16 {
        let bad_names: BTreeSet<String> = errors.iter().map(|e| e.context.clone()).collect();
        for name in &bad_names {
            evicted.insert(name.clone());
        }
        spec.apis.retain(|a| !evicted.contains(&a.name));
        // Flag-set and resource errors name non-API contexts; evicting
        // APIs that reference them needs one more pass, which the loop
        // provides. Dangling declarations themselves are harmless.
        errors = typecheck(&spec)
            .into_iter()
            .filter(|e| spec.api(&e.context).is_some())
            .collect();
        rounds += 1;
    }
    report.rejected_apis = report.generated_apis - spec.apis.len();

    // Regeneration round: for every evicted API that the target really
    // exposes, re-prompt (our deterministic extractor is the re-prompt)
    // and admit the clean signature. Hallucinated APIs have no clean
    // counterpart and stay evicted. This mirrors the iterative prompting
    // the paper's workflow implies — the admitted corpus must cover the
    // real API surface, or whole subsystems go untested.
    let clean = parse_spec(&text).expect("extractor output always parses");
    for name in &evicted {
        if let Some(real) = clean.api(name) {
            if spec.api(name).is_none() {
                spec.apis.push(real.clone());
                report.regenerated_apis += 1;
            }
        }
    }
    // Restore any dropped declarations the clean APIs rely on.
    for (rname, rdecl) in &clean.resources {
        spec.resources
            .entry(rname.clone())
            .or_insert_with(|| rdecl.clone());
    }
    for (fname, fdecl) in &clean.flags {
        spec.flags
            .entry(fname.clone())
            .or_insert_with(|| fdecl.clone());
    }
    // Final safety: anything still failing is dropped for good.
    let residual: BTreeSet<String> = typecheck(&spec).into_iter().map(|e| e.context).collect();
    spec.apis.retain(|a| !residual.contains(&a.name));

    report.admitted_apis = spec.apis.len();
    (spec, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_generation_admits_everything() {
        for os in OsKind::ALL {
            let (spec, report) = generate_validated(os, &NoiseConfig::none(), true);
            assert_eq!(report.rejected_apis, 0, "{os}");
            assert_eq!(report.admitted_apis, spec.apis.len());
            assert!(report.admitted_apis > 5, "{os}");
        }
    }

    #[test]
    fn noisy_generation_gets_filtered() {
        let noise = NoiseConfig {
            seed: 11,
            defect_rate: 0.6,
        };
        let (spec, report) = generate_validated(OsKind::RtThread, &noise, true);
        assert!(report.defects_injected > 0);
        // Admitted spec is clean.
        let residual: Vec<_> = typecheck(&spec)
            .into_iter()
            .filter(|e| spec.api(&e.context).is_some())
            .collect();
        assert!(residual.is_empty(), "{residual:?}");
        // And the regeneration round restored the full real (pure-API)
        // surface — the default scope excludes driver modules.
        let kernel_apis = eof_rtos::registry::make_kernel(OsKind::RtThread)
            .api_table()
            .iter()
            .filter(|d| !crate::extract::DRIVER_MODULES.contains(&d.module))
            .count();
        assert_eq!(report.admitted_apis, kernel_apis);
        if report.rejected_apis > 0 {
            assert!(report.regenerated_apis > 0);
        }
    }

    #[test]
    fn gate_off_admits_defects() {
        let noise = NoiseConfig {
            seed: 11,
            defect_rate: 0.6,
        };
        let (_, with_gate) = generate_validated(OsKind::RtThread, &noise, true);
        let (spec_raw, without_gate) = generate_validated(OsKind::RtThread, &noise, false);
        assert!(without_gate.admitted_apis >= with_gate.admitted_apis);
        assert_eq!(without_gate.rejected_apis, 0);
        // The unvalidated spec still carries structural defects.
        if with_gate.rejected_apis > 0 {
            assert!(!typecheck(&spec_raw).is_empty());
        }
    }

    #[test]
    fn driver_scope_flows_through_the_gate() {
        for os in OsKind::ALL {
            let (pure, _) = generate_validated_scoped(os, &NoiseConfig::none(), true, false);
            let (full, report) = generate_validated_scoped(os, &NoiseConfig::none(), true, true);
            assert_eq!(report.rejected_apis, 0, "{os}");
            let kernel_apis = eof_rtos::registry::make_kernel(os).api_table().len();
            assert_eq!(full.apis.len(), kernel_apis, "{os}");
            assert!(full.apis.len() > pure.apis.len(), "{os}");
        }
    }

    #[test]
    fn deterministic_reports() {
        let noise = NoiseConfig {
            seed: 5,
            defect_rate: 0.4,
        };
        let (a, ra) = generate_validated(OsKind::Zephyr, &noise, true);
        let (b, rb) = generate_validated(OsKind::Zephyr, &noise, true);
        assert_eq!(a, b);
        assert_eq!(ra.admitted_apis, rb.admitted_apis);
        assert_eq!(ra.rejected_apis, rb.rejected_apis);
    }
}
