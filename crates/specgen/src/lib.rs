//! `eof-specgen` — API specification generation (the paper's LLM stage).
//!
//! The paper prompts GPT-4o with "the target embedded OS's headers, unit
//! test examples, and API reference text" and asks it to emit Syzlang
//! specifications, which are then "post-validated by parsing and type
//! checking, and only validated specifications are admitted to the
//! corpus" (§4.5). We have no LLM, so per the substitution rule this
//! crate implements the closest equivalent that exercises the same code
//! path:
//!
//! * [`extract`] — a deterministic extractor over the machine-readable
//!   API metadata every kernel model publishes (the stand-in for the
//!   model reading headers), emitting Syzlang text;
//! * [`noise`] — a seeded imperfection model reproducing characteristic
//!   LLM output defects (inverted bounds, dangling flag references,
//!   hallucinated APIs, dropped resource declarations), so the
//!   validation gate has real work to do;
//! * [`pipeline`] — the admission pipeline: generate → perturb → parse →
//!   type check → drop offending APIs → re-validate, with a report of
//!   what was rejected (the ablation benches switch the gate off).

pub mod extract;
pub mod noise;
pub mod pipeline;

pub use extract::{extract_spec_text, extract_spec_text_scoped, spec_line_count, DRIVER_MODULES};
pub use noise::{NoiseConfig, NoiseKind};
pub use pipeline::{generate_validated, generate_validated_scoped, GenReport};
