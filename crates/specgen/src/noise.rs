//! The LLM-imperfection model.
//!
//! "While flexible, this can yield suboptimal cases such as API misuse
//! and meaningless arguments" (§6). The noise model perturbs a parsed
//! specification with the defect classes LLM-generated Syzlang actually
//! exhibits, at a seeded, configurable rate. The validation gate
//! (`pipeline`) must then catch the structural ones.

use eof_speclang::ast::{ApiSpec, Param, SpecFile, TypeDesc};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Defect classes the model can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseKind {
    /// Swap a range's bounds (`int32[4096:128]`).
    InvertedRange,
    /// Reference a flag set that does not exist.
    DanglingFlags,
    /// Reference a resource kind that was never declared.
    DanglingResource,
    /// Emit a second API with the same name.
    DuplicateApi,
    /// Invent an API the OS does not have (hallucination).
    HallucinatedApi,
    /// Drop a resource declaration other APIs depend on.
    DroppedResource,
    /// Widen a numeric constraint beyond the real bound (semantic noise
    /// the type checker cannot catch — it survives the gate and wastes
    /// executions at run time).
    WidenedRange,
}

/// Configuration of the noise pass.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// RNG seed.
    pub seed: u64,
    /// Per-API probability of receiving one defect, 0.0–1.0.
    pub defect_rate: f64,
}

impl NoiseConfig {
    /// No noise at all.
    pub fn none() -> Self {
        NoiseConfig {
            seed: 0,
            defect_rate: 0.0,
        }
    }

    /// The default rate used in the evaluation: a quarter of APIs come
    /// back imperfect, matching the need for a validation gate.
    pub fn default_llm(seed: u64) -> Self {
        NoiseConfig {
            seed,
            defect_rate: 0.25,
        }
    }
}

/// Apply the noise model; returns the defects injected.
pub fn apply_noise(spec: &mut SpecFile, config: &NoiseConfig) -> Vec<NoiseKind> {
    if config.defect_rate <= 0.0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut injected = Vec::new();
    let api_count = spec.apis.len();
    let mut extra_apis: Vec<ApiSpec> = Vec::new();

    for idx in 0..api_count {
        if !rng.random_bool(config.defect_rate.clamp(0.0, 1.0)) {
            continue;
        }
        let kind = match rng.random_range(0..7u32) {
            0 => NoiseKind::InvertedRange,
            1 => NoiseKind::DanglingFlags,
            2 => NoiseKind::DanglingResource,
            3 => NoiseKind::DuplicateApi,
            4 => NoiseKind::HallucinatedApi,
            5 => NoiseKind::DroppedResource,
            _ => NoiseKind::WidenedRange,
        };
        match kind {
            NoiseKind::InvertedRange => {
                if invert_first_range(&mut spec.apis[idx]) {
                    injected.push(kind);
                }
            }
            NoiseKind::WidenedRange => {
                if widen_first_range(&mut spec.apis[idx]) {
                    injected.push(kind);
                }
            }
            NoiseKind::DanglingFlags => {
                spec.apis[idx].params.push(Param {
                    name: format!("ghost_flags_{idx}"),
                    ty: TypeDesc::Flags {
                        set: "nonexistent_flag_set".into(),
                    },
                });
                injected.push(kind);
            }
            NoiseKind::DanglingResource => {
                spec.apis[idx].params.push(Param {
                    name: format!("ghost_res_{idx}"),
                    ty: TypeDesc::Resource {
                        name: "phantom_handle".into(),
                    },
                });
                injected.push(kind);
            }
            NoiseKind::DuplicateApi => {
                extra_apis.push(spec.apis[idx].clone());
                injected.push(kind);
            }
            NoiseKind::HallucinatedApi => {
                extra_apis.push(ApiSpec {
                    name: format!("{}_v2_ex", spec.apis[idx].name),
                    params: vec![Param {
                        name: "magic".into(),
                        ty: TypeDesc::Resource {
                            name: "undeclared_kind".into(),
                        },
                    }],
                    returns: None,
                    doc: Some("Hallucinated variant.".into()),
                });
                injected.push(kind);
            }
            NoiseKind::DroppedResource => {
                // Remove an arbitrary resource declaration if any exist.
                if let Some(name) = spec.resources.keys().next().cloned() {
                    spec.resources.remove(&name);
                    injected.push(kind);
                }
            }
        }
    }
    spec.apis.extend(extra_apis);
    injected
}

fn invert_first_range(api: &mut ApiSpec) -> bool {
    for p in &mut api.params {
        if let TypeDesc::Int {
            range: Some((min, max)),
            ..
        } = &mut p.ty
        {
            if min != max {
                std::mem::swap(min, max);
                return true;
            }
        }
    }
    false
}

fn widen_first_range(api: &mut ApiSpec) -> bool {
    for p in &mut api.params {
        if let TypeDesc::Int {
            bits,
            range: Some((_, max)),
        } = &mut p.ty
        {
            let width_max = match bits {
                8 => u8::MAX as u64,
                16 => u16::MAX as u64,
                32 => u32::MAX as u64,
                _ => u64::MAX,
            };
            // LLMs over-estimate bounds by a factor, not to the type's
            // absolute limit: quadruple the declared maximum.
            let widened = max.saturating_mul(4).clamp(*max, width_max);
            if widened > *max {
                *max = widened;
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_speclang::parser::parse_spec;
    use eof_speclang::typecheck::typecheck;

    fn base_spec() -> SpecFile {
        parse_spec(
            "resource task[int32]: -1\n\
             prio = LOW:0x0, HIGH:0x1\n\
             create(p flags[prio], d int32[1:10]) task\n\
             delete(t task)\n\
             ping(n int32[0:5])\n",
        )
        .unwrap()
    }

    #[test]
    fn zero_rate_is_identity() {
        let mut s = base_spec();
        let orig = s.clone();
        let injected = apply_noise(&mut s, &NoiseConfig::none());
        assert!(injected.is_empty());
        assert_eq!(s, orig);
    }

    #[test]
    fn full_rate_injects_detectable_defects() {
        let mut s = base_spec();
        let cfg = NoiseConfig {
            seed: 7,
            defect_rate: 1.0,
        };
        let injected = apply_noise(&mut s, &cfg);
        assert!(!injected.is_empty());
        // At full rate on several APIs, the gate must have something to
        // reject OR the only defects are semantic (widened ranges).
        let structural = injected
            .iter()
            .any(|k| !matches!(k, NoiseKind::WidenedRange));
        if structural {
            assert!(!typecheck(&s).is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = NoiseConfig {
            seed: 42,
            defect_rate: 0.8,
        };
        let mut a = base_spec();
        let mut b = base_spec();
        let ia = apply_noise(&mut a, &cfg);
        let ib = apply_noise(&mut b, &cfg);
        assert_eq!(ia, ib);
        assert_eq!(a, b);
        // A different seed gives a different outcome (with high
        // probability for this spec size).
        let mut c = base_spec();
        let ic = apply_noise(
            &mut c,
            &NoiseConfig {
                seed: 43,
                defect_rate: 0.8,
            },
        );
        assert!(ia != ic || a != c);
    }

    #[test]
    fn inverted_range_helper() {
        let mut s = base_spec();
        let api = s.apis.iter_mut().find(|a| a.name == "create").unwrap();
        assert!(invert_first_range(api));
        match &api.params[1].ty {
            TypeDesc::Int {
                range: Some((min, max)),
                ..
            } => {
                assert!(min > max);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn widened_range_survives_typecheck() {
        let mut s = base_spec();
        let api = s.apis.iter_mut().find(|a| a.name == "ping").unwrap();
        assert!(widen_first_range(api));
        assert!(
            typecheck(&s).is_empty(),
            "semantic noise must pass the gate"
        );
    }
}
