//! Processor architecture and debug-interface descriptors.
//!
//! The paper's Table 1 compares fuzzer support across processor
//! architectures (ARM, RISC-V, Xtensa, PowerPC, MIPS, MSP430). The
//! simulated boards carry the same metadata so the adaptability matrix can
//! be regenerated, and so endianness-sensitive code paths (test-case
//! serialisation, coverage buffer layout) are exercised both ways.

use std::fmt;

/// Processor architecture of a simulated board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// ARM Cortex-M class cores (STM32 family).
    Arm,
    /// RISC-V RV32 class cores (HiFive-style devkits, ESP32-C3).
    RiscV,
    /// Tensilica Xtensa cores (classic ESP32).
    Xtensa,
    /// PowerPC cores (covered by SHIFT in the paper, not by EOF).
    PowerPc,
    /// MIPS cores (covered by SHIFT in the paper, not by EOF).
    Mips,
    /// TI MSP430 cores (covered by GDBFuzz in the paper, not by EOF).
    Msp430,
}

impl Arch {
    /// All architectures that appear in the paper's Table 1.
    pub const ALL: [Arch; 6] = [
        Arch::Arm,
        Arch::RiscV,
        Arch::Xtensa,
        Arch::PowerPc,
        Arch::Mips,
        Arch::Msp430,
    ];

    /// Natural word size of the architecture in bytes.
    pub fn word_bytes(self) -> usize {
        match self {
            Arch::Msp430 => 2,
            _ => 4,
        }
    }

    /// Default endianness used by the boards we model for this architecture.
    pub fn default_endianness(self) -> Endianness {
        match self {
            Arch::PowerPc | Arch::Mips => Endianness::Big,
            _ => Endianness::Little,
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Arch::Arm => "ARM",
            Arch::RiscV => "RISC-V",
            Arch::Xtensa => "Xtensa",
            Arch::PowerPc => "Power PC",
            Arch::Mips => "MIPS",
            Arch::Msp430 => "MSP430",
        };
        f.write_str(s)
    }
}

/// Byte order of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endianness {
    /// Least-significant byte first.
    Little,
    /// Most-significant byte first.
    Big,
}

impl Endianness {
    /// Encode a `u32` in this byte order.
    pub fn u32_bytes(self, v: u32) -> [u8; 4] {
        match self {
            Endianness::Little => v.to_le_bytes(),
            Endianness::Big => v.to_be_bytes(),
        }
    }

    /// Decode a `u32` in this byte order.
    pub fn u32_from(self, b: [u8; 4]) -> u32 {
        match self {
            Endianness::Little => u32::from_le_bytes(b),
            Endianness::Big => u32::from_be_bytes(b),
        }
    }

    /// Encode a `u64` in this byte order.
    pub fn u64_bytes(self, v: u64) -> [u8; 8] {
        match self {
            Endianness::Little => v.to_le_bytes(),
            Endianness::Big => v.to_be_bytes(),
        }
    }

    /// Decode a `u64` in this byte order.
    pub fn u64_from(self, b: [u8; 8]) -> u64 {
        match self {
            Endianness::Little => u64::from_le_bytes(b),
            Endianness::Big => u64::from_be_bytes(b),
        }
    }
}

impl fmt::Display for Endianness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Endianness::Little => "little",
            Endianness::Big => "big",
        })
    }
}

/// On-chip debug interface exposed by a board.
///
/// EOF uses whichever interface the board provides; both are driven through
/// the same [`crate::machine::Machine`] debug surface, mirroring how OpenOCD
/// abstracts JTAG and SWD behind one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DebugIface {
    /// IEEE 1149.1 JTAG (ESP32 devkits, RISC-V boards).
    Jtag,
    /// ARM Serial Wire Debug (STM32 boards).
    Swd,
}

impl fmt::Display for DebugIface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DebugIface::Jtag => "JTAG",
            DebugIface::Swd => "SWD",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_sizes() {
        assert_eq!(Arch::Arm.word_bytes(), 4);
        assert_eq!(Arch::Msp430.word_bytes(), 2);
    }

    #[test]
    fn endianness_roundtrip_u32() {
        for e in [Endianness::Little, Endianness::Big] {
            for v in [0u32, 1, 0xdead_beef, u32::MAX] {
                assert_eq!(e.u32_from(e.u32_bytes(v)), v);
            }
        }
    }

    #[test]
    fn endianness_roundtrip_u64() {
        for e in [Endianness::Little, Endianness::Big] {
            for v in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
                assert_eq!(e.u64_from(e.u64_bytes(v)), v);
            }
        }
    }

    #[test]
    fn big_endian_differs_from_little() {
        let v = 0x0102_0304u32;
        assert_eq!(Endianness::Little.u32_bytes(v), [4, 3, 2, 1]);
        assert_eq!(Endianness::Big.u32_bytes(v), [1, 2, 3, 4]);
    }

    #[test]
    fn default_endianness_per_arch() {
        assert_eq!(Arch::Arm.default_endianness(), Endianness::Little);
        assert_eq!(Arch::PowerPc.default_endianness(), Endianness::Big);
        assert_eq!(Arch::Mips.default_endianness(), Endianness::Big);
    }

    #[test]
    fn display_matches_paper_table() {
        assert_eq!(Arch::PowerPc.to_string(), "Power PC");
        assert_eq!(Arch::RiscV.to_string(), "RISC-V");
        assert_eq!(DebugIface::Jtag.to_string(), "JTAG");
    }
}
