//! Board-state snapshots for delta restore.
//!
//! A [`Snapshot`] is a host-side copy of everything needed to put the
//! board back into a known-good parked state without a reboot: the full
//! RAM image, the core registers (PC), and the flash *generation
//! counter* at capture time. RAM carries a dirty-page bitmap
//! ([`crate::mem::Ram`]), cleared at capture, so a later restore only
//! has to ship the pages written in between — the TSFFS-style "the
//! fastest restore is the one that never reboots" fast path.
//!
//! The generation counter is the suspicion rule: flash mutations
//! (reflash, injected bit flips) bump it, and a snapshot whose recorded
//! generation no longer matches the flash array was captured against an
//! image that has since changed underneath it. Such a snapshot must not
//! be restored — the recovery ladder escalates to the verify/reflash
//! rungs instead.

use crate::mem::PAGE_SIZE;

/// A captured board state: RAM image + core registers + the flash
/// generation the capture is only valid against.
#[derive(Debug, Clone)]
pub struct Snapshot {
    ram: Vec<u8>,
    ram_base: u32,
    pc: u32,
    flash_generation: u64,
    boot_epoch: u64,
    captured_at: u64,
    trace_enabled: bool,
}

impl Snapshot {
    /// Assemble a snapshot (called by `Machine::capture_snapshot`).
    pub(crate) fn new(
        ram: Vec<u8>,
        ram_base: u32,
        pc: u32,
        flash_generation: u64,
        boot_epoch: u64,
        captured_at: u64,
        trace_enabled: bool,
    ) -> Self {
        Snapshot {
            ram,
            ram_base,
            pc,
            flash_generation,
            boot_epoch,
            captured_at,
            trace_enabled,
        }
    }

    /// Base address of the captured RAM window.
    pub fn ram_base(&self) -> u32 {
        self.ram_base
    }

    /// Size of the captured RAM image in bytes.
    pub fn ram_len(&self) -> usize {
        self.ram.len()
    }

    /// Program counter at capture time (the parked sync point).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Flash generation counter this snapshot was captured against. A
    /// mismatch with the live counter means the snapshot is suspect.
    pub fn flash_generation(&self) -> u64 {
        self.flash_generation
    }

    /// Boot epoch (reset count domain) the snapshot belongs to. A reset
    /// re-baselines the dirty-page bitmap, so a snapshot from an earlier
    /// epoch can no longer tell which pages diverged.
    pub fn boot_epoch(&self) -> u64 {
        self.boot_epoch
    }

    /// The full captured RAM image.
    pub fn ram_image(&self) -> &[u8] {
        &self.ram
    }

    /// Total-cycle timestamp of the capture (diagnostics).
    pub fn captured_at(&self) -> u64 {
        self.captured_at
    }

    /// Whether the trace unit was armed at capture time. Restore
    /// re-applies the latch (and quiesces the stream — a restored state
    /// is a fresh run as far as the trace decoder is concerned).
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Number of [`PAGE_SIZE`] pages in the captured image.
    pub fn page_count(&self) -> usize {
        self.ram.len().div_ceil(PAGE_SIZE)
    }

    /// Absolute address of page `page`.
    pub fn page_addr(&self, page: usize) -> u32 {
        self.ram_base + (page * PAGE_SIZE) as u32
    }

    /// Captured contents of page `page` (the last page may be short).
    pub fn page(&self, page: usize) -> &[u8] {
        let start = page * PAGE_SIZE;
        let end = (start + PAGE_SIZE).min(self.ram.len());
        &self.ram[start..end]
    }
}
