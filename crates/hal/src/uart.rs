//! Simulated UART transmit channel.
//!
//! EOF "captures the target OS's UART output and redirects it to the stdout
//! channel as the target OS's runtime log" (paper §4.3.1). The log monitor
//! then scans that stream for crash signatures. Two properties of real
//! UARTs matter to the reproduction and are modelled here:
//!
//! * the transmit FIFO is small and *lossy* — when the firmware outruns the
//!   drain rate (or nobody is listening), bytes are dropped, which is why
//!   "UART logs may vanish after a fault" (paper §3.2);
//! * output is a byte stream, not discrete messages — the host must
//!   re-segment lines itself.

use std::collections::VecDeque;

/// Default capacity of the simulated TX FIFO in bytes.
pub const DEFAULT_FIFO: usize = 4096;

/// A one-directional (target→host) UART with a bounded FIFO.
#[derive(Debug, Clone)]
pub struct Uart {
    fifo: VecDeque<u8>,
    capacity: usize,
    dropped: u64,
    total_tx: u64,
    /// When set, all subsequent writes are discarded — models the UART
    /// peripheral dying after a hard fault.
    muted: bool,
}

impl Default for Uart {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FIFO)
    }
}

impl Uart {
    /// Create a UART with a FIFO of `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Uart {
            fifo: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
            total_tx: 0,
            muted: false,
        }
    }

    /// Transmit raw bytes from the firmware. Bytes beyond the free FIFO
    /// space are silently dropped (counted in [`Uart::dropped`]).
    pub fn tx(&mut self, data: &[u8]) {
        if self.muted {
            self.dropped += data.len() as u64;
            return;
        }
        for &b in data {
            self.total_tx += 1;
            if self.fifo.len() < self.capacity {
                self.fifo.push_back(b);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Transmit a string followed by a newline — the firmware-side `printk`.
    pub fn tx_line(&mut self, line: &str) {
        self.tx(line.as_bytes());
        self.tx(b"\n");
    }

    /// Drain everything currently buffered (host side).
    pub fn drain(&mut self) -> Vec<u8> {
        self.fifo.drain(..).collect()
    }

    /// Number of bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.fifo.len()
    }

    /// Bytes dropped due to FIFO overflow or muting.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total bytes the firmware attempted to transmit.
    pub fn total_tx(&self) -> u64 {
        self.total_tx
    }

    /// Kill the UART (hard-fault aftermath). Subsequent writes are lost.
    pub fn mute(&mut self) {
        self.muted = true;
    }

    /// Whether the UART has been muted by a fault.
    pub fn is_muted(&self) -> bool {
        self.muted
    }

    /// Power-on/reset: clears the FIFO and un-mutes.
    pub fn reset(&mut self) {
        self.fifo.clear();
        self.muted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_and_drain() {
        let mut u = Uart::default();
        u.tx_line("boot ok");
        assert_eq!(u.drain(), b"boot ok\n");
        assert_eq!(u.pending(), 0);
    }

    #[test]
    fn overflow_drops_tail() {
        let mut u = Uart::with_capacity(4);
        u.tx(b"abcdef");
        assert_eq!(u.drain(), b"abcd");
        assert_eq!(u.dropped(), 2);
        assert_eq!(u.total_tx(), 6);
    }

    #[test]
    fn mute_loses_logs() {
        let mut u = Uart::default();
        u.tx(b"before");
        u.mute();
        u.tx(b"after-fault");
        assert_eq!(u.drain(), b"before");
        assert_eq!(u.dropped(), 11);
    }

    #[test]
    fn reset_unmutes_and_clears() {
        let mut u = Uart::with_capacity(8);
        u.tx(b"junk");
        u.mute();
        u.reset();
        assert!(!u.is_muted());
        u.tx(b"fresh");
        assert_eq!(u.drain(), b"fresh");
    }

    #[test]
    fn drain_frees_capacity() {
        let mut u = Uart::with_capacity(4);
        u.tx(b"abcd");
        u.drain();
        u.tx(b"ef");
        assert_eq!(u.drain(), b"ef");
        assert_eq!(u.dropped(), 0);
    }
}
