//! Error types for the hardware abstraction layer.

use std::fmt;

/// Errors raised by the simulated hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HalError {
    /// A memory access fell outside the RAM address space.
    OutOfBoundsRam {
        /// Faulting address.
        addr: u32,
        /// Access length in bytes.
        len: usize,
        /// RAM size in bytes.
        ram_size: usize,
    },
    /// A flash access fell outside the flash address space.
    OutOfBoundsFlash {
        /// Faulting offset.
        offset: u32,
        /// Access length in bytes.
        len: usize,
        /// Flash size in bytes.
        flash_size: usize,
    },
    /// A flash write targeted a region that was not erased first.
    FlashNotErased {
        /// Offset of the first conflicting byte.
        offset: u32,
    },
    /// A partition name was not present in the partition table.
    UnknownPartition(String),
    /// Partition layout is inconsistent (overlap or out of range).
    BadPartitionLayout(String),
    /// The machine has no firmware loaded (boot failed or flash empty).
    NoFirmware,
    /// The machine is not in the state the operation requires.
    BadMachineState {
        /// Operation that was attempted.
        op: &'static str,
        /// Human-readable state description.
        state: String,
    },
    /// The flash image failed validation at boot.
    BootFailure(String),
    /// Breakpoint table is full (hardware has a small fixed number).
    BreakpointLimit {
        /// Maximum supported by the board.
        max: usize,
    },
}

impl fmt::Display for HalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HalError::OutOfBoundsRam {
                addr,
                len,
                ram_size,
            } => write!(
                f,
                "RAM access out of bounds: addr={addr:#010x} len={len} ram_size={ram_size:#x}"
            ),
            HalError::OutOfBoundsFlash {
                offset,
                len,
                flash_size,
            } => write!(
                f,
                "flash access out of bounds: offset={offset:#010x} len={len} flash_size={flash_size:#x}"
            ),
            HalError::FlashNotErased { offset } => {
                write!(f, "flash write to non-erased region at {offset:#010x}")
            }
            HalError::UnknownPartition(name) => write!(f, "unknown partition {name:?}"),
            HalError::BadPartitionLayout(msg) => write!(f, "bad partition layout: {msg}"),
            HalError::NoFirmware => f.write_str("no firmware loaded"),
            HalError::BadMachineState { op, state } => {
                write!(f, "cannot {op}: machine is {state}")
            }
            HalError::BootFailure(msg) => write!(f, "boot failure: {msg}"),
            HalError::BreakpointLimit { max } => {
                write!(f, "hardware breakpoint limit reached (max {max})")
            }
        }
    }
}

impl std::error::Error for HalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HalError::OutOfBoundsRam {
            addr: 0x2000_0000,
            len: 4,
            ram_size: 0x1_0000,
        };
        let s = e.to_string();
        assert!(s.contains("0x20000000"));
        assert!(s.contains("len=4"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(HalError::NoFirmware);
        assert_eq!(e.to_string(), "no firmware loaded");
    }
}
