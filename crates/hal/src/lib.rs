//! `eof-hal` — simulated embedded hardware substrate for the EOF fuzzer.
//!
//! The EOF paper (EuroSys '26) fuzzes embedded operating systems running on
//! physical development boards (ESP32, STM32, RISC-V devkits) through the
//! hardware debug port. This crate is the reproduction's hardware
//! substitution: a deterministic, cycle-metered microcontroller simulator
//! that exposes exactly the surface a debug probe sees — memory, flash,
//! a program counter, breakpoints, reset lines and a UART — plus the
//! failure modes that matter for on-hardware fuzzing (boot failure, image
//! corruption, execution stalls, watchdog expiry).
//!
//! Nothing in this crate knows about any particular operating system; the
//! firmware that runs on a [`machine::Machine`] is abstracted behind the
//! [`firmware::Firmware`] trait and loaded from flash by a caller-supplied
//! [`machine::FirmwareLoader`].
//!
//! # Layering
//!
//! ```text
//!   eof-dap (debug access port)        — drives Machine via its debug surface
//!        │
//!   eof-hal::Machine                   — CPU state, breakpoints, reset, boot
//!        │
//!   Bus { Ram, Flash, Uart, Clock }    — what the firmware itself can touch
//! ```

pub mod arch;
pub mod board;
pub mod bus;
pub mod clock;
pub mod error;
pub mod fault;
pub mod firmware;
pub mod flash;
pub mod machine;
pub mod mem;
pub mod mmio;
pub mod snapshot;
pub mod symbols;
pub mod trace;
pub mod uart;
pub mod watchdog;

pub use arch::{Arch, DebugIface, Endianness};
pub use board::{BoardCatalog, BoardSpec};
pub use bus::{irq, Bus, IrqRequest};
pub use clock::CycleClock;
pub use error::HalError;
pub use fault::{FaultKind, FaultPlan, InjectedFault};
pub use firmware::{Firmware, StepResult};
pub use flash::{Flash, Partition, PartitionTable};
pub use machine::{BootState, FirmwareLoader, Machine, RunExit};
pub use mem::{Ram, PAGE_SIZE};
pub use mmio::{MmioSpace, MmioStats};
pub use snapshot::Snapshot;
pub use symbols::SymbolTable;
pub use trace::{TraceUnit, TRACE_FIFO_DEFAULT, TRACE_HEADER_BYTES};
pub use uart::Uart;
pub use watchdog::HardwareWatchdog;
