//! The simulated machine: core state, boot, breakpoints, reset and the
//! debug surface the DAP drives.
//!
//! A [`Machine`] composes a [`BoardSpec`], a [`Bus`] (RAM + UART + clock),
//! flash, and a slot for loaded [`Firmware`]. The host never calls firmware
//! directly; it either lets the machine run ([`Machine::run`]) or pokes it
//! through the same primitives a JTAG/SWD probe has: halt, resume, read and
//! write memory, set breakpoints, reset, reflash.

use crate::board::BoardSpec;
use crate::bus::Bus;
use crate::error::HalError;
use crate::fault::{FaultKind, FaultPlan, FaultRecord, InjectedFault};
use crate::firmware::{Firmware, StepResult};
use crate::flash::Flash;
use crate::snapshot::Snapshot;
use crate::trace::TRACE_HEADER_BYTES;
use crate::watchdog::HardwareWatchdog;
use eof_telemetry as tel;

/// Lifecycle state of the simulated core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootState {
    /// Power is off; nothing loaded.
    Off,
    /// Boot failed (bad image); the core never started. Debug reads of the
    /// core state time out in this state.
    Dead(String),
    /// Core is executing firmware.
    Running,
    /// Core is halted (breakpoint hit or debugger halt request).
    Halted,
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// A hardware breakpoint at `pc` was hit.
    Breakpoint {
        /// Address of the breakpoint.
        pc: u32,
    },
    /// The cycle budget given to `run` was exhausted while still running.
    BudgetExhausted,
    /// The core died mid-run (injected `KillCore` or boot failure).
    CoreDead,
    /// The on-chip hardware watchdog fired and warm-reset the machine.
    WatchdogReset,
}

/// Constructor for firmware from flash contents. Supplied by the OS layer
/// (`eof-rtos`); the HAL itself is OS-agnostic.
pub type FirmwareLoader =
    Box<dyn Fn(&Flash, &BoardSpec) -> Result<Box<dyn Firmware>, HalError> + Send>;

/// A simulated development board with a debug port.
pub struct Machine {
    board: BoardSpec,
    bus: Bus,
    flash: Flash,
    firmware: Option<Box<dyn Firmware>>,
    loader: FirmwareLoader,
    state: BootState,
    pc: u32,
    breakpoints: Vec<u32>,
    fault_plan: FaultPlan,
    last_fault: Option<FaultRecord>,
    watchdog: HardwareWatchdog,
    reset_count: u64,
    /// Set by an injected `KillCore`; cleared only by reflash+reset or a
    /// full power-cycle (power-on reset releases the lockup latch).
    core_killed: bool,
    /// An injected `Brownout` keeps the core unresponsive until this
    /// cycle; 0 = no sag active.
    brownout_until: u64,
    /// Number of full power-cycles performed since construction.
    power_cycles: u64,
    /// Bumped on every reset/power-cycle. Resets re-baseline the RAM
    /// dirty bitmap, so a snapshot is only restorable within the boot
    /// epoch it was captured in.
    boot_epoch: u64,
    /// Most recent power-rail sample in milliwatts (external probe view).
    power_mw: f32,
}

impl Machine {
    /// Assemble a powered-off machine for `board`, using `loader` to
    /// construct firmware from flash at boot.
    pub fn new(board: BoardSpec, loader: FirmwareLoader) -> Self {
        let mut bus = Bus::new(board.ram_base, board.ram_size, board.endianness);
        bus.silicon = !board.is_emulated;
        let flash = Flash::new(board.flash_size as usize, board.default_partitions());
        Machine {
            board,
            bus,
            flash,
            firmware: None,
            loader,
            state: BootState::Off,
            pc: 0,
            breakpoints: Vec::new(),
            fault_plan: FaultPlan::none(),
            last_fault: None,
            watchdog: HardwareWatchdog::new(u64::MAX / 2),
            reset_count: 0,
            core_killed: false,
            brownout_until: 0,
            power_cycles: 0,
            boot_epoch: 0,
            power_mw: POWER_IDLE_MW,
        }
    }

    /// Board descriptor.
    pub fn board(&self) -> &BoardSpec {
        &self.board
    }

    /// Shared bus (RAM, UART, clock).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable bus access (host-side test helpers; the DAP uses the
    /// dedicated memory methods below).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Flash array.
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Mutable flash access (programming over the debug port).
    pub fn flash_mut(&mut self) -> &mut Flash {
        &mut self.flash
    }

    /// Current lifecycle state.
    pub fn state(&self) -> &BootState {
        &self.state
    }

    /// Program counter most recently reported by the firmware.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Number of resets (cold + warm) since construction.
    pub fn reset_count(&self) -> u64 {
        self.reset_count
    }

    /// The most recent firmware fault, if any.
    pub fn last_fault(&self) -> Option<&FaultRecord> {
        self.last_fault.as_ref()
    }

    /// Clear the recorded fault (after the host has harvested it).
    pub fn clear_fault(&mut self) {
        self.last_fault = None;
    }

    /// Install a fault-injection plan (testing / ablation harnesses).
    ///
    /// Plan entries are measured from the moment the plan is armed, not
    /// from power-on: booting alone charges six figures of bus cycles, so
    /// absolute schedules written by a test would already be in the past
    /// and fire (then get silently absorbed) inside executor setup.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan.rebase(self.bus.now());
    }

    /// On-chip hardware watchdog.
    pub fn watchdog_mut(&mut self) -> &mut HardwareWatchdog {
        &mut self.watchdog
    }

    /// Whether the core is dead (boot failure, killed, or browned out).
    pub fn is_dead(&self) -> bool {
        matches!(self.state, BootState::Dead(_)) || self.core_killed || self.browned_out()
    }

    /// Whether a supply brownout currently holds the core down.
    pub fn browned_out(&self) -> bool {
        self.bus.now() < self.brownout_until
    }

    /// Number of full power-cycles performed.
    pub fn power_cycles(&self) -> u64 {
        self.power_cycles
    }

    /// Whether the core is halted under debugger control.
    pub fn is_halted(&self) -> bool {
        self.state == BootState::Halted
    }

    // ----- boot & reset ---------------------------------------------------

    /// Power-on (or warm) reset: clear RAM and peripherals, re-run the
    /// loader against current flash contents. A corrupted image leaves the
    /// machine [`BootState::Dead`]. A killed core stays dead across plain
    /// resets — only a reflash of the kernel partition revives it,
    /// reproducing the "a simple reboot is insufficient" property (§3.2).
    pub fn reset(&mut self) {
        self.reset_count += 1;
        self.boot_epoch += 1;
        self.bus.power_cycle();
        self.bus.charge(cost::RESET);
        self.last_fault = None;
        if self.core_killed {
            self.state = BootState::Dead("core killed; reflash required".into());
            self.firmware = None;
            return;
        }
        match (self.loader)(&self.flash, &self.board) {
            Ok(mut fw) => {
                fw.on_reset(&mut self.bus);
                self.pc = fw.symbols().lookup("reset_vector").unwrap_or(0);
                self.firmware = Some(fw);
                self.state = BootState::Running;
            }
            Err(e) => {
                self.firmware = None;
                self.state = BootState::Dead(e.to_string());
            }
        }
    }

    /// Reflash a partition over the debug port and clear the killed flag
    /// for kernel reflashes (new image, fresh core state).
    pub fn reflash_partition(&mut self, name: &str, image: &[u8]) -> Result<(), HalError> {
        // Debug-port flashing is slow; charge proportional to image size.
        self.bus
            .charge_debug(cost::FLASH_BASE + (image.len() as u64 / 64) * cost::FLASH_PER_64B);
        // The flash controller shares the supply rail: a sagging supply
        // corrupts programming, so the operation is refused outright.
        if self.browned_out() {
            return Err(HalError::BadMachineState {
                op: "flash write",
                state: "brownout".into(),
            });
        }
        self.flash.flash_partition(name, image)?;
        if name == "kernel" {
            self.core_killed = false;
        }
        Ok(())
    }

    /// Full power-cycle: the supply is cut for `off_cycles`, then the
    /// machine cold-boots. Unlike [`Machine::reset`], this is a power-on
    /// reset — it releases a hard-lockup latch (`KillCore`) without a
    /// reflash, and its off-time can outlast a supply brownout. The
    /// power rail is independent of the debug link, so recovery tooling
    /// can pull the plug even when the probe sees nothing.
    pub fn power_cycle(&mut self, off_cycles: u64) {
        self.power_cycles += 1;
        tel::count("hal.power_cycles", 1);
        tel::event("hal.power_cycle", self.bus.now(), || {
            format!("off_cycles={off_cycles}")
        });
        self.bus.charge(off_cycles);
        self.core_killed = false;
        self.reset();
    }

    // ----- execution ------------------------------------------------------

    /// Apply injected core/peripheral faults that are due at the current
    /// cycle. Link faults stay in the plan for the transport to collect
    /// via [`Machine::take_due_link_faults`].
    fn apply_due_faults(&mut self) {
        for f in self.fault_plan.take_due_core(self.bus.now()) {
            tel::count(fault_counter_key(&f), 1);
            tel::event("hal.fault", self.bus.now(), || f.label().to_string());
            match f {
                InjectedFault::FlashBitFlip { offset, bit } => {
                    let _ = self.flash.flip_bit(offset, bit);
                }
                InjectedFault::FreezeFirmware => {
                    if let Some(fw) = self.firmware.as_mut() {
                        fw.freeze();
                    }
                }
                InjectedFault::KillCore => {
                    self.core_killed = true;
                    self.state = BootState::Dead("core killed by injected fault".into());
                    self.bus.uart.mute();
                }
                InjectedFault::Brownout { cycles } => {
                    self.brownout_until = self.bus.now().saturating_add(cycles);
                }
                InjectedFault::UartGarbage => {
                    let noise = uart_noise(self.bus.now());
                    self.bus.uart.tx(&noise);
                }
                // Link faults are consumed by the DAP layer, not the core.
                InjectedFault::DropLink { .. } | InjectedFault::FlakyLink { .. } => {}
            }
        }
    }

    /// Remove and hand over the link faults that are due now. Called by
    /// the transport on every operation so link outages fire even while
    /// the core is halted or dead (the probe's cable does not care what
    /// the core is doing).
    pub fn take_due_link_faults(&mut self) -> Vec<InjectedFault> {
        self.fault_plan.take_due_link(self.bus.now())
    }

    /// Injected faults not yet fired (chaos-harness accounting).
    pub fn pending_injected_faults(&self) -> usize {
        self.fault_plan.pending()
    }

    /// Execute a single firmware quantum. Returns the step result, or
    /// `None` if the machine is not in a runnable state.
    pub fn step(&mut self) -> Option<StepResult> {
        if self.state != BootState::Running {
            return None;
        }
        self.apply_due_faults();
        if self.state != BootState::Running {
            return None;
        }
        let fw = self.firmware.as_mut()?;
        let result = fw.step(&mut self.bus);
        self.bus.charge(result.cycles());
        self.pc = result.pc();
        // Power model: varied workloads draw varied current; a spin loop
        // draws a flat plateau; a fault handler spikes briefly.
        self.power_mw = match &result {
            StepResult::Running { .. } => {
                POWER_ACTIVE_MW + ((self.bus.now().wrapping_mul(7919) % 100) as f32) / 8.0
            }
            StepResult::Stalled { .. } => POWER_PLATEAU_MW,
            StepResult::Fault(_) => POWER_SPIKE_MW,
        };
        if let StepResult::Fault(rec) = &result {
            // A hard lockup takes the UART with it.
            if rec.kind == FaultKind::HardLockup {
                self.bus.uart.mute();
            }
            self.last_fault = Some(rec.clone());
        }
        if self.breakpoints.contains(&self.pc) {
            self.state = BootState::Halted;
        }
        Some(result)
    }

    /// Run until a breakpoint, death, watchdog reset, or `budget` cycles
    /// elapse (measured from entry).
    pub fn run(&mut self, budget: u64) -> RunExit {
        let start = self.bus.now();
        loop {
            if self.is_dead() {
                return RunExit::CoreDead;
            }
            if self.watchdog.expired(self.bus.now()) {
                self.reset();
                return RunExit::WatchdogReset;
            }
            if self.state == BootState::Halted {
                return RunExit::Breakpoint { pc: self.pc };
            }
            if self.bus.now().saturating_sub(start) >= budget {
                return RunExit::BudgetExhausted;
            }
            if self.step().is_none() {
                // Not runnable and not halted/dead: treat as dead air.
                return RunExit::CoreDead;
            }
            if self.state == BootState::Halted {
                return RunExit::Breakpoint { pc: self.pc };
            }
        }
    }

    // ----- debug surface (what a probe can do) -----------------------------

    /// Debugger halt request.
    pub fn debug_halt(&mut self) -> Result<(), HalError> {
        match self.state {
            BootState::Running | BootState::Halted => {
                self.state = BootState::Halted;
                Ok(())
            }
            _ => Err(self.bad_state("halt")),
        }
    }

    /// Debugger resume request.
    pub fn debug_resume(&mut self) -> Result<(), HalError> {
        match self.state {
            BootState::Halted | BootState::Running => {
                self.state = BootState::Running;
                Ok(())
            }
            _ => Err(self.bad_state("resume")),
        }
    }

    /// Read target RAM over the debug port.
    pub fn debug_read(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), HalError> {
        if self.is_dead() {
            return Err(self.bad_state("read memory"));
        }
        self.bus
            .charge_debug(cost::MEM_BASE + (buf.len() as u64 / 4) * cost::MEM_PER_WORD);
        self.bus.ram.read(addr, buf)
    }

    /// Write target RAM over the debug port.
    pub fn debug_write(&mut self, addr: u32, buf: &[u8]) -> Result<(), HalError> {
        if self.is_dead() {
            return Err(self.bad_state("write memory"));
        }
        self.bus
            .charge_debug(cost::MEM_BASE + (buf.len() as u64 / 4) * cost::MEM_PER_WORD);
        self.bus.ram.write(addr, buf)
    }

    /// Bounds-check a debug memory access without performing it. The
    /// vectored transaction layer validates every queued operation before
    /// applying any, so a mid-batch bad address refuses the whole batch
    /// instead of half-applying it.
    pub fn debug_check_mem(&self, addr: u32, len: usize) -> Result<(), HalError> {
        self.bus.ram.slice(addr, len).map(|_| ())
    }

    /// Like [`Machine::debug_read`] but without the per-access base
    /// charge: a vectored transaction pays [`cost::MEM_BASE`] once for
    /// the whole batch (one access-port setup) and streams payload words
    /// back-to-back.
    pub fn debug_read_batched(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), HalError> {
        if self.is_dead() {
            return Err(self.bad_state("read memory"));
        }
        self.bus
            .charge_debug((buf.len() as u64 / 4) * cost::MEM_PER_WORD);
        self.bus.ram.read(addr, buf)
    }

    /// Like [`Machine::debug_write`] but without the per-access base
    /// charge (see [`Machine::debug_read_batched`]).
    pub fn debug_write_batched(&mut self, addr: u32, buf: &[u8]) -> Result<(), HalError> {
        if self.is_dead() {
            return Err(self.bad_state("write memory"));
        }
        self.bus
            .charge_debug((buf.len() as u64 / 4) * cost::MEM_PER_WORD);
        self.bus.ram.write(addr, buf)
    }

    /// Whether the flash controller's debug path answers at all. A
    /// hard-locked core takes the whole access port down and a sagging
    /// supply silences the flash controller; everything else (including
    /// a boot-dead core) still answers flash commands.
    pub fn flash_port_available(&self) -> bool {
        !self.core_killed && !self.browned_out()
    }

    /// Read the PC over the debug port. Fails when the core is dead, which
    /// is how the liveness watchdog's connection timeout manifests.
    pub fn debug_pc(&mut self) -> Result<u32, HalError> {
        if self.is_dead() {
            return Err(self.bad_state("read pc"));
        }
        self.bus.charge_debug(cost::REG_READ);
        Ok(self.pc)
    }

    /// Install a hardware breakpoint. Bounded by the board's comparator
    /// count, like real debug units.
    pub fn set_breakpoint(&mut self, addr: u32) -> Result<(), HalError> {
        if self.breakpoints.contains(&addr) {
            return Ok(());
        }
        if self.breakpoints.len() >= self.board.max_breakpoints {
            return Err(HalError::BreakpointLimit {
                max: self.board.max_breakpoints,
            });
        }
        self.bus.charge_debug(cost::BP_OP);
        self.breakpoints.push(addr);
        Ok(())
    }

    /// Remove a hardware breakpoint (no-op if absent).
    pub fn clear_breakpoint(&mut self, addr: u32) {
        self.bus.charge_debug(cost::BP_OP);
        self.breakpoints.retain(|&a| a != addr);
    }

    /// Currently installed breakpoints.
    pub fn breakpoints(&self) -> &[u32] {
        &self.breakpoints
    }

    /// Look up a firmware symbol (probe-side ELF symbol table stand-in).
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.firmware
            .as_ref()
            .and_then(|f| f.symbols().lookup(name))
    }

    /// Symbolise an address against the loaded firmware.
    pub fn symbolize(&self, addr: u32) -> Option<(String, u32)> {
        self.firmware
            .as_ref()
            .and_then(|f| f.symbols().symbolize(addr))
            .map(|(n, off)| (n.to_string(), off))
    }

    /// Target-side checksum of a flash partition (OpenOCD's
    /// `flash verify_image` runs a CRC loop on the target; this is its
    /// stand-in). Works even when the core is dead — the flash
    /// controller answers independently.
    pub fn debug_flash_checksum(&mut self, partition: &str) -> Result<u64, HalError> {
        // A hard-locked core takes the debug access port down with it;
        // only the reset/flash lines still answer. A browned-out flash
        // controller does not answer either.
        if self.core_killed || self.browned_out() {
            return Err(self.bad_state("flash checksum"));
        }
        let part = self.flash.table().get(partition)?.clone();
        // The verify loop costs time proportional to the region size.
        self.bus
            .charge_debug(cost::VERIFY_BASE + (part.size as u64 / 1024) * cost::VERIFY_PER_KB);
        self.flash.checksum(part.offset, part.size as usize)
    }

    /// Per-sector target-side checksums of a flash partition: the same
    /// verify loop as [`Machine::debug_flash_checksum`] (and the same
    /// cost — the target walks the same bytes), reported at erase
    /// granularity so the host can localise damage and rewrite only the
    /// sectors that differ, the way probe-rs/OpenOCD flashers diff
    /// sectors before programming.
    pub fn debug_flash_sector_checksums(&mut self, partition: &str) -> Result<Vec<u64>, HalError> {
        if self.core_killed || self.browned_out() {
            return Err(self.bad_state("flash sector checksums"));
        }
        let part = self.flash.table().get(partition)?.clone();
        self.bus
            .charge_debug(cost::VERIFY_BASE + (part.size as u64 / 1024) * cost::VERIFY_PER_KB);
        self.flash.sector_checksums(part.offset, part.size as usize)
    }

    /// Rewrite a sparse set of sectors inside a partition — the
    /// sector-delta counterpart of [`Machine::reflash_partition`]. Each
    /// entry is `(sector index within the partition, bytes)`. One
    /// programming session is opened for the batch and only the shipped
    /// sectors pay per-byte streaming cost, so a bit flip repairs at
    /// sector cost instead of partition cost. Unlike a full kernel
    /// stream this does NOT release the hard-lockup latch: a latched
    /// core needs a power-on reset, not a spot repair.
    pub fn debug_reflash_sectors(
        &mut self,
        partition: &str,
        sectors: &[(u32, Vec<u8>)],
    ) -> Result<(), HalError> {
        let total: u64 = sectors.iter().map(|(_, d)| d.len() as u64).sum();
        self.bus
            .charge_debug(cost::FLASH_BASE + (total / 64) * cost::FLASH_PER_64B);
        // Same supply-rail rule as reflash_partition: the cost of the
        // stream is paid before the controller refuses it. Unlike the
        // full kernel stream, a sector write cannot release the
        // hard-lockup latch, so a killed core refuses too — programming
        // sectors into a controller that cannot come back is wasted
        // wire time.
        if !self.flash_port_available() {
            return Err(self.bad_state("flash sector write"));
        }
        let part = self.flash.table().get(partition)?.clone();
        for (idx, data) in sectors {
            let off = *idx as u64 * crate::flash::SECTOR_SIZE as u64;
            if data.len() > crate::flash::SECTOR_SIZE || off + data.len() as u64 > part.size as u64
            {
                return Err(HalError::BadPartitionLayout(format!(
                    "sector {idx} write ({} bytes) exceeds partition {partition:?} ({} bytes)",
                    data.len(),
                    part.size
                )));
            }
            self.flash.reprogram(part.offset + off as u32, data)?;
        }
        Ok(())
    }

    // ----- snapshot & delta restore ----------------------------------------

    /// Current boot epoch (bumped on every reset/power-cycle).
    pub fn boot_epoch(&self) -> u64 {
        self.boot_epoch
    }

    /// Number of RAM pages written since power-on or the last snapshot
    /// capture — what a capture has to read back and what a delta
    /// restore has to write. Reading the trace unit's bitmap is what
    /// the transport layer charges for; this accessor itself is free.
    pub fn dirty_page_count(&self) -> usize {
        self.bus.ram.dirty_page_count()
    }

    /// Indices of RAM pages written since the last capture (host-side
    /// bookkeeping; free, like [`Machine::dirty_page_count`]).
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.bus.ram.dirty_pages()
    }

    /// Dry-run the firmware loader against current flash without touching
    /// machine state: does the image still parse? Vectored-transaction
    /// validation uses this to refuse a doomed `RestoreCore` before
    /// anything applies.
    pub fn check_boot_image(&self) -> Result<(), HalError> {
        (self.loader)(&self.flash, &self.board).map(|_| ())
    }

    /// Capture the board state: full RAM image (host-side; the wire only
    /// ever carried the dirty pages — everything else is the
    /// architectural power-on zero fill or a previously captured page),
    /// core registers, and the flash generation + boot epoch the capture
    /// is valid against. Clears the dirty bitmap, making this capture
    /// the new delta baseline.
    pub fn capture_snapshot(&mut self) -> Result<Snapshot, HalError> {
        if self.is_dead() {
            return Err(self.bad_state("capture snapshot"));
        }
        let ram = self
            .bus
            .ram
            .slice(self.bus.ram.base(), self.bus.ram.size())?
            .to_vec();
        let snap = Snapshot::new(
            ram,
            self.bus.ram.base(),
            self.pc,
            self.flash.generation(),
            self.boot_epoch,
            self.bus.now(),
            self.bus.trace.enabled(),
        );
        self.bus.ram.clear_dirty();
        Ok(snap)
    }

    /// Whether `snap` may be restored right now: the core must answer,
    /// flash must not have mutated since capture (the generation-counter
    /// suspicion rule — an injected bit flip or a reflash makes the
    /// snapshot's view of the image stale), and no reset may have
    /// re-baselined the dirty bitmap in between.
    pub fn snapshot_valid(&self, snap: &Snapshot) -> bool {
        !self.core_killed
            && !self.browned_out()
            && snap.flash_generation() == self.flash.generation()
            && snap.boot_epoch() == self.boot_epoch
    }

    /// Snapshot-restore entry point: rebuild the core from the (still
    /// trusted) flash image without clearing RAM and without paying the
    /// reset latency — the debug-port equivalent of writing the register
    /// file and jumping to the reset vector. Peripherals are quiesced
    /// exactly as a reset would leave them. Does *not* bump the boot
    /// epoch: RAM keeps its contents and the dirty bitmap its meaning.
    pub fn debug_restore_core(&mut self) -> Result<(), HalError> {
        if self.core_killed || self.browned_out() {
            return Err(self.bad_state("restore core"));
        }
        self.bus.uart.reset();
        self.bus.pending_irqs.clear();
        self.bus.mmio.reset();
        self.bus.trace.quiesce();
        self.last_fault = None;
        match (self.loader)(&self.flash, &self.board) {
            Ok(mut fw) => {
                fw.on_reset(&mut self.bus);
                self.pc = fw.symbols().lookup("reset_vector").unwrap_or(0);
                self.firmware = Some(fw);
                self.state = BootState::Running;
                Ok(())
            }
            Err(e) => {
                self.firmware = None;
                self.state = BootState::Dead(e.to_string());
                Err(HalError::BootFailure(e.to_string()))
            }
        }
    }

    /// Host/test-side delta restore: write every dirty page back from
    /// the snapshot, then restore the core. Returns the number of pages
    /// written. The campaign path goes through the debug transport
    /// instead, which ships the same pages as one vectored transaction
    /// and meters the wire; the state transitions are identical.
    pub fn restore_snapshot(&mut self, snap: &Snapshot) -> Result<usize, HalError> {
        if !self.snapshot_valid(snap) {
            return Err(self.bad_state("restore snapshot"));
        }
        let pages = self.bus.ram.dirty_pages();
        for &p in &pages {
            self.bus.ram.write(snap.page_addr(p), snap.page(p))?;
        }
        self.debug_restore_core()?;
        self.bus.trace.set_enabled(snap.trace_enabled());
        Ok(pages.len())
    }

    /// Read the flash controller's mutation generation counter over the
    /// debug port (a register read on the flash controller; answers
    /// whenever the flash port does).
    pub fn debug_flash_generation(&mut self) -> Result<u64, HalError> {
        if !self.flash_port_available() {
            return Err(self.bad_state("flash generation"));
        }
        self.bus.charge_debug(cost::REG_READ);
        Ok(self.flash.generation())
    }

    /// Arm or disarm the hardware trace unit over the debug port. Like
    /// breakpoints, the latch lives in the debug power domain and
    /// survives target resets; the stream state does not.
    pub fn debug_trace_set_enabled(&mut self, on: bool) -> Result<(), HalError> {
        if self.is_dead() {
            return Err(self.bad_state("trace enable"));
        }
        self.bus.charge_debug(cost::BP_OP);
        self.bus.trace.set_enabled(on);
        Ok(())
    }

    /// Scalar peek of the trace unit's drain header (used, capacity,
    /// lost) without consuming the stream.
    pub fn debug_trace_header(&mut self) -> Result<[u8; TRACE_HEADER_BYTES], HalError> {
        if self.is_dead() {
            return Err(self.bad_state("trace header"));
        }
        self.bus
            .charge_debug(cost::MEM_BASE + (TRACE_HEADER_BYTES as u64 / 4) * cost::MEM_PER_WORD);
        Ok(self.bus.trace.header())
    }

    /// Destructive trace drain: header first, then exactly the live
    /// stream bytes — the dependent-read shape both wire modes share,
    /// so a scalar drain and a vectored `DrainTrace` return identical
    /// bytes. Charges per-word debug cycles without the access-port
    /// base charge; the caller accounts for its own wire framing.
    pub fn debug_drain_trace_batched(&mut self) -> Result<Vec<u8>, HalError> {
        if self.is_dead() {
            return Err(self.bad_state("drain trace"));
        }
        let header = self.bus.trace.header();
        let (stream, _lost) = self.bus.trace.drain();
        let mut buf = Vec::with_capacity(TRACE_HEADER_BYTES + stream.len());
        buf.extend_from_slice(&header);
        buf.extend_from_slice(&stream);
        self.bus
            .charge_debug((buf.len() as u64 / 4) * cost::MEM_PER_WORD);
        Ok(buf)
    }

    /// Power-rail sample as an external current probe sees it — works
    /// regardless of debug-link or core state (a dead core draws idle
    /// current). The paper's §6 names power signals as a complementary
    /// liveness channel; this is its substrate.
    pub fn power_sample(&self) -> f32 {
        if self.browned_out() {
            POWER_BROWNOUT_MW
        } else if self.is_dead() {
            POWER_IDLE_MW
        } else {
            self.power_mw
        }
    }

    /// Drain pending UART output (host side of the redirected log channel).
    pub fn drain_uart(&mut self) -> Vec<u8> {
        self.bus.uart.drain()
    }

    fn bad_state(&self, op: &'static str) -> HalError {
        HalError::BadMachineState {
            op,
            state: format!("{:?}", self.state),
        }
    }
}

/// Deterministic binary line noise for an injected `UartGarbage` burst:
/// mostly high-bit bytes (never printable crash-signature text) with a
/// terminating newline so the burst cannot glue itself onto a real
/// banner line forever.
/// Telemetry counter key for an applied core fault. A match (rather than
/// formatting `hal.fault.{label}`) because counters key on `&'static str`.
fn fault_counter_key(f: &InjectedFault) -> &'static str {
    match f {
        InjectedFault::FlashBitFlip { .. } => "hal.fault.flash_bit_flip",
        InjectedFault::FreezeFirmware => "hal.fault.freeze_firmware",
        InjectedFault::KillCore => "hal.fault.kill_core",
        InjectedFault::DropLink { .. } => "hal.fault.drop_link",
        InjectedFault::FlakyLink { .. } => "hal.fault.flaky_link",
        InjectedFault::Brownout { .. } => "hal.fault.brownout",
        InjectedFault::UartGarbage => "hal.fault.uart_garbage",
    }
}

fn uart_noise(seed: u64) -> Vec<u8> {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(48);
    for _ in 0..47 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push(0x80 | (x as u8 & 0x7f));
    }
    out.push(b'\n');
    out
}

/// Idle/dead draw in milliwatts.
pub const POWER_IDLE_MW: f32 = 1.2;
/// Draw while the supply rail sags in a brownout.
pub const POWER_BROWNOUT_MW: f32 = 0.3;
/// Base draw of a core doing varied work.
pub const POWER_ACTIVE_MW: f32 = 18.0;
/// Flat draw of a tight spin loop.
pub const POWER_PLATEAU_MW: f32 = 24.0;
/// Brief draw while taking an exception.
pub const POWER_SPIKE_MW: f32 = 45.0;

/// Cycle costs of machine-level operations.
pub mod cost {
    /// Warm/cold reset latency.
    pub const RESET: u64 = 2_000;
    /// Fixed cost of any debug memory transaction.
    pub const MEM_BASE: u64 = 4;
    /// Additional cost per 32-bit word transferred.
    pub const MEM_PER_WORD: u64 = 1;
    /// Cost of a register (PC) read.
    pub const REG_READ: u64 = 2;
    /// Cost of installing/removing a breakpoint.
    pub const BP_OP: u64 = 2;
    /// Base cost of a flash programming session.
    pub const FLASH_BASE: u64 = 3_000;
    /// Additional cost per 64 bytes programmed.
    pub const FLASH_PER_64B: u64 = 4;
    /// Base cost of a target-side verify (CRC) pass.
    pub const VERIFY_BASE: u64 = 200;
    /// Verify cost per KiB checked.
    pub const VERIFY_PER_KB: u64 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::BoardCatalog;
    use crate::firmware::testfw::CountingFirmware;

    fn counting_machine() -> Machine {
        let loader: FirmwareLoader = Box::new(|flash, _board| {
            // Image validity check: kernel partition must start with magic.
            let kernel = flash.read_partition("kernel")?;
            if &kernel[..4] != b"IMG!" {
                return Err(HalError::BootFailure("bad magic".into()));
            }
            Ok(Box::new(CountingFirmware::new(0x0800_0000)))
        });
        let mut m = Machine::new(BoardCatalog::stm32f4_disco(), loader);
        m.reflash_partition("kernel", b"IMG!payload").unwrap();
        m
    }

    #[test]
    fn boot_runs_firmware() {
        let mut m = counting_machine();
        m.reset();
        assert_eq!(*m.state(), BootState::Running);
        assert_eq!(m.run(100), RunExit::BudgetExhausted);
        // Firmware wrote its step count at RAM base.
        let base = m.bus().ram.base();
        let steps = m
            .bus()
            .ram
            .read_u32(base, crate::arch::Endianness::Little)
            .unwrap();
        assert!(steps > 0);
    }

    #[test]
    fn bad_image_is_boot_failure() {
        let loader: FirmwareLoader = Box::new(|_, _| Err(HalError::BootFailure("checksum".into())));
        let mut m = Machine::new(BoardCatalog::stm32f4_disco(), loader);
        m.reset();
        assert!(matches!(m.state(), BootState::Dead(_)));
        assert!(m.debug_pc().is_err());
        assert_eq!(m.run(100), RunExit::CoreDead);
    }

    #[test]
    fn breakpoint_halts_at_exact_pc() {
        let mut m = counting_machine();
        m.reset();
        // CountingFirmware visits base+4, base+8, ...
        m.set_breakpoint(0x0800_0000 + 3 * 4).unwrap();
        match m.run(1_000) {
            RunExit::Breakpoint { pc } => assert_eq!(pc, 0x0800_000c),
            other => panic!("expected breakpoint, got {other:?}"),
        }
        assert!(m.is_halted());
        // Resume continues past it.
        m.debug_resume().unwrap();
        assert_eq!(m.run(10), RunExit::BudgetExhausted);
        assert!(m.pc() > 0x0800_000c);
    }

    #[test]
    fn breakpoint_limit_enforced() {
        let mut m = counting_machine();
        m.reset();
        let max = m.board().max_breakpoints;
        for i in 0..max {
            m.set_breakpoint(0x1000 + i as u32).unwrap();
        }
        assert!(matches!(
            m.set_breakpoint(0xffff),
            Err(HalError::BreakpointLimit { .. })
        ));
        // Duplicates do not consume slots.
        m.set_breakpoint(0x1000).unwrap();
        m.clear_breakpoint(0x1000);
        m.set_breakpoint(0xffff).unwrap();
    }

    #[test]
    fn freeze_injection_stalls_pc() {
        let mut m = counting_machine();
        m.set_fault_plan(FaultPlan::none().at(0, InjectedFault::FreezeFirmware));
        m.reset();
        m.run(50);
        let pc1 = m.debug_pc().unwrap();
        m.run(50);
        let pc2 = m.debug_pc().unwrap();
        assert_eq!(pc1, pc2, "frozen firmware must not move the PC");
    }

    #[test]
    fn kill_core_requires_reflash_not_reboot() {
        let mut m = counting_machine();
        m.set_fault_plan(FaultPlan::none().at(10, InjectedFault::KillCore));
        m.reset();
        assert_eq!(m.run(1_000), RunExit::CoreDead);
        assert!(m.debug_pc().is_err());
        // A plain reboot does NOT revive it.
        m.reset();
        assert!(m.is_dead());
        // Reflash + reboot does.
        m.reflash_partition("kernel", b"IMG!payload-v2").unwrap();
        m.reset();
        assert_eq!(*m.state(), BootState::Running);
        assert!(m.debug_pc().is_ok());
    }

    #[test]
    fn brownout_suspends_core_until_window_passes() {
        let mut m = counting_machine();
        m.reset();
        // Long enough that a reset (2k cycles) cannot simply outwait it.
        m.set_fault_plan(FaultPlan::none().at(10, InjectedFault::Brownout { cycles: 20_000 }));
        assert_eq!(m.run(1_000), RunExit::CoreDead);
        assert!(m.is_dead());
        assert!(m.debug_pc().is_err());
        // Reset and reflash do not shorten the sag.
        m.reset();
        assert!(m.is_dead());
        assert!(m.reflash_partition("kernel", b"IMG!payload").is_err());
        // Waiting it out does.
        m.bus_mut().charge(25_000);
        assert!(!m.is_dead());
        assert!(m.debug_pc().is_ok());
        assert_eq!(m.run(100), RunExit::BudgetExhausted);
    }

    #[test]
    fn power_cycle_releases_kill_latch_without_reflash() {
        let mut m = counting_machine();
        m.set_fault_plan(FaultPlan::none().at(10, InjectedFault::KillCore));
        m.reset();
        assert_eq!(m.run(1_000), RunExit::CoreDead);
        // A plain reboot does NOT revive it…
        m.reset();
        assert!(m.is_dead());
        // …but a power-on reset does, with the image untouched.
        m.power_cycle(100);
        assert_eq!(*m.state(), BootState::Running);
        assert!(m.debug_pc().is_ok());
        assert_eq!(m.power_cycles(), 1);
    }

    #[test]
    fn uart_garbage_is_binary_noise_not_a_banner() {
        let mut m = counting_machine();
        m.reset();
        m.set_fault_plan(FaultPlan::none().at(5, InjectedFault::UartGarbage));
        m.run(100);
        let noise = m.drain_uart();
        assert!(!noise.is_empty());
        assert_eq!(*noise.last().unwrap(), b'\n');
        // Nothing but high-bit bytes before the newline: can never spell
        // a crash signature.
        assert!(noise[..noise.len() - 1].iter().all(|&b| b >= 0x80));
    }

    #[test]
    fn firmware_fault_is_recorded_and_symbolized() {
        let loader: FirmwareLoader = Box::new(|_, _| {
            let mut fw = CountingFirmware::new(0x0800_0000);
            fw.fault_at_step = Some(2);
            Ok(Box::new(fw))
        });
        let mut m = Machine::new(BoardCatalog::stm32f4_disco(), loader);
        m.reset();
        m.run(100);
        let fault = m.last_fault().expect("fault recorded");
        assert_eq!(fault.kind, FaultKind::Panic);
        assert_eq!(fault.pc, 0x0fff_0000);
        assert_eq!(m.symbolize(0x0fff_0000).unwrap().0, "handle_exception");
    }

    #[test]
    fn breakpoint_on_exception_handler_halts() {
        let loader: FirmwareLoader = Box::new(|_, _| {
            let mut fw = CountingFirmware::new(0x0800_0000);
            fw.fault_at_step = Some(1);
            Ok(Box::new(fw))
        });
        let mut m = Machine::new(BoardCatalog::stm32f4_disco(), loader);
        m.reset();
        m.set_breakpoint(0x0fff_0000).unwrap();
        match m.run(1_000) {
            RunExit::Breakpoint { pc } => assert_eq!(pc, 0x0fff_0000),
            other => panic!("expected halt at exception handler, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_fires_and_resets() {
        let mut m = counting_machine();
        m.reset();
        let now = m.bus().now();
        *m.watchdog_mut() = HardwareWatchdog::new(20);
        m.watchdog_mut().arm(now);
        assert_eq!(m.run(10_000), RunExit::WatchdogReset);
        assert!(m.reset_count() >= 2);
    }

    #[test]
    fn debug_ops_charge_cycles() {
        let mut m = counting_machine();
        m.reset();
        let before = m.bus().now();
        let mut buf = [0u8; 64];
        m.debug_read(m.board().ram_base, &mut buf).unwrap();
        assert!(m.bus().now() > before);
    }

    #[test]
    fn uart_drains_through_machine() {
        let mut m = counting_machine();
        m.reset();
        m.bus_mut().uart.tx_line("hello from fw");
        assert_eq!(m.drain_uart(), b"hello from fw\n");
    }

    #[test]
    fn snapshot_roundtrip_restores_ram_and_restarts_core() {
        let mut m = counting_machine();
        m.reset();
        m.run(100);
        let base = m.bus().ram.base();
        let snap = m.capture_snapshot().unwrap();
        let at_capture = m
            .bus()
            .ram
            .read_u32(base, crate::arch::Endianness::Little)
            .unwrap();
        // Keep running: RAM diverges from the snapshot.
        m.run(100);
        assert_ne!(
            m.bus()
                .ram
                .read_u32(base, crate::arch::Endianness::Little)
                .unwrap(),
            at_capture
        );
        let pages = m.restore_snapshot(&snap).unwrap();
        assert!(pages > 0);
        assert_eq!(*m.state(), BootState::Running);
        // The counting firmware's on_reset zeroes its step counter, so
        // the restored board behaves like a fresh boot over trusted RAM.
        assert_eq!(m.run(100), RunExit::BudgetExhausted);
    }

    #[test]
    fn capture_restore_capture_is_idempotent() {
        let mut m = counting_machine();
        m.reset();
        m.run(60);
        let s1 = m.capture_snapshot().unwrap();
        m.run(60);
        m.restore_snapshot(&s1).unwrap();
        // Re-running the deterministic firmware from the restored state
        // and re-capturing after the same number of cycles reproduces the
        // same RAM image bit for bit.
        m.run(60);
        let s2 = m.capture_snapshot().unwrap();
        assert_eq!(s1.ram_image(), s2.ram_image());
        assert_eq!(s1.flash_generation(), s2.flash_generation());
    }

    #[test]
    fn restore_only_touches_dirty_pages() {
        let mut m = counting_machine();
        m.reset();
        m.run(50);
        let snap = m.capture_snapshot().unwrap();
        assert_eq!(m.dirty_page_count(), 0);
        // One step dirties only the firmware's counter page.
        m.run(4);
        let dirty = m.dirty_page_count();
        assert!(dirty >= 1);
        let written = m.restore_snapshot(&snap).unwrap();
        assert_eq!(written, dirty);
        assert!(written < m.bus().ram.page_count());
    }

    #[test]
    fn seeded_flash_bit_flip_invalidates_snapshot() {
        let mut m = counting_machine();
        m.reset();
        m.run(20);
        let snap = m.capture_snapshot().unwrap();
        assert!(m.snapshot_valid(&snap));
        // A scheduled FlashBitFlip fault fires mid-run and bumps the
        // generation counter: the snapshot becomes suspect.
        m.set_fault_plan(
            FaultPlan::none().at(5, InjectedFault::FlashBitFlip { offset: 8, bit: 1 }),
        );
        m.run(50);
        assert!(!m.snapshot_valid(&snap));
        assert!(m.restore_snapshot(&snap).is_err());
    }

    #[test]
    fn reset_rebases_the_epoch_and_invalidates_snapshot() {
        let mut m = counting_machine();
        m.reset();
        m.run(20);
        let snap = m.capture_snapshot().unwrap();
        m.reset();
        assert!(!m.snapshot_valid(&snap));
        // A fresh capture in the new epoch works again.
        m.run(20);
        let snap2 = m.capture_snapshot().unwrap();
        assert!(m.snapshot_valid(&snap2));
    }

    #[test]
    fn dead_core_refuses_capture_and_restore() {
        let mut m = counting_machine();
        m.reset();
        m.run(20);
        let snap = m.capture_snapshot().unwrap();
        m.set_fault_plan(FaultPlan::none().at(1, InjectedFault::KillCore));
        m.run(50);
        assert!(!m.snapshot_valid(&snap));
        assert!(m.restore_snapshot(&snap).is_err());
        assert!(m.capture_snapshot().is_err());
    }

    /// IRQ delivery across snapshot restore: requests pending at restore
    /// time are quiesced (a restore leaves peripherals exactly as a reset
    /// would), and lines raised *after* the restore deliver normally with
    /// their payloads intact.
    #[test]
    fn snapshot_restore_quiesces_pending_irqs_then_delivers_fresh_ones() {
        let mut m = counting_machine();
        m.reset();
        m.run(50);
        let snap = m.capture_snapshot().unwrap();
        m.bus_mut().pending_irqs.push_back(crate::bus::IrqRequest {
            line: crate::bus::irq::SERIAL_RX,
            payload: b"stale".to_vec(),
        });
        m.bus_mut().mmio.load_stream(&[0x7f]);
        m.restore_snapshot(&snap).unwrap();
        assert!(
            m.bus().pending_irqs.is_empty(),
            "restore must quiesce pending IRQs"
        );
        assert_eq!(m.bus().mmio.stream_remaining(), 0);
        // Fresh raises after the restore flow through untouched.
        m.bus_mut().pending_irqs.push_back(crate::bus::IrqRequest {
            line: crate::bus::irq::GPIO,
            payload: Vec::new(),
        });
        m.bus_mut().mmio_write(
            crate::mmio::periph::SPI,
            crate::mmio::reg::CTRL,
            crate::mmio::CTRL_START,
        );
        let lines: Vec<u8> = m.bus().pending_irqs.iter().map(|r| r.line).collect();
        assert_eq!(lines, vec![crate::bus::irq::GPIO, crate::bus::irq::SPI]);
    }

    #[test]
    fn flash_generation_readable_over_debug_port() {
        let mut m = counting_machine();
        m.reset();
        let g = m.debug_flash_generation().unwrap();
        m.flash_mut().flip_bit(4, 0).unwrap();
        assert_eq!(m.debug_flash_generation().unwrap(), g + 1);
    }
}
