//! Board descriptors and the catalog of simulated development boards.
//!
//! Each entry mirrors a class of hardware the paper (or one of its
//! baselines) runs on. The `has_peripheral_emulator` flag encodes the
//! paper's central motivation: boards like the STM32H745 have no
//! peripheral-accurate emulator, so emulation-based fuzzers (Tardis,
//! Gustave) simply cannot target them, while debug-port fuzzers can.

use crate::arch::{Arch, DebugIface, Endianness};
use crate::flash::{Partition, PartitionTable};

/// Static description of a simulated development board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoardSpec {
    /// Board name, e.g. `"esp32-devkitc"`.
    pub name: &'static str,
    /// Core architecture.
    pub arch: Arch,
    /// Core byte order.
    pub endianness: Endianness,
    /// RAM window base address.
    pub ram_base: u32,
    /// RAM size in bytes.
    pub ram_size: usize,
    /// Flash size in bytes.
    pub flash_size: u32,
    /// On-chip debug interface.
    pub debug_iface: DebugIface,
    /// Number of hardware breakpoint comparators.
    pub max_breakpoints: usize,
    /// Whether a peripheral-accurate emulator exists for this board —
    /// gates emulation-based baselines.
    pub has_peripheral_emulator: bool,
    /// Whether this "board" IS an emulator instance (QEMU machine) rather
    /// than silicon. Emulated boards have no ambient peripheral activity:
    /// no spontaneous timer/GPIO interrupts reach the firmware.
    pub is_emulated: bool,
    /// Nominal core clock in MHz (report metadata only).
    pub cpu_mhz: u32,
}

impl BoardSpec {
    /// The default three-component partition layout used by our OS images:
    /// bootloader, kernel (bulk of flash) and a small filesystem.
    pub fn default_partitions(&self) -> PartitionTable {
        let boot = 0x1_0000u32.min(self.flash_size / 16).max(0x1000);
        let fs = 0x2_0000u32.min(self.flash_size / 8).max(0x1000);
        let kernel = self.flash_size - boot - fs;
        PartitionTable::new(
            vec![
                Partition::new("bootloader", 0, boot),
                Partition::new("kernel", boot, kernel),
                Partition::new("fs", boot + kernel, fs),
            ],
            self.flash_size,
        )
        .expect("default partition layout is valid by construction")
    }
}

/// The catalog of boards modelled by the reproduction.
pub struct BoardCatalog;

impl BoardCatalog {
    /// ESP32 devkit: Xtensa, JTAG, 520 KiB SRAM, 4 MiB flash. The board the
    /// paper uses for the GDBFuzz comparison (§5.4.2). QEMU can emulate it.
    /// The Xtensa core has two hardware comparators, but OpenOCD extends
    /// them with flash-patched software breakpoints; the effective budget
    /// modelled here is what an OpenOCD session offers.
    pub fn esp32_devkit() -> BoardSpec {
        BoardSpec {
            name: "esp32-devkitc",
            arch: Arch::Xtensa,
            endianness: Endianness::Little,
            ram_base: 0x3ffb_0000,
            ram_size: 520 * 1024,
            flash_size: 4 * 1024 * 1024,
            debug_iface: DebugIface::Jtag,
            max_breakpoints: 8,
            has_peripheral_emulator: true,
            is_emulated: false,
            cpu_mhz: 240,
        }
    }

    /// ESP32-C3 devkit: RISC-V variant of the ESP32 line.
    pub fn esp32_c3() -> BoardSpec {
        BoardSpec {
            name: "esp32-c3-devkitm",
            arch: Arch::RiscV,
            endianness: Endianness::Little,
            ram_base: 0x3fc8_0000,
            ram_size: 400 * 1024,
            flash_size: 4 * 1024 * 1024,
            debug_iface: DebugIface::Jtag,
            max_breakpoints: 8,
            has_peripheral_emulator: true,
            is_emulated: false,
            cpu_mhz: 160,
        }
    }

    /// STM32F4 Discovery: Cortex-M4, SWD, QEMU support exists. Flash
    /// includes the memory-mapped external QSPI NOR the full OS images
    /// live in.
    pub fn stm32f4_disco() -> BoardSpec {
        BoardSpec {
            name: "stm32f4-discovery",
            arch: Arch::Arm,
            endianness: Endianness::Little,
            ram_base: 0x2000_0000,
            ram_size: 192 * 1024,
            flash_size: 4 * 1024 * 1024,
            debug_iface: DebugIface::Swd,
            max_breakpoints: 6,
            has_peripheral_emulator: true,
            is_emulated: false,
            cpu_mhz: 168,
        }
    }

    /// STM32H745 Nucleo: the paper's flagship "no emulator exists" board
    /// (industrial control / robotics, §1). Emulation-based fuzzers cannot
    /// target it.
    pub fn stm32h745_nucleo() -> BoardSpec {
        BoardSpec {
            name: "stm32h745-nucleo",
            arch: Arch::Arm,
            endianness: Endianness::Little,
            ram_base: 0x2400_0000,
            ram_size: 1024 * 1024,
            flash_size: 4 * 1024 * 1024,
            debug_iface: DebugIface::Swd,
            max_breakpoints: 8,
            has_peripheral_emulator: false,
            is_emulated: false,
            cpu_mhz: 480,
        }
    }

    /// HiFive-style RISC-V devkit with JTAG.
    pub fn hifive_riscv() -> BoardSpec {
        BoardSpec {
            name: "hifive-rv32",
            arch: Arch::RiscV,
            endianness: Endianness::Little,
            ram_base: 0x8000_0000,
            ram_size: 256 * 1024,
            flash_size: 2 * 1024 * 1024,
            debug_iface: DebugIface::Jtag,
            max_breakpoints: 4,
            has_peripheral_emulator: true,
            is_emulated: false,
            cpu_mhz: 320,
        }
    }

    /// Big-endian PowerPC evaluation board (SHIFT territory in Table 1).
    pub fn ppc_eval() -> BoardSpec {
        BoardSpec {
            name: "ppc-eval",
            arch: Arch::PowerPc,
            endianness: Endianness::Big,
            ram_base: 0x0010_0000,
            ram_size: 512 * 1024,
            flash_size: 4 * 1024 * 1024,
            debug_iface: DebugIface::Jtag,
            max_breakpoints: 4,
            has_peripheral_emulator: false,
            is_emulated: false,
            cpu_mhz: 400,
        }
    }

    /// Big-endian MIPS evaluation board (SHIFT territory in Table 1).
    pub fn mips_eval() -> BoardSpec {
        BoardSpec {
            name: "mips-eval",
            arch: Arch::Mips,
            endianness: Endianness::Big,
            ram_base: 0x8000_0000,
            ram_size: 512 * 1024,
            flash_size: 4 * 1024 * 1024,
            debug_iface: DebugIface::Jtag,
            max_breakpoints: 4,
            has_peripheral_emulator: false,
            is_emulated: false,
            cpu_mhz: 500,
        }
    }

    /// MSP430 LaunchPad (GDBFuzz territory in Table 1). Tiny RAM.
    pub fn msp430_launchpad() -> BoardSpec {
        BoardSpec {
            name: "msp430-launchpad",
            arch: Arch::Msp430,
            endianness: Endianness::Little,
            ram_base: 0x0000_1c00,
            ram_size: 8 * 1024,
            flash_size: 256 * 1024,
            debug_iface: DebugIface::Jtag,
            max_breakpoints: 2,
            has_peripheral_emulator: false,
            is_emulated: false,
            cpu_mhz: 16,
        }
    }

    /// Generic QEMU `virt` ARM machine — the board Tardis-style emulation
    /// fuzzing actually runs on.
    pub fn qemu_virt_arm() -> BoardSpec {
        BoardSpec {
            name: "qemu-virt-arm",
            arch: Arch::Arm,
            endianness: Endianness::Little,
            ram_base: 0x4000_0000,
            ram_size: 8 * 1024 * 1024,
            flash_size: 16 * 1024 * 1024,
            debug_iface: DebugIface::Jtag,
            max_breakpoints: 16,
            has_peripheral_emulator: true,
            is_emulated: true,
            cpu_mhz: 1000,
        }
    }

    /// All catalogued boards.
    pub fn all() -> Vec<BoardSpec> {
        vec![
            Self::esp32_devkit(),
            Self::esp32_c3(),
            Self::stm32f4_disco(),
            Self::stm32h745_nucleo(),
            Self::hifive_riscv(),
            Self::ppc_eval(),
            Self::mips_eval(),
            Self::msp430_launchpad(),
            Self::qemu_virt_arm(),
        ]
    }

    /// Look a board up by name.
    pub fn by_name(name: &str) -> Option<BoardSpec> {
        Self::all().into_iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let all = BoardCatalog::all();
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn default_partitions_are_valid_for_every_board() {
        for b in BoardCatalog::all() {
            let t = b.default_partitions();
            assert_eq!(t.len(), 3, "{}", b.name);
            assert!(t.get("kernel").unwrap().size > t.get("bootloader").unwrap().size);
        }
    }

    #[test]
    fn h745_has_no_emulator() {
        assert!(!BoardCatalog::stm32h745_nucleo().has_peripheral_emulator);
        assert!(BoardCatalog::qemu_virt_arm().has_peripheral_emulator);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(
            BoardCatalog::by_name("esp32-devkitc").unwrap().arch,
            Arch::Xtensa
        );
        assert!(BoardCatalog::by_name("nonexistent").is_none());
    }

    #[test]
    fn big_endian_boards_exist() {
        assert_eq!(BoardCatalog::ppc_eval().endianness, Endianness::Big);
        assert_eq!(BoardCatalog::mips_eval().endianness, Endianness::Big);
    }
}
