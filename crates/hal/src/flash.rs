//! Simulated NOR flash with a partition table.
//!
//! Embedded OS images are composed of several components (bootloader,
//! kernel, filesystem), each flashed at its own offset. EOF's state
//! restoration (paper §4.4.2, Algorithm 1 `StateRestoration`) extracts the
//! partition table from the build configuration and reflashes every
//! partition over the debug interface when the target enters an
//! unrecoverable state. This module models the flash array itself —
//! including NOR semantics (erase to `0xff`, writes can only clear bits)
//! and corruption, the failure mode that makes a plain reboot insufficient.

use crate::error::HalError;

/// Erased state of a NOR flash byte.
pub const ERASED: u8 = 0xff;

/// NOR sector size: the erase granularity the flash controller exposes.
/// Sector-delta reflash verifies and rewrites at this unit, so repairing
/// a flipped bit costs one sector's programming time, not a partition's.
pub const SECTOR_SIZE: usize = 4096;

/// One entry of a partition table: a named, contiguous flash region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Component name (e.g. `"bootloader"`, `"kernel"`, `"fs"`).
    pub name: String,
    /// Byte offset of the partition within flash.
    pub offset: u32,
    /// Size of the partition in bytes.
    pub size: u32,
}

impl Partition {
    /// Construct a partition entry.
    pub fn new(name: impl Into<String>, offset: u32, size: u32) -> Self {
        Partition {
            name: name.into(),
            offset,
            size,
        }
    }

    /// Exclusive end offset.
    pub fn end(&self) -> u32 {
        self.offset + self.size
    }
}

/// An ordered set of non-overlapping partitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionTable {
    parts: Vec<Partition>,
}

impl PartitionTable {
    /// Build a table, validating that partitions are in-range for a flash of
    /// `flash_size` bytes and mutually non-overlapping.
    pub fn new(mut parts: Vec<Partition>, flash_size: u32) -> Result<Self, HalError> {
        parts.sort_by_key(|p| p.offset);
        for w in parts.windows(2) {
            if w[0].end() > w[1].offset {
                return Err(HalError::BadPartitionLayout(format!(
                    "partition {:?} overlaps {:?}",
                    w[0].name, w[1].name
                )));
            }
        }
        if let Some(last) = parts.last() {
            if last.end() > flash_size {
                return Err(HalError::BadPartitionLayout(format!(
                    "partition {:?} ends at {:#x}, past flash size {:#x}",
                    last.name,
                    last.end(),
                    flash_size
                )));
            }
        }
        for p in &parts {
            if p.size == 0 {
                return Err(HalError::BadPartitionLayout(format!(
                    "partition {:?} has zero size",
                    p.name
                )));
            }
        }
        Ok(PartitionTable { parts })
    }

    /// Look up a partition by name.
    pub fn get(&self, name: &str) -> Result<&Partition, HalError> {
        self.parts
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| HalError::UnknownPartition(name.to_string()))
    }

    /// Iterate over partitions in offset order.
    pub fn iter(&self) -> impl Iterator<Item = &Partition> {
        self.parts.iter()
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// Simulated NOR flash array.
#[derive(Debug, Clone)]
pub struct Flash {
    bytes: Vec<u8>,
    table: PartitionTable,
    /// Count of program/erase operations, for wear statistics in reports.
    program_ops: u64,
    /// Bumped on every mutation (erase, program, bit flip). A snapshot
    /// records this counter at capture; a mismatch at restore time means
    /// flash changed underneath the snapshot and it cannot be trusted.
    generation: u64,
}

impl Flash {
    /// Create an erased flash of `size` bytes with the given partition table.
    pub fn new(size: usize, table: PartitionTable) -> Self {
        Flash {
            bytes: vec![ERASED; size],
            table,
            program_ops: 0,
            generation: 0,
        }
    }

    /// Flash size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// The partition table.
    pub fn table(&self) -> &PartitionTable {
        &self.table
    }

    /// Total program/erase operations performed since power-on.
    pub fn program_ops(&self) -> u64 {
        self.program_ops
    }

    /// Mutation generation counter: increments on every erase, program
    /// or injected bit flip. Never decreases.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn check(&self, offset: u32, len: usize) -> Result<usize, HalError> {
        let off = offset as usize;
        if off
            .checked_add(len)
            .is_none_or(|end| end > self.bytes.len())
        {
            return Err(HalError::OutOfBoundsFlash {
                offset,
                len,
                flash_size: self.bytes.len(),
            });
        }
        Ok(off)
    }

    /// Read `buf.len()` bytes at `offset`.
    pub fn read(&self, offset: u32, buf: &mut [u8]) -> Result<(), HalError> {
        let off = self.check(offset, buf.len())?;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        Ok(())
    }

    /// Borrow a flash region as a slice.
    pub fn slice(&self, offset: u32, len: usize) -> Result<&[u8], HalError> {
        let off = self.check(offset, len)?;
        Ok(&self.bytes[off..off + len])
    }

    /// Erase a region back to `0xff` (required before programming).
    pub fn erase(&mut self, offset: u32, len: usize) -> Result<(), HalError> {
        let off = self.check(offset, len)?;
        self.bytes[off..off + len].fill(ERASED);
        self.program_ops += 1;
        self.generation += 1;
        Ok(())
    }

    /// Program a region. NOR semantics: every target byte must be erased.
    pub fn program(&mut self, offset: u32, data: &[u8]) -> Result<(), HalError> {
        let off = self.check(offset, data.len())?;
        if let Some(i) = self.bytes[off..off + data.len()]
            .iter()
            .position(|&b| b != ERASED)
        {
            return Err(HalError::FlashNotErased {
                offset: offset + i as u32,
            });
        }
        self.bytes[off..off + data.len()].copy_from_slice(data);
        self.program_ops += 1;
        self.generation += 1;
        Ok(())
    }

    /// Erase-then-program convenience used by the reflash path.
    pub fn reprogram(&mut self, offset: u32, data: &[u8]) -> Result<(), HalError> {
        self.erase(offset, data.len())?;
        self.program(offset, data)
    }

    /// Write a whole image into a named partition (truncating check).
    pub fn flash_partition(&mut self, name: &str, data: &[u8]) -> Result<(), HalError> {
        let part = self.table.get(name)?.clone();
        if data.len() > part.size as usize {
            return Err(HalError::BadPartitionLayout(format!(
                "image of {} bytes does not fit partition {:?} ({} bytes)",
                data.len(),
                part.name,
                part.size
            )));
        }
        self.erase(part.offset, part.size as usize)?;
        self.program(part.offset, data)
    }

    /// Read back the full contents of a named partition.
    pub fn read_partition(&self, name: &str) -> Result<Vec<u8>, HalError> {
        let part = self.table.get(name)?;
        Ok(self.bytes[part.offset as usize..part.end() as usize].to_vec())
    }

    /// Flip a single bit — the corruption primitive used by fault injection
    /// to model image damage that a reboot cannot fix.
    pub fn flip_bit(&mut self, offset: u32, bit: u8) -> Result<(), HalError> {
        let off = self.check(offset, 1)?;
        self.bytes[off] ^= 1 << (bit & 7);
        self.generation += 1;
        Ok(())
    }

    /// FNV-1a checksum of a region, used by boot-time image validation.
    pub fn checksum(&self, offset: u32, len: usize) -> Result<u64, HalError> {
        let off = self.check(offset, len)?;
        Ok(fnv1a(&self.bytes[off..off + len]))
    }

    /// Per-sector checksums of a region, chunked at [`SECTOR_SIZE`]. The
    /// verify loop of sector-delta reflash: same pass over the same bytes
    /// as [`Flash::checksum`], reported at erase granularity so the host
    /// can localise damage.
    pub fn sector_checksums(&self, offset: u32, len: usize) -> Result<Vec<u64>, HalError> {
        let off = self.check(offset, len)?;
        Ok(sector_checksums_of(&self.bytes[off..off + len]))
    }
}

/// Per-sector FNV-1a checksums of a byte image, chunked at
/// [`SECTOR_SIZE`] (trailing partial sector hashed as-is). Shared by the
/// target-side verify loop and the host's golden-image bookkeeping so
/// both ends agree on the chunking rule.
pub fn sector_checksums_of(data: &[u8]) -> Vec<u64> {
    data.chunks(SECTOR_SIZE).map(fnv1a).collect()
}

/// 64-bit FNV-1a hash, the integrity primitive shared by image headers.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PartitionTable {
        PartitionTable::new(
            vec![
                Partition::new("bootloader", 0x0000, 0x1000),
                Partition::new("kernel", 0x1000, 0x8000),
                Partition::new("fs", 0x9000, 0x2000),
            ],
            0x10_0000,
        )
        .unwrap()
    }

    #[test]
    fn new_flash_is_erased() {
        let f = Flash::new(64, PartitionTable::default());
        assert!(f.slice(0, 64).unwrap().iter().all(|&b| b == ERASED));
    }

    #[test]
    fn overlapping_partitions_rejected() {
        let err = PartitionTable::new(
            vec![
                Partition::new("a", 0, 0x2000),
                Partition::new("b", 0x1000, 0x1000),
            ],
            0x10000,
        )
        .unwrap_err();
        assert!(matches!(err, HalError::BadPartitionLayout(_)));
    }

    #[test]
    fn partition_past_flash_end_rejected() {
        let err =
            PartitionTable::new(vec![Partition::new("a", 0xff00, 0x200)], 0x10000).unwrap_err();
        assert!(matches!(err, HalError::BadPartitionLayout(_)));
    }

    #[test]
    fn zero_size_partition_rejected() {
        let err = PartitionTable::new(vec![Partition::new("a", 0, 0)], 0x10000).unwrap_err();
        assert!(matches!(err, HalError::BadPartitionLayout(_)));
    }

    #[test]
    fn program_requires_erase() {
        let mut f = Flash::new(0x10_0000, table());
        f.program(0x1000, b"image").unwrap();
        // Second program to the same spot must fail (bits already cleared).
        let err = f.program(0x1000, b"image").unwrap_err();
        assert!(matches!(err, HalError::FlashNotErased { .. }));
        // After erase it works again.
        f.erase(0x1000, 5).unwrap();
        f.program(0x1000, b"image").unwrap();
    }

    #[test]
    fn flash_partition_roundtrip() {
        let mut f = Flash::new(0x10_0000, table());
        f.flash_partition("kernel", b"kernel-image").unwrap();
        let back = f.read_partition("kernel").unwrap();
        assert_eq!(&back[..12], b"kernel-image");
        assert!(back[12..].iter().all(|&b| b == ERASED));
    }

    #[test]
    fn oversized_image_rejected() {
        let mut f = Flash::new(0x10_0000, table());
        let img = vec![0u8; 0x2000];
        assert!(f.flash_partition("bootloader", &img).is_err());
    }

    #[test]
    fn unknown_partition() {
        let f = Flash::new(0x10_0000, table());
        assert!(matches!(
            f.read_partition("nvram").unwrap_err(),
            HalError::UnknownPartition(_)
        ));
    }

    #[test]
    fn bit_flip_changes_checksum() {
        let mut f = Flash::new(0x10_0000, table());
        f.flash_partition("kernel", b"kernel-image").unwrap();
        let before = f.checksum(0x1000, 0x8000).unwrap();
        f.flip_bit(0x1004, 3).unwrap();
        let after = f.checksum(0x1000, 0x8000).unwrap();
        assert_ne!(before, after);
        // Reflashing restores the checksum: the reboot-insufficient /
        // reflash-sufficient property Algorithm 1 relies on.
        f.flash_partition("kernel", b"kernel-image").unwrap();
        assert_eq!(f.checksum(0x1000, 0x8000).unwrap(), before);
    }

    #[test]
    fn generation_counter_tracks_every_mutation() {
        let mut f = Flash::new(0x10_0000, table());
        assert_eq!(f.generation(), 0);
        f.erase(0x1000, 0x100).unwrap();
        assert_eq!(f.generation(), 1);
        f.program(0x1000, b"image").unwrap();
        assert_eq!(f.generation(), 2);
        // The injected-fault corruption primitive also bumps it — this is
        // what invalidates a snapshot after a flash_bit_flip fault.
        f.flip_bit(0x1002, 4).unwrap();
        assert_eq!(f.generation(), 3);
        // Reads never bump it.
        let _ = f.checksum(0x1000, 0x100).unwrap();
        let _ = f.slice(0x1000, 8).unwrap();
        assert_eq!(f.generation(), 3);
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn reprogram_convenience() {
        let mut f = Flash::new(0x10_0000, table());
        f.reprogram(0x9000, b"fs-v1").unwrap();
        f.reprogram(0x9000, b"fs-v2").unwrap();
        assert_eq!(f.slice(0x9000, 5).unwrap(), b"fs-v2");
    }
}
