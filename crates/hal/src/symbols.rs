//! Firmware symbol tables.
//!
//! EOF sets hardware breakpoints at *named* locations in the agent and in
//! the OS's exception handlers (`executor_main`, `execute_one`,
//! `panic_handler`, `common_exception`, …). On real hardware those names
//! come from the ELF symbol table; here each firmware publishes a
//! [`SymbolTable`] mapping symbol names to the virtual addresses its step
//! function reports as the program counter.

use std::collections::BTreeMap;

/// Map from symbol name to virtual address.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    by_name: BTreeMap<String, u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a table from `(name, addr)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, u32)>,
        S: Into<String>,
    {
        SymbolTable {
            by_name: pairs.into_iter().map(|(n, a)| (n.into(), a)).collect(),
        }
    }

    /// Register a symbol. Later insertions of the same name win, matching
    /// link order semantics.
    pub fn insert(&mut self, name: impl Into<String>, addr: u32) {
        self.by_name.insert(name.into(), addr);
    }

    /// Address of a symbol, if present.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Reverse lookup: symbol whose address equals `addr` exactly.
    pub fn name_at(&self, addr: u32) -> Option<&str> {
        self.by_name
            .iter()
            .find(|(_, &a)| a == addr)
            .map(|(n, _)| n.as_str())
    }

    /// Nearest symbol at or below `addr` — the classic "symbolise a PC"
    /// operation used when formatting backtraces.
    pub fn symbolize(&self, addr: u32) -> Option<(&str, u32)> {
        self.by_name
            .iter()
            .filter(|(_, &a)| a <= addr)
            .max_by_key(|(_, &a)| a)
            .map(|(n, &a)| (n.as_str(), addr - a))
    }

    /// Iterate over `(name, addr)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.by_name.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::from_pairs([
            ("executor_main", 0x0800_1000u32),
            ("read_prog", 0x0800_1100),
            ("execute_one", 0x0800_1200),
            ("handle_exception", 0x0800_1f00),
        ])
    }

    #[test]
    fn lookup_and_reverse() {
        let t = table();
        assert_eq!(t.lookup("execute_one"), Some(0x0800_1200));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.name_at(0x0800_1100), Some("read_prog"));
        assert_eq!(t.name_at(0x0800_1101), None);
    }

    #[test]
    fn symbolize_picks_nearest_below() {
        let t = table();
        assert_eq!(t.symbolize(0x0800_1234), Some(("execute_one", 0x34)));
        assert_eq!(t.symbolize(0x0800_0fff), None);
    }

    #[test]
    fn later_insert_wins() {
        let mut t = table();
        t.insert("execute_one", 0x0900_0000);
        assert_eq!(t.lookup("execute_one"), Some(0x0900_0000));
    }

    #[test]
    fn iter_is_name_ordered() {
        let t = table();
        let names: Vec<_> = t.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
