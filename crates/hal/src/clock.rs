//! Deterministic cycle clock.
//!
//! Every metered operation in the reproduction — firmware quanta, kernel
//! API work, coverage callbacks, debug-port transfers, reflash — charges
//! cycles to the machine's clock. Campaign budgets (the paper's 24-hour
//! runs) are expressed in simulated seconds, so coverage-over-time curves
//! and throughput numbers are bit-reproducible across hosts regardless of
//! wall-clock speed.

/// Cycles that make up one simulated second.
///
/// The scale is chosen so that a simulated 24-hour campaign (86 400
/// sim-seconds ≈ 86.4 M cycles) completes in a few host seconds while still
/// giving individual operations meaningfully different costs.
pub const CYCLES_PER_SEC: u64 = 1_000;

/// A monotonically advancing cycle counter.
///
/// The clock distinguishes *debug-port* cycles from everything else.
/// Debug traffic (TAP scans, memory access over the AP, reflash) happens
/// while the core is halted, and real MCUs freeze the core-visible timers
/// during a debug halt (the DBGMCU freeze bits). Charging debug traffic
/// via [`CycleClock::charge_debug`] advances total time — campaign
/// budgets and throughput accounting see it — but not
/// [`CycleClock::core_cycles`], the clock the target reads. This is what
/// makes target behaviour independent of how chatty the debug link is:
/// a batched (vectored) transaction and its scalar equivalent leave the
/// target-visible clock in the same place.
#[derive(Debug, Clone, Default)]
pub struct CycleClock {
    cycles: u64,
    debug_cycles: u64,
    instr_cycles: u64,
}

impl CycleClock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `n` cycles.
    pub fn charge(&mut self, n: u64) {
        self.cycles = self.cycles.saturating_add(n);
    }

    /// Advance the clock by `n` cycles of debug-port traffic. Total time
    /// moves; the core-visible clock does not (timers freeze on halt).
    pub fn charge_debug(&mut self, n: u64) {
        self.cycles = self.cycles.saturating_add(n);
        self.debug_cycles = self.debug_cycles.saturating_add(n);
    }

    /// Advance the clock by `n` cycles of coverage-instrumentation
    /// dilation. Total time moves — campaign budgets and the §5.5
    /// throughput A/B see the slowdown — but the core-visible clock
    /// does not: target behaviour (kernel clocks, ambient timers,
    /// queue deadlines) stays a property of the workload, not of the
    /// coverage channel observing it. This is the same stipulation the
    /// clock already makes for debug traffic, and it is what lets an
    /// instrumented-ring campaign and a hardware-trace campaign on an
    /// uninstrumented image execute bit-identical target histories.
    pub fn charge_instr(&mut self, n: u64) {
        self.cycles = self.cycles.saturating_add(n);
        self.instr_cycles = self.instr_cycles.saturating_add(n);
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles spent on debug-port traffic so far.
    pub fn debug_cycles(&self) -> u64 {
        self.debug_cycles
    }

    /// Cycles spent on coverage-instrumentation dilation so far.
    pub fn instr_cycles(&self) -> u64 {
        self.instr_cycles
    }

    /// The core-visible cycle count: total cycles minus debug-port
    /// cycles and instrumentation dilation. This is what target code
    /// (kernel clocks, ambient timers) reads.
    pub fn core_cycles(&self) -> u64 {
        self.cycles
            .saturating_sub(self.debug_cycles)
            .saturating_sub(self.instr_cycles)
    }

    /// Current simulated time in whole seconds.
    pub fn secs(&self) -> u64 {
        self.cycles / CYCLES_PER_SEC
    }

    /// Current simulated time in fractional hours.
    pub fn hours(&self) -> f64 {
        self.cycles as f64 / (CYCLES_PER_SEC as f64 * 3600.0)
    }
}

/// Convert simulated seconds to cycles.
pub fn secs_to_cycles(secs: u64) -> u64 {
    secs * CYCLES_PER_SEC
}

/// Convert simulated hours to cycles.
pub fn hours_to_cycles(hours: f64) -> u64 {
    (hours * 3600.0 * CYCLES_PER_SEC as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut c = CycleClock::new();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.cycles(), 15);
    }

    #[test]
    fn debug_charges_freeze_the_core_clock() {
        let mut c = CycleClock::new();
        c.charge(100);
        c.charge_debug(40);
        c.charge(10);
        assert_eq!(c.cycles(), 150);
        assert_eq!(c.debug_cycles(), 40);
        assert_eq!(c.core_cycles(), 110);
    }

    #[test]
    fn instr_charges_burn_budget_but_freeze_the_core_clock() {
        let mut c = CycleClock::new();
        c.charge(100);
        c.charge_instr(30);
        c.charge_debug(40);
        c.charge(10);
        assert_eq!(c.cycles(), 180);
        assert_eq!(c.instr_cycles(), 30);
        assert_eq!(c.debug_cycles(), 40);
        assert_eq!(c.core_cycles(), 110);
    }

    #[test]
    fn secs_conversion() {
        let mut c = CycleClock::new();
        c.charge(secs_to_cycles(90));
        assert_eq!(c.secs(), 90);
        assert!((c.hours() - 0.025).abs() < 1e-9);
    }

    #[test]
    fn hours_to_cycles_roundtrip() {
        assert_eq!(hours_to_cycles(24.0), 24 * 3600 * CYCLES_PER_SEC);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = CycleClock::new();
        c.charge(u64::MAX);
        c.charge(100);
        assert_eq!(c.cycles(), u64::MAX);
    }
}
