//! The firmware execution contract.
//!
//! A [`Firmware`] is whatever got flashed onto the board — in this
//! reproduction, an embedded-OS kernel model plus the EOF execution agent.
//! The machine drives it in *quanta*: each [`Firmware::step`] call performs
//! a bounded amount of work and reports where the program counter ended up
//! and how many cycles it burned. Between quanta the machine checks
//! hardware breakpoints, injected faults and the watchdog — giving the
//! debug port the same observation granularity a halting probe has on real
//! silicon.

use crate::bus::Bus;
use crate::fault::{FaultKind, FaultRecord};
use crate::symbols::SymbolTable;

/// Outcome of one firmware execution quantum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// Progress was made; the PC moved.
    Running {
        /// New program counter.
        pc: u32,
        /// Cycles consumed by this quantum.
        cycles: u64,
    },
    /// The firmware is spinning without progress (e.g. an infinite polling
    /// loop after API misuse). The PC does not change — this is what the
    /// paper's second liveness watchdog detects.
    Stalled {
        /// Program counter the core is stuck at.
        pc: u32,
        /// Cycles burned while spinning.
        cycles: u64,
    },
    /// The firmware raised a fault; the PC is at the exception handler.
    Fault(FaultRecord),
}

impl StepResult {
    /// Construct a fault step at handler address `pc`.
    pub fn fault(
        kind: FaultKind,
        pc: u32,
        at_cycle: u64,
        message: impl Into<String>,
        backtrace: Vec<String>,
    ) -> Self {
        StepResult::Fault(FaultRecord {
            kind,
            message: message.into(),
            backtrace,
            pc,
            at_cycle,
        })
    }

    /// Program counter this step ended at.
    pub fn pc(&self) -> u32 {
        match self {
            StepResult::Running { pc, .. } | StepResult::Stalled { pc, .. } => *pc,
            StepResult::Fault(rec) => rec.pc,
        }
    }

    /// Cycles consumed by this step.
    pub fn cycles(&self) -> u64 {
        match self {
            StepResult::Running { cycles, .. } | StepResult::Stalled { cycles, .. } => *cycles,
            // Taking the exception costs a fixed pipeline flush.
            StepResult::Fault(_) => 8,
        }
    }
}

/// Code running on the simulated core.
pub trait Firmware {
    /// Human-readable firmware identity, e.g. `"freertos-5.4+agent"`.
    fn name(&self) -> &str;

    /// Symbol table for breakpoint placement and PC symbolisation.
    fn symbols(&self) -> &SymbolTable;

    /// Execute one quantum.
    fn step(&mut self, bus: &mut Bus) -> StepResult;

    /// Warm-reset hook: reinitialise internal state. RAM has already been
    /// cleared by the machine when this is called.
    fn on_reset(&mut self, bus: &mut Bus);

    /// Freeze the firmware: after this call every `step` must report
    /// [`StepResult::Stalled`] at the current PC. Used by fault injection
    /// to model execution stalls.
    fn freeze(&mut self);
}

#[cfg(test)]
pub(crate) mod testfw {
    //! A tiny counting firmware used by machine tests.

    use super::*;
    use crate::arch::Endianness;

    /// Firmware that walks PC through `base, base+4, base+8, …` and writes
    /// the step count at a fixed RAM address.
    pub struct CountingFirmware {
        pub base: u32,
        pub steps: u32,
        pub frozen: bool,
        pub fault_at_step: Option<u32>,
        symbols: SymbolTable,
    }

    impl CountingFirmware {
        pub fn new(base: u32) -> Self {
            let mut symbols = SymbolTable::new();
            symbols.insert("entry", base);
            symbols.insert("handle_exception", 0x0fff_0000);
            CountingFirmware {
                base,
                steps: 0,
                frozen: false,
                fault_at_step: None,
                symbols,
            }
        }
    }

    impl Firmware for CountingFirmware {
        fn name(&self) -> &str {
            "counting-test-firmware"
        }

        fn symbols(&self) -> &SymbolTable {
            &self.symbols
        }

        fn step(&mut self, bus: &mut Bus) -> StepResult {
            if self.frozen {
                return StepResult::Stalled {
                    pc: self.base + self.steps * 4,
                    cycles: 1,
                };
            }
            if self.fault_at_step == Some(self.steps) {
                return StepResult::fault(
                    FaultKind::Panic,
                    0x0fff_0000,
                    bus.now(),
                    "test panic",
                    vec!["entry".into()],
                );
            }
            self.steps += 1;
            let base = bus.ram.base();
            bus.ram
                .write_u32(base, self.steps, Endianness::Little)
                .unwrap();
            StepResult::Running {
                pc: self.base + self.steps * 4,
                cycles: 2,
            }
        }

        fn on_reset(&mut self, _bus: &mut Bus) {
            self.steps = 0;
            self.frozen = false;
        }

        fn freeze(&mut self) {
            self.frozen = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_result_accessors() {
        let r = StepResult::Running {
            pc: 0x100,
            cycles: 3,
        };
        assert_eq!(r.pc(), 0x100);
        assert_eq!(r.cycles(), 3);
        let f = StepResult::fault(FaultKind::MemFault, 0x200, 7, "boom", vec![]);
        assert_eq!(f.pc(), 0x200);
        assert!(f.cycles() > 0);
    }
}
