//! The memory/peripheral bus visible to firmware.
//!
//! Firmware (the OS kernel model plus the execution agent) can touch RAM,
//! the UART and the cycle clock — exactly what code running on the core
//! could. Flash, breakpoints and the reset line belong to
//! [`crate::machine::Machine`] and are reachable only through the debug
//! port, preserving the isolation the paper's design leans on.

use crate::arch::Endianness;
use crate::clock::CycleClock;
use crate::mem::Ram;
use crate::mmio::MmioSpace;
use crate::trace::TraceUnit;
use crate::uart::Uart;
use std::collections::VecDeque;

/// A pending interrupt request raised by external stimulus hardware
/// (GPIO toggles, host-side serial TX, timer expiry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrqRequest {
    /// Interrupt line number.
    pub line: u8,
    /// Payload for data-carrying lines (serial RX bytes).
    pub payload: Vec<u8>,
}

/// Well-known interrupt lines of the simulated boards.
///
/// Payload semantics are fixed per line; a kernel's `on_interrupt` may
/// rely on them without inspecting the raiser:
///
/// | line        | payload                                                |
/// |-------------|--------------------------------------------------------|
/// | `GPIO`      | empty — edge event only                                |
/// | `SERIAL_RX` | the received bytes, in arrival order                   |
/// | `TIMER`     | empty — tick event only                                |
/// | `SPI`       | empty — transfer complete; data sits in the DATA reg   |
/// | `I2C`       | empty — transaction complete; ACK/NACK via STATUS reg  |
/// | `DMA`       | transferred length as little-endian `u32` (4 bytes)    |
pub mod irq {
    /// GPIO edge interrupt (no payload).
    pub const GPIO: u8 = 1;
    /// Serial receive interrupt (payload = received bytes).
    pub const SERIAL_RX: u8 = 2;
    /// Auxiliary timer tick (no payload).
    pub const TIMER: u8 = 3;
    /// SPI transfer-complete interrupt (no payload; the driver reads the
    /// controller's DATA/STATUS registers).
    pub const SPI: u8 = 4;
    /// I2C transaction-complete interrupt (no payload; ACK/NACK is read
    /// from the controller's STATUS register).
    pub const I2C: u8 = 5;
    /// DMA channel-complete interrupt (payload = transferred length as a
    /// little-endian `u32`).
    pub const DMA: u8 = 6;
}

/// Everything the firmware can access while executing.
#[derive(Debug)]
pub struct Bus {
    /// On-chip SRAM.
    pub ram: Ram,
    /// Transmit-only UART used for kernel logs.
    pub uart: Uart,
    /// Cycle clock; kernel work charges cycles here.
    pub clock: CycleClock,
    /// Byte order of the core, needed for in-RAM structure layout.
    pub endianness: Endianness,
    /// Interrupt requests waiting for the firmware to service.
    pub pending_irqs: VecDeque<IrqRequest>,
    /// Model-free MMIO peripheral region (SPI/I2C/DMA).
    pub mmio: MmioSpace,
    /// ETM-style hardware trace unit watching the core's branch sites.
    pub trace: TraceUnit,
    /// Whether this bus belongs to real silicon (ambient peripheral
    /// activity exists) or an emulator instance (it does not).
    pub silicon: bool,
}

impl Bus {
    /// Create a bus with zeroed RAM at `ram_base`.
    pub fn new(ram_base: u32, ram_size: usize, endianness: Endianness) -> Self {
        Bus {
            ram: Ram::new(ram_base, ram_size),
            uart: Uart::default(),
            clock: CycleClock::new(),
            endianness,
            pending_irqs: VecDeque::new(),
            mmio: MmioSpace::default(),
            trace: TraceUnit::default(),
            silicon: true,
        }
    }

    /// Model-free read of an MMIO data/status register at driver call-site
    /// `site` (the replay/inject key — see [`crate::mmio`]).
    pub fn mmio_read(&mut self, site: u32, periph: u8, reg: u8) -> u8 {
        self.mmio.read_data(site, periph, reg)
    }

    /// Read an MMIO write-through latch register (CTRL/SRC/DST/LEN).
    pub fn mmio_read_latch(&mut self, periph: u8, reg: u8) -> u64 {
        self.mmio.read_latch(periph, reg)
    }

    /// Write an MMIO register. A START-bit write into a `CTRL` register
    /// completes the programmed operation and queues that peripheral's
    /// completion IRQ on [`Bus::pending_irqs`].
    pub fn mmio_write(&mut self, periph: u8, reg: u8, val: u64) {
        if let Some(req) = self.mmio.write(periph, reg, val) {
            self.pending_irqs.push_back(req);
        }
    }

    /// Charge `n` cycles of work to the clock.
    pub fn charge(&mut self, n: u64) {
        self.clock.charge(n);
    }

    /// Charge `n` cycles of debug-port traffic: total time advances, the
    /// core-visible clock does not (timers freeze on debug halt).
    pub fn charge_debug(&mut self, n: u64) {
        self.clock.charge_debug(n);
    }

    /// Charge `n` cycles of coverage-instrumentation dilation: total
    /// time (campaign budget, throughput) advances, the core-visible
    /// clock does not — target behaviour stays a property of the
    /// workload, not of the coverage channel observing it.
    pub fn charge_instr(&mut self, n: u64) {
        self.clock.charge_instr(n);
    }

    /// Current cycle count (convenience).
    pub fn now(&self) -> u64 {
        self.clock.cycles()
    }

    /// The core-visible cycle count — what target code (kernel clocks,
    /// ambient peripheral timers) reads. Excludes debug-port traffic, so
    /// target behaviour does not depend on how the host drives the link.
    pub fn core_now(&self) -> u64 {
        self.clock.core_cycles()
    }

    /// Reset peripherals and RAM to their power-on state. The clock is
    /// *not* reset: simulated time keeps flowing across reboots, exactly as
    /// wall-clock time does for a real campaign.
    ///
    /// The dirty-page bitmap is cleared too: power-on zero-fill is the
    /// architectural baseline of this RAM, so "dirty" afterwards means
    /// "written since power-on" — which is exactly the set of pages a
    /// snapshot capture has to read back over the wire (everything else
    /// is known to be zero). Snapshots guard against this clear with the
    /// machine's boot-epoch counter.
    pub fn power_cycle(&mut self) {
        self.ram.fill(0);
        self.ram.clear_dirty();
        self.uart.reset();
        self.pending_irqs.clear();
        self.mmio.reset();
        // The trace stream dies with the run that produced it, but the
        // enable latch lives in the debug power domain and survives —
        // like breakpoints, the host arms it once per attach.
        self.trace.quiesce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_cycle_preserves_clock() {
        let mut b = Bus::new(0x2000_0000, 64, Endianness::Little);
        b.charge(123);
        b.ram.write_u8(0x2000_0000, 9).unwrap();
        b.uart.tx(b"x");
        b.power_cycle();
        assert_eq!(b.now(), 123);
        assert_eq!(b.ram.read_u8(0x2000_0000).unwrap(), 0);
        assert_eq!(b.uart.pending(), 0);
    }

    #[test]
    fn power_cycle_quiesces_trace_but_keeps_it_armed() {
        let mut b = Bus::new(0x2000_0000, 64, Endianness::Little);
        b.trace.set_enabled(true);
        b.trace.emit(0x42, false);
        assert!(b.trace.used() > 0);
        b.power_cycle();
        assert!(b.trace.enabled());
        assert_eq!(b.trace.used(), 0);
    }

    #[test]
    fn power_cycle_clears_mmio_state() {
        let mut b = Bus::new(0x2000_0000, 64, Endianness::Little);
        b.mmio.load_stream(&[0x5a, 0x5b]);
        assert_eq!(
            b.mmio_read(1, crate::mmio::periph::SPI, crate::mmio::reg::DATA),
            0x5a
        );
        b.mmio_write(crate::mmio::periph::DMA, crate::mmio::reg::LEN, 0x99);
        b.power_cycle();
        assert_eq!(b.mmio.stream_remaining(), 0);
        assert_eq!(
            b.mmio_read_latch(crate::mmio::periph::DMA, crate::mmio::reg::LEN),
            0
        );
    }

    /// Payload-carrying lines interleaved with empty ones must each keep
    /// their own payload and their queue position.
    #[test]
    fn irq_queue_interleaves_payload_and_empty_lines() {
        let mut b = Bus::new(0x2000_0000, 64, Endianness::Little);
        b.pending_irqs.push_back(IrqRequest {
            line: irq::GPIO,
            payload: Vec::new(),
        });
        b.pending_irqs.push_back(IrqRequest {
            line: irq::SERIAL_RX,
            payload: b"abc".to_vec(),
        });
        b.pending_irqs.push_back(IrqRequest {
            line: irq::TIMER,
            payload: Vec::new(),
        });
        // DMA completion enqueues through the MMIO wrapper with its
        // little-endian length payload.
        b.mmio_write(crate::mmio::periph::DMA, crate::mmio::reg::LEN, 0x20);
        b.mmio_write(
            crate::mmio::periph::DMA,
            crate::mmio::reg::CTRL,
            crate::mmio::CTRL_START,
        );
        let drained: Vec<IrqRequest> = std::mem::take(&mut b.pending_irqs).into_iter().collect();
        assert_eq!(
            drained.iter().map(|r| r.line).collect::<Vec<_>>(),
            vec![irq::GPIO, irq::SERIAL_RX, irq::TIMER, irq::DMA]
        );
        assert!(drained[0].payload.is_empty());
        assert_eq!(drained[1].payload, b"abc");
        assert!(drained[2].payload.is_empty());
        assert_eq!(drained[3].payload, 0x20u32.to_le_bytes().to_vec());
    }

    /// Coalesced raises (several START writes before the firmware services
    /// anything) must deliver one request per raise, in raise order — the
    /// queue never merges same-line requests.
    #[test]
    fn irq_queue_preserves_order_under_coalesced_raises() {
        let mut b = Bus::new(0x2000_0000, 64, Endianness::Little);
        for len in [1u64, 2, 3] {
            b.mmio_write(crate::mmio::periph::DMA, crate::mmio::reg::LEN, len);
            b.mmio_write(
                crate::mmio::periph::DMA,
                crate::mmio::reg::CTRL,
                crate::mmio::CTRL_START,
            );
            b.mmio_write(
                crate::mmio::periph::SPI,
                crate::mmio::reg::CTRL,
                crate::mmio::CTRL_START,
            );
        }
        let lines: Vec<u8> = b.pending_irqs.iter().map(|r| r.line).collect();
        assert_eq!(
            lines,
            vec![irq::DMA, irq::SPI, irq::DMA, irq::SPI, irq::DMA, irq::SPI]
        );
        let dma_payloads: Vec<Vec<u8>> = b
            .pending_irqs
            .iter()
            .filter(|r| r.line == irq::DMA)
            .map(|r| r.payload.clone())
            .collect();
        assert_eq!(
            dma_payloads,
            vec![
                1u32.to_le_bytes().to_vec(),
                2u32.to_le_bytes().to_vec(),
                3u32.to_le_bytes().to_vec()
            ]
        );
    }
}
