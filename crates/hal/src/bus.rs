//! The memory/peripheral bus visible to firmware.
//!
//! Firmware (the OS kernel model plus the execution agent) can touch RAM,
//! the UART and the cycle clock — exactly what code running on the core
//! could. Flash, breakpoints and the reset line belong to
//! [`crate::machine::Machine`] and are reachable only through the debug
//! port, preserving the isolation the paper's design leans on.

use crate::arch::Endianness;
use crate::clock::CycleClock;
use crate::mem::Ram;
use crate::uart::Uart;
use std::collections::VecDeque;

/// A pending interrupt request raised by external stimulus hardware
/// (GPIO toggles, host-side serial TX, timer expiry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrqRequest {
    /// Interrupt line number.
    pub line: u8,
    /// Payload for data-carrying lines (serial RX bytes).
    pub payload: Vec<u8>,
}

/// Well-known interrupt lines of the simulated boards.
pub mod irq {
    /// GPIO edge interrupt.
    pub const GPIO: u8 = 1;
    /// Serial receive interrupt (payload = received bytes).
    pub const SERIAL_RX: u8 = 2;
    /// Auxiliary timer tick.
    pub const TIMER: u8 = 3;
}

/// Everything the firmware can access while executing.
#[derive(Debug)]
pub struct Bus {
    /// On-chip SRAM.
    pub ram: Ram,
    /// Transmit-only UART used for kernel logs.
    pub uart: Uart,
    /// Cycle clock; kernel work charges cycles here.
    pub clock: CycleClock,
    /// Byte order of the core, needed for in-RAM structure layout.
    pub endianness: Endianness,
    /// Interrupt requests waiting for the firmware to service.
    pub pending_irqs: VecDeque<IrqRequest>,
    /// Whether this bus belongs to real silicon (ambient peripheral
    /// activity exists) or an emulator instance (it does not).
    pub silicon: bool,
}

impl Bus {
    /// Create a bus with zeroed RAM at `ram_base`.
    pub fn new(ram_base: u32, ram_size: usize, endianness: Endianness) -> Self {
        Bus {
            ram: Ram::new(ram_base, ram_size),
            uart: Uart::default(),
            clock: CycleClock::new(),
            endianness,
            pending_irqs: VecDeque::new(),
            silicon: true,
        }
    }

    /// Charge `n` cycles of work to the clock.
    pub fn charge(&mut self, n: u64) {
        self.clock.charge(n);
    }

    /// Charge `n` cycles of debug-port traffic: total time advances, the
    /// core-visible clock does not (timers freeze on debug halt).
    pub fn charge_debug(&mut self, n: u64) {
        self.clock.charge_debug(n);
    }

    /// Current cycle count (convenience).
    pub fn now(&self) -> u64 {
        self.clock.cycles()
    }

    /// The core-visible cycle count — what target code (kernel clocks,
    /// ambient peripheral timers) reads. Excludes debug-port traffic, so
    /// target behaviour does not depend on how the host drives the link.
    pub fn core_now(&self) -> u64 {
        self.clock.core_cycles()
    }

    /// Reset peripherals and RAM to their power-on state. The clock is
    /// *not* reset: simulated time keeps flowing across reboots, exactly as
    /// wall-clock time does for a real campaign.
    ///
    /// The dirty-page bitmap is cleared too: power-on zero-fill is the
    /// architectural baseline of this RAM, so "dirty" afterwards means
    /// "written since power-on" — which is exactly the set of pages a
    /// snapshot capture has to read back over the wire (everything else
    /// is known to be zero). Snapshots guard against this clear with the
    /// machine's boot-epoch counter.
    pub fn power_cycle(&mut self) {
        self.ram.fill(0);
        self.ram.clear_dirty();
        self.uart.reset();
        self.pending_irqs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_cycle_preserves_clock() {
        let mut b = Bus::new(0x2000_0000, 64, Endianness::Little);
        b.charge(123);
        b.ram.write_u8(0x2000_0000, 9).unwrap();
        b.uart.tx(b"x");
        b.power_cycle();
        assert_eq!(b.now(), 123);
        assert_eq!(b.ram.read_u8(0x2000_0000).unwrap(), 0);
        assert_eq!(b.uart.pending(), 0);
    }
}
