//! An ETM-style hardware trace unit.
//!
//! Real Cortex parts ship an Embedded Trace Macrocell: a silicon block
//! that watches the core's branch unit and streams compressed packets
//! into an on-chip buffer (ETB) that the debugger drains — no
//! instrumentation in the image, no core cycles spent. µAFL built its
//! coverage channel on exactly this, and the model here mirrors the
//! shape: the unit hangs off the [`crate::Bus`], the kernel's branch
//! sites feed it whether or not the image carries SanCov-style hooks,
//! and the host reads it out over the debug port.
//!
//! ## Packet format
//!
//! Byte-oriented, little-endian (the unit is part of the debug
//! subsystem; its registers and stream are fixed LE regardless of core
//! endianness). Events carry the 64-bit edge id as their "address".
//!
//! ```text
//! 00 A5 <id:8>      SYNC          full address; decoder state reset
//! 01                REPEAT        same address as the previous event
//! 02                OVERFLOW      events were lost; a SYNC follows
//! 1n <delta:n>      BRANCH        direct branch, n ∈ 1..=8 delta bytes,
//!                                 address = previous ^ delta
//! 2n <delta:n>      ADDR          indirect branch, same delta encoding
//! ```
//!
//! `0x00` is never a packet header on its own — it only occurs as the
//! first byte of the two-byte SYNC preamble — so a desynchronised
//! decoder can scan for `00 A5` to re-lock.
//!
//! ## Overflow discipline
//!
//! Packets are written whole or not at all. When a packet does not fit
//! the FIFO, the event is counted in the `lost` register, nothing is
//! written, and the unit latches a resync condition: the first event
//! after space frees up (in practice, after the host drains) emits
//! `OVERFLOW` + `SYNC` so the decoder knows the gap exists and where
//! the stream re-locks. Lost events are lost — the host marks that
//! window's coverage partial and never invents edges.

/// Default FIFO capacity in bytes. Sized so an entire test-case
/// execution (boot burst included) fits without overflow at the
/// repo's default exec horizons — the differential gate requires
/// zero overflow at this size.
pub const TRACE_FIFO_DEFAULT: usize = 256 * 1024;

/// Bytes of the drain header (used, capacity, lost — u32 LE each),
/// the same shape as the coverage ring's header.
pub const TRACE_HEADER_BYTES: usize = 12;

/// First byte of the SYNC preamble. Never a standalone packet header.
pub const PKT_SYNC0: u8 = 0x00;
/// Second byte of the SYNC preamble.
pub const PKT_SYNC1: u8 = 0xA5;
/// Repeat-last-address atom.
pub const PKT_REPEAT: u8 = 0x01;
/// Overflow marker: events were lost before this point.
pub const PKT_OVERFLOW: u8 = 0x02;
/// Direct-branch delta packet header base; low nibble = delta bytes.
pub const PKT_BRANCH: u8 = 0x10;
/// Indirect-branch address packet header base; low nibble = delta bytes.
pub const PKT_ADDR: u8 = 0x20;

/// The trace unit: enable latch, bounded packet FIFO, and the
/// compressing encoder state.
#[derive(Debug, Clone)]
pub struct TraceUnit {
    enabled: bool,
    fifo: Vec<u8>,
    capacity: usize,
    /// Address of the last event successfully encoded.
    last: Option<u64>,
    /// Latched after an event is dropped: the next encodable event
    /// must open with OVERFLOW + SYNC.
    need_sync: bool,
    /// Events dropped since the last drain.
    lost: u32,
    /// Lifetime packets written (diagnostic register).
    packets: u64,
    /// Lifetime payload bytes written (diagnostic register).
    bytes: u64,
}

impl Default for TraceUnit {
    fn default() -> Self {
        Self::with_capacity(TRACE_FIFO_DEFAULT)
    }
}

impl TraceUnit {
    /// A disabled unit with the given FIFO capacity in bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceUnit {
            enabled: false,
            fifo: Vec::new(),
            capacity,
            last: None,
            need_sync: false,
            lost: 0,
            packets: 0,
            bytes: 0,
        }
    }

    /// Is the unit armed? The latch lives in the debug power domain:
    /// like breakpoints, it survives target resets and power cycles.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Arm or disarm the unit (host-side, over the debug port).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.quiesce();
        }
    }

    /// FIFO capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn used(&self) -> usize {
        self.fifo.len()
    }

    /// Events dropped since the last drain.
    pub fn lost(&self) -> u32 {
        self.lost
    }

    /// Lifetime packets written.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Lifetime stream bytes written.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Reset the stream state (FIFO, encoder, loss counter) without
    /// touching the enable latch or lifetime counters. Called on target
    /// reset / power cycle / core restore: the sinked stream dies with
    /// the run that produced it.
    pub fn quiesce(&mut self) {
        self.fifo.clear();
        self.last = None;
        self.need_sync = false;
        self.lost = 0;
    }

    /// One branch event from the core. `indirect` selects the address
    /// packet flavour; the decoder reconstructs the same id either way.
    /// Free of core cycles — tracing is the hardware's job.
    pub fn emit(&mut self, id: u64, indirect: bool) {
        if !self.enabled {
            return;
        }
        let mut pkt = [0u8; 11];
        let len = if self.need_sync {
            // OVERFLOW marker, then a full re-lock.
            pkt[0] = PKT_OVERFLOW;
            Self::encode_sync(&mut pkt[1..11], id);
            11
        } else if self.last == Some(id) {
            pkt[0] = PKT_REPEAT;
            1
        } else if let Some(prev) = self.last {
            let delta = prev ^ id;
            let n = ((64 - delta.leading_zeros()).div_ceil(8)).max(1) as usize;
            pkt[0] = if indirect { PKT_ADDR } else { PKT_BRANCH } | n as u8;
            pkt[1..1 + n].copy_from_slice(&delta.to_le_bytes()[..n]);
            1 + n
        } else {
            Self::encode_sync(&mut pkt[0..10], id);
            10
        };
        if self.fifo.len() + len > self.capacity {
            self.lost = self.lost.saturating_add(1);
            self.need_sync = true;
            return;
        }
        self.fifo.extend_from_slice(&pkt[..len]);
        self.need_sync = false;
        self.last = Some(id);
        self.packets += 1;
        self.bytes += len as u64;
    }

    fn encode_sync(buf: &mut [u8], id: u64) {
        buf[0] = PKT_SYNC0;
        buf[1] = PKT_SYNC1;
        buf[2..10].copy_from_slice(&id.to_le_bytes());
    }

    /// The 12-byte drain header: used bytes, capacity, lost events.
    pub fn header(&self) -> [u8; TRACE_HEADER_BYTES] {
        let mut h = [0u8; TRACE_HEADER_BYTES];
        h[0..4].copy_from_slice(&(self.fifo.len() as u32).to_le_bytes());
        h[4..8].copy_from_slice(&(self.capacity as u32).to_le_bytes());
        h[8..12].copy_from_slice(&self.lost.to_le_bytes());
        h
    }

    /// Destructive drain: take the buffered stream and the loss count,
    /// clearing both. Encoder address state survives (the stream
    /// continues seamlessly across drains); a latched resync condition
    /// survives too, so a post-overflow stream still opens with
    /// OVERFLOW + SYNC.
    pub fn drain(&mut self) -> (Vec<u8>, u32) {
        let lost = self.lost;
        self.lost = 0;
        (std::mem::take(&mut self.fifo), lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(cap: usize) -> TraceUnit {
        let mut t = TraceUnit::with_capacity(cap);
        t.set_enabled(true);
        t
    }

    #[test]
    fn disabled_unit_stays_silent() {
        let mut t = TraceUnit::default();
        t.emit(0xdead_beef, false);
        assert_eq!(t.used(), 0);
        assert_eq!(t.packets(), 0);
    }

    #[test]
    fn first_event_is_a_sync_packet() {
        let mut t = armed(1024);
        t.emit(0x1122_3344_5566_7788, false);
        assert_eq!(t.used(), 10);
        let (bytes, lost) = t.drain();
        assert_eq!(lost, 0);
        assert_eq!(bytes[0], PKT_SYNC0);
        assert_eq!(bytes[1], PKT_SYNC1);
        assert_eq!(
            u64::from_le_bytes(bytes[2..10].try_into().unwrap()),
            0x1122_3344_5566_7788
        );
    }

    #[test]
    fn repeats_and_deltas_compress() {
        let mut t = armed(1024);
        t.emit(0x100, false);
        t.emit(0x100, false); // repeat: 1 byte
        t.emit(0x101, false); // delta 0x001: 2 bytes
        let (bytes, _) = t.drain();
        assert_eq!(bytes.len(), 10 + 1 + 2);
        assert_eq!(bytes[10], PKT_REPEAT);
        assert_eq!(bytes[11], PKT_BRANCH | 1);
        assert_eq!(bytes[12], 0x01);
    }

    #[test]
    fn indirect_branches_use_address_packets() {
        let mut t = armed(1024);
        t.emit(0x100, false);
        t.emit(0xFFFF_0100, true);
        let (bytes, _) = t.drain();
        assert_eq!(bytes[10] & 0xF0, PKT_ADDR);
    }

    #[test]
    fn overflow_drops_whole_packets_and_relocks_with_sync() {
        let mut t = armed(12);
        t.emit(1, false); // 10-byte sync fits
        t.emit(2, false); // 2-byte delta fits exactly (12 total)
        t.emit(3, false); // nothing fits: lost
        t.emit(4, false); // still lost
        assert_eq!(t.lost(), 2);
        let (bytes, lost) = t.drain();
        assert_eq!(lost, 2);
        assert_eq!(bytes.len(), 12);
        // After the drain the unit re-locks with OVERFLOW + SYNC.
        t.emit(5, false);
        let (bytes, lost) = t.drain();
        assert_eq!(lost, 0);
        assert_eq!(bytes[0], PKT_OVERFLOW);
        assert_eq!(bytes[1], PKT_SYNC0);
        assert_eq!(bytes[2], PKT_SYNC1);
        assert_eq!(u64::from_le_bytes(bytes[3..11].try_into().unwrap()), 5);
    }

    #[test]
    fn header_reports_used_capacity_lost() {
        let mut t = armed(16);
        t.emit(10, false);
        t.emit(u64::MAX, false); // 9-byte delta packet: dropped (16-10=6)
        let h = t.header();
        assert_eq!(u32::from_le_bytes(h[0..4].try_into().unwrap()), 10);
        assert_eq!(u32::from_le_bytes(h[4..8].try_into().unwrap()), 16);
        assert_eq!(u32::from_le_bytes(h[8..12].try_into().unwrap()), 1);
    }

    #[test]
    fn quiesce_clears_stream_but_keeps_latch_and_lifetime_counters() {
        let mut t = armed(1024);
        t.emit(7, false);
        let packets = t.packets();
        t.quiesce();
        assert!(t.enabled());
        assert_eq!(t.used(), 0);
        assert_eq!(t.packets(), packets);
        // Stream restarts with a fresh SYNC.
        t.emit(7, false);
        let (bytes, _) = t.drain();
        assert_eq!(bytes[0], PKT_SYNC0);
    }

    #[test]
    fn disarming_quiesces() {
        let mut t = armed(1024);
        t.emit(1, false);
        t.set_enabled(false);
        assert_eq!(t.used(), 0);
        t.emit(2, false);
        assert_eq!(t.used(), 0);
    }
}
