//! On-chip hardware watchdog timer.
//!
//! Distinct from EOF's *host-side* liveness watchdogs (which live in
//! `eof-monitors` and observe the target over the debug link), this is the
//! independent on-chip timer most MCUs ship: if firmware stops kicking it,
//! the chip performs a warm reset on its own. The paper's future-work
//! section names hardware watchdogs as a complementary redundancy
//! mechanism; modelling it lets the ablation benches compare host-side
//! detection latency against chip-level self-reset.

/// A count-down watchdog driven by the machine's cycle clock.
#[derive(Debug, Clone)]
pub struct HardwareWatchdog {
    timeout_cycles: u64,
    deadline: Option<u64>,
    fired: u64,
}

impl HardwareWatchdog {
    /// Create a disabled watchdog with the given timeout.
    pub fn new(timeout_cycles: u64) -> Self {
        HardwareWatchdog {
            timeout_cycles,
            deadline: None,
            fired: 0,
        }
    }

    /// Arm (or re-arm) the watchdog at the current cycle.
    pub fn arm(&mut self, now: u64) {
        self.deadline = Some(now + self.timeout_cycles);
    }

    /// Disarm the watchdog.
    pub fn disarm(&mut self) {
        self.deadline = None;
    }

    /// Firmware kick: push the deadline out.
    pub fn kick(&mut self, now: u64) {
        if self.deadline.is_some() {
            self.deadline = Some(now + self.timeout_cycles);
        }
    }

    /// Check for expiry. Returns `true` exactly once per expiry; the
    /// watchdog re-arms itself afterwards (windowed mode).
    pub fn expired(&mut self, now: u64) -> bool {
        match self.deadline {
            Some(d) if now >= d => {
                self.fired += 1;
                self.deadline = Some(now + self.timeout_cycles);
                true
            }
            _ => false,
        }
    }

    /// Whether the watchdog is armed.
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some()
    }

    /// Number of times the watchdog has fired since creation.
    pub fn times_fired(&self) -> u64 {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        let mut w = HardwareWatchdog::new(100);
        assert!(!w.expired(1_000_000));
        assert_eq!(w.times_fired(), 0);
    }

    #[test]
    fn fires_after_timeout_without_kick() {
        let mut w = HardwareWatchdog::new(100);
        w.arm(0);
        assert!(!w.expired(99));
        assert!(w.expired(100));
        assert_eq!(w.times_fired(), 1);
    }

    #[test]
    fn kick_defers_expiry() {
        let mut w = HardwareWatchdog::new(100);
        w.arm(0);
        w.kick(90);
        assert!(!w.expired(150));
        assert!(w.expired(190));
    }

    #[test]
    fn rearms_after_firing() {
        let mut w = HardwareWatchdog::new(100);
        w.arm(0);
        assert!(w.expired(100));
        assert!(!w.expired(150));
        assert!(w.expired(200));
        assert_eq!(w.times_fired(), 2);
    }

    #[test]
    fn kick_on_disarmed_is_noop() {
        let mut w = HardwareWatchdog::new(100);
        w.kick(50);
        assert!(!w.is_armed());
    }
}
