//! Model-free memory-mapped peripheral region (Ember-IO style).
//!
//! Real driver code spends its life reading peripheral data/status
//! registers whose values come from the outside world. Instead of
//! modelling each peripheral's behaviour, this module answers those
//! reads *model-free* from a fuzzer-supplied response stream, using the
//! Ember-IO replay/inject strategy:
//!
//! * **replay** — the first response served at a given *site* (a call-site
//!   id standing in for the faulting PC) × register pair is remembered;
//!   every later read at the same site×register replays the same byte.
//!   This is what makes status-poll loops terminate (or provably hang):
//!   a driver polling `STATUS` at one PC sees a *stable* value.
//! * **inject** — a read at a fresh site×register consumes the next byte
//!   of the fuzzer's response stream. When the stream runs dry, a
//!   deterministic xorshift fallback keeps execution reproducible.
//!
//! Control-class registers behave as ordinary write-through latches
//! (reads return the last value written), and writing the START bit of a
//! peripheral's `CTRL` register raises that peripheral's completion IRQ
//! line on [`crate::bus::Bus::pending_irqs`] — kernels service it from
//! their interrupt path exactly like the pre-existing GPIO/serial lines.
//!
//! All dynamic state (stream, cursor, replay memo, latches) is cleared by
//! [`MmioSpace::reset`] on every power cycle *and* on every debug-port
//! core restore, so the snapshot fast path and the reboot/reflash ladder
//! observe identical peripheral state — a requirement of the
//! snapshot-equivalence gate.

use crate::bus::{irq, IrqRequest};
use std::collections::BTreeMap;

/// Peripheral indices of the MMIO region.
pub mod periph {
    /// SPI controller.
    pub const SPI: u8 = 0;
    /// I2C controller.
    pub const I2C: u8 = 1;
    /// DMA engine.
    pub const DMA: u8 = 2;
}

/// Register offsets within each peripheral's window.
pub mod reg {
    /// Control register (write-through latch; START bit 0x1 fires the
    /// peripheral and raises its completion IRQ).
    pub const CTRL: u8 = 0;
    /// Status register (model-free read).
    pub const STATUS: u8 = 1;
    /// Data register (model-free read).
    pub const DATA: u8 = 2;
    /// DMA source address (write-through latch).
    pub const SRC: u8 = 3;
    /// DMA destination address (write-through latch).
    pub const DST: u8 = 4;
    /// DMA transfer length (write-through latch).
    pub const LEN: u8 = 5;
}

/// START bit of every peripheral's `CTRL` register.
pub const CTRL_START: u64 = 0x1;

/// Counters drained into host telemetry after every execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MmioStats {
    /// Total register reads (model-free and latch reads alike).
    pub reads: u64,
    /// Model-free reads answered from the per-site replay memo.
    pub replay_hits: u64,
    /// Fresh bytes consumed from the fuzzer's response stream.
    pub inject_bytes: u64,
    /// SPI completion IRQs raised.
    pub irq_spi: u64,
    /// I2C completion IRQs raised.
    pub irq_i2c: u64,
    /// DMA completion IRQs raised.
    pub irq_dma: u64,
}

/// The model-free MMIO peripheral space hosted on the [`crate::bus::Bus`].
#[derive(Debug, Default)]
pub struct MmioSpace {
    /// Fuzzer-supplied response stream for model-free register reads.
    stream: Vec<u8>,
    /// Next unconsumed stream byte.
    cursor: usize,
    /// Ember-IO replay memo: (site, periph, reg) → first response served.
    replay: BTreeMap<(u32, u8, u8), u8>,
    /// Write-through latches: (periph, reg) → last value written.
    latch: BTreeMap<(u8, u8), u64>,
    /// Deterministic fallback generator once the stream is exhausted.
    fallback: u64,
    /// Telemetry counters (drained host-side via [`MmioSpace::take_stats`]).
    pub stats: MmioStats,
}

impl MmioSpace {
    /// Install a fresh response stream for the next execution. Clears the
    /// replay memo and latches: a new input means a new peripheral world.
    pub fn load_stream(&mut self, stream: &[u8]) {
        self.stream.clear();
        self.stream.extend_from_slice(stream);
        self.cursor = 0;
        self.replay.clear();
        self.latch.clear();
        self.fallback = FALLBACK_SEED;
    }

    /// Clear all dynamic state (stream, cursor, memo, latches). Telemetry
    /// counters survive — they are host-side observability, drained by
    /// [`MmioSpace::take_stats`], and must not be lost to a recovery.
    pub fn reset(&mut self) {
        self.stream.clear();
        self.cursor = 0;
        self.replay.clear();
        self.latch.clear();
        self.fallback = FALLBACK_SEED;
    }

    /// Drain the counters accumulated since the previous drain.
    pub fn take_stats(&mut self) -> MmioStats {
        std::mem::take(&mut self.stats)
    }

    /// Bytes of response stream not yet consumed.
    pub fn stream_remaining(&self) -> usize {
        self.stream.len().saturating_sub(self.cursor)
    }

    /// Model-free read of a data/status register at call-site `site`.
    ///
    /// First read at a (site, periph, reg) triple injects a fresh byte
    /// from the response stream (deterministic fallback once exhausted);
    /// every later read replays the remembered byte.
    pub fn read_data(&mut self, site: u32, periph: u8, reg: u8) -> u8 {
        self.stats.reads += 1;
        let key = (site, periph, reg);
        if let Some(&b) = self.replay.get(&key) {
            self.stats.replay_hits += 1;
            return b;
        }
        let b = if self.cursor < self.stream.len() {
            let b = self.stream[self.cursor];
            self.cursor += 1;
            self.stats.inject_bytes += 1;
            b
        } else {
            self.fallback_byte()
        };
        self.replay.insert(key, b);
        b
    }

    /// Read a write-through latch register (CTRL/SRC/DST/LEN). Returns the
    /// last value written, or zero after reset.
    pub fn read_latch(&mut self, periph: u8, reg: u8) -> u64 {
        self.stats.reads += 1;
        self.latch.get(&(periph, reg)).copied().unwrap_or(0)
    }

    /// Write a register. Every write latches; writing [`CTRL_START`] into
    /// a peripheral's `CTRL` register additionally completes the
    /// programmed operation and returns the completion [`IrqRequest`] the
    /// caller must queue (the [`crate::bus::Bus`] wrapper does this).
    pub fn write(&mut self, periph: u8, r: u8, val: u64) -> Option<IrqRequest> {
        self.latch.insert((periph, r), val);
        if r != reg::CTRL || val & CTRL_START == 0 {
            return None;
        }
        match periph {
            periph::SPI => {
                self.stats.irq_spi += 1;
                Some(IrqRequest {
                    line: irq::SPI,
                    payload: Vec::new(),
                })
            }
            periph::I2C => {
                self.stats.irq_i2c += 1;
                Some(IrqRequest {
                    line: irq::I2C,
                    payload: Vec::new(),
                })
            }
            periph::DMA => {
                self.stats.irq_dma += 1;
                let len = self
                    .latch
                    .get(&(periph::DMA, reg::LEN))
                    .copied()
                    .unwrap_or(0) as u32;
                Some(IrqRequest {
                    line: irq::DMA,
                    payload: len.to_le_bytes().to_vec(),
                })
            }
            _ => None,
        }
    }

    fn fallback_byte(&mut self) -> u8 {
        // xorshift64*: deterministic, state reset with the stream so the
        // same input always sees the same exhaustion-tail bytes.
        let mut x = self.fallback;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.fallback = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
    }
}

const FALLBACK_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_then_replay_per_site() {
        let mut m = MmioSpace::default();
        m.load_stream(&[0xaa, 0xbb]);
        // Fresh site: inject.
        assert_eq!(m.read_data(1, periph::SPI, reg::STATUS), 0xaa);
        // Same site: replay the remembered byte, stream untouched.
        assert_eq!(m.read_data(1, periph::SPI, reg::STATUS), 0xaa);
        assert_eq!(m.stream_remaining(), 1);
        // Different register at the same site: fresh injection.
        assert_eq!(m.read_data(1, periph::SPI, reg::DATA), 0xbb);
        assert_eq!(m.stats.reads, 3);
        assert_eq!(m.stats.replay_hits, 1);
        assert_eq!(m.stats.inject_bytes, 2);
    }

    #[test]
    fn exhausted_stream_falls_back_deterministically() {
        let run = || {
            let mut m = MmioSpace::default();
            m.load_stream(&[0x01]);
            (0..8u32)
                .map(|site| m.read_data(site, periph::I2C, reg::DATA))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a[0], 0x01);
    }

    #[test]
    fn latch_registers_read_back_last_write() {
        let mut m = MmioSpace::default();
        assert_eq!(m.read_latch(periph::DMA, reg::LEN), 0);
        assert!(m.write(periph::DMA, reg::LEN, 0x40).is_none());
        assert_eq!(m.read_latch(periph::DMA, reg::LEN), 0x40);
    }

    #[test]
    fn ctrl_start_raises_completion_irqs() {
        let mut m = MmioSpace::default();
        m.write(periph::DMA, reg::LEN, 0x1234);
        let dma = m.write(periph::DMA, reg::CTRL, CTRL_START).unwrap();
        assert_eq!(dma.line, irq::DMA);
        assert_eq!(dma.payload, 0x1234u32.to_le_bytes().to_vec());
        let spi = m.write(periph::SPI, reg::CTRL, CTRL_START).unwrap();
        assert_eq!(spi.line, irq::SPI);
        assert!(spi.payload.is_empty());
        // Writing CTRL without the START bit latches but does not fire.
        assert!(m.write(periph::I2C, reg::CTRL, 0x2).is_none());
        assert_eq!(m.stats.irq_spi, 1);
        assert_eq!(m.stats.irq_i2c, 0);
        assert_eq!(m.stats.irq_dma, 1);
    }

    #[test]
    fn load_stream_clears_memo_but_not_stats() {
        let mut m = MmioSpace::default();
        m.load_stream(&[0x11]);
        assert_eq!(m.read_data(7, periph::SPI, reg::DATA), 0x11);
        m.load_stream(&[0x22]);
        // Memo cleared: the same site re-injects from the new stream.
        assert_eq!(m.read_data(7, periph::SPI, reg::DATA), 0x22);
        assert_eq!(m.stats.inject_bytes, 2);
        let drained = m.take_stats();
        assert_eq!(drained.inject_bytes, 2);
        assert_eq!(m.stats, MmioStats::default());
    }
}
