//! Simulated on-chip SRAM.
//!
//! Embedded targets address RAM from a base address (e.g. `0x2000_0000` on
//! Cortex-M); the debug probe and the firmware both see the same bytes. All
//! accesses are bounds-checked and return [`HalError::OutOfBoundsRam`]
//! rather than panicking, because out-of-range accesses are a *normal*
//! event during fuzzing (a corrupted test case can make the agent compute a
//! wild pointer) and must surface as a simulated bus fault, not a host
//! crash.

use crate::arch::Endianness;
use crate::error::HalError;

/// Dirty-tracking page granularity in bytes. Snapshot delta restores
/// copy whole pages, so the page size trades bitmap overhead against
/// restore amplification; 256 B matches small MPU region granularity.
pub const PAGE_SIZE: usize = 256;

/// Byte-addressable simulated SRAM with a fixed base address.
#[derive(Debug, Clone)]
pub struct Ram {
    base: u32,
    bytes: Vec<u8>,
    /// One bit per [`PAGE_SIZE`] page, set on every mutation since the
    /// last [`Ram::clear_dirty`]. Snapshot captures and restores clear
    /// it so a delta restore touches only pages written in between.
    dirty: Vec<u64>,
}

impl Ram {
    /// Create zero-filled RAM of `size` bytes mapped at `base`.
    pub fn new(base: u32, size: usize) -> Self {
        Ram {
            base,
            bytes: vec![0; size],
            dirty: vec![0; size.div_ceil(PAGE_SIZE).div_ceil(64)],
        }
    }

    /// Base address of the RAM window.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size of the RAM in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Translate an absolute address into an offset, bounds-checked for a
    /// `len`-byte access.
    fn offset(&self, addr: u32, len: usize) -> Result<usize, HalError> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base
            || off
                .checked_add(len)
                .is_none_or(|end| end > self.bytes.len())
        {
            return Err(HalError::OutOfBoundsRam {
                addr,
                len,
                ram_size: self.bytes.len(),
            });
        }
        Ok(off)
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), HalError> {
        let off = self.offset(addr, buf.len())?;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        Ok(())
    }

    /// Write `buf` starting at `addr`.
    pub fn write(&mut self, addr: u32, buf: &[u8]) -> Result<(), HalError> {
        let off = self.offset(addr, buf.len())?;
        self.bytes[off..off + buf.len()].copy_from_slice(buf);
        self.mark_dirty(off, buf.len());
        Ok(())
    }

    /// Read a single byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, HalError> {
        let off = self.offset(addr, 1)?;
        Ok(self.bytes[off])
    }

    /// Write a single byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), HalError> {
        let off = self.offset(addr, 1)?;
        self.bytes[off] = v;
        self.mark_dirty(off, 1);
        Ok(())
    }

    /// Read a 16-bit value with the given byte order.
    pub fn read_u16(&self, addr: u32, e: Endianness) -> Result<u16, HalError> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(match e {
            Endianness::Little => u16::from_le_bytes(b),
            Endianness::Big => u16::from_be_bytes(b),
        })
    }

    /// Write a 16-bit value with the given byte order.
    pub fn write_u16(&mut self, addr: u32, v: u16, e: Endianness) -> Result<(), HalError> {
        let b = match e {
            Endianness::Little => v.to_le_bytes(),
            Endianness::Big => v.to_be_bytes(),
        };
        self.write(addr, &b)
    }

    /// Read a 32-bit value with the given byte order.
    pub fn read_u32(&self, addr: u32, e: Endianness) -> Result<u32, HalError> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(e.u32_from(b))
    }

    /// Write a 32-bit value with the given byte order.
    pub fn write_u32(&mut self, addr: u32, v: u32, e: Endianness) -> Result<(), HalError> {
        self.write(addr, &e.u32_bytes(v))
    }

    /// Read a 64-bit value with the given byte order.
    pub fn read_u64(&self, addr: u32, e: Endianness) -> Result<u64, HalError> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(e.u64_from(b))
    }

    /// Write a 64-bit value with the given byte order.
    pub fn write_u64(&mut self, addr: u32, v: u64, e: Endianness) -> Result<(), HalError> {
        self.write(addr, &e.u64_bytes(v))
    }

    /// Fill the whole RAM with a byte value (power-on / reset pattern).
    pub fn fill(&mut self, v: u8) {
        self.bytes.fill(v);
        let len = self.bytes.len();
        self.mark_dirty(0, len);
    }

    /// Borrow a region as a slice (host-side convenience for bulk drains).
    pub fn slice(&self, addr: u32, len: usize) -> Result<&[u8], HalError> {
        let off = self.offset(addr, len)?;
        Ok(&self.bytes[off..off + len])
    }

    fn mark_dirty(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = off / PAGE_SIZE;
        let last = (off + len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.dirty[page / 64] |= 1 << (page % 64);
        }
    }

    /// Number of [`PAGE_SIZE`] pages covering this RAM.
    pub fn page_count(&self) -> usize {
        self.bytes.len().div_ceil(PAGE_SIZE)
    }

    /// Whether page `page` has been written since the last
    /// [`Ram::clear_dirty`].
    pub fn page_is_dirty(&self, page: usize) -> bool {
        self.dirty[page / 64] & (1 << (page % 64)) != 0
    }

    /// Indices of all pages written since the last [`Ram::clear_dirty`],
    /// in ascending order.
    pub fn dirty_pages(&self) -> Vec<usize> {
        (0..self.page_count())
            .filter(|&p| self.page_is_dirty(p))
            .collect()
    }

    /// Number of dirty pages.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clear the dirty bitmap (done by snapshot capture and restore).
    pub fn clear_dirty(&mut self) {
        self.dirty.fill(0);
    }

    /// Absolute address of the first byte of page `page`.
    pub fn page_addr(&self, page: usize) -> u32 {
        self.base + (page * PAGE_SIZE) as u32
    }

    /// Length in bytes of page `page` (the last page may be short).
    pub fn page_len(&self, page: usize) -> usize {
        (self.bytes.len() - page * PAGE_SIZE).min(PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram() -> Ram {
        Ram::new(0x2000_0000, 0x1000)
    }

    #[test]
    fn roundtrip_bytes() {
        let mut r = ram();
        r.write(0x2000_0010, &[1, 2, 3, 4]).unwrap();
        let mut b = [0u8; 4];
        r.read(0x2000_0010, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 4]);
    }

    #[test]
    fn word_roundtrip_both_endiannesses() {
        let mut r = ram();
        for e in [Endianness::Little, Endianness::Big] {
            r.write_u32(0x2000_0000, 0xcafe_babe, e).unwrap();
            assert_eq!(r.read_u32(0x2000_0000, e).unwrap(), 0xcafe_babe);
            r.write_u64(0x2000_0008, 0x0123_4567_89ab_cdef, e).unwrap();
            assert_eq!(r.read_u64(0x2000_0008, e).unwrap(), 0x0123_4567_89ab_cdef);
        }
    }

    #[test]
    fn below_base_is_out_of_bounds() {
        let r = ram();
        let err = r.read_u8(0x1fff_ffff).unwrap_err();
        assert!(matches!(err, HalError::OutOfBoundsRam { .. }));
    }

    #[test]
    fn end_of_ram_boundary() {
        let mut r = ram();
        // Last valid byte.
        r.write_u8(0x2000_0fff, 7).unwrap();
        assert_eq!(r.read_u8(0x2000_0fff).unwrap(), 7);
        // One past the end.
        assert!(r.write_u8(0x2000_1000, 7).is_err());
        // A 4-byte access straddling the end.
        assert!(r.read_u32(0x2000_0ffd, Endianness::Little).is_err());
    }

    #[test]
    fn overflowing_access_is_rejected() {
        let r = ram();
        let mut buf = vec![0u8; 16];
        assert!(r.read(u32::MAX - 2, &mut buf).is_err());
    }

    #[test]
    fn fill_resets_contents() {
        let mut r = ram();
        r.write_u8(0x2000_0040, 0xaa).unwrap();
        r.fill(0);
        assert_eq!(r.read_u8(0x2000_0040).unwrap(), 0);
    }

    #[test]
    fn slice_view() {
        let mut r = ram();
        r.write(0x2000_0100, b"hello").unwrap();
        assert_eq!(r.slice(0x2000_0100, 5).unwrap(), b"hello");
        assert!(r.slice(0x2000_0100, 0x1000).is_err());
    }

    #[test]
    fn fresh_ram_has_no_dirty_pages() {
        let r = ram();
        assert_eq!(r.dirty_page_count(), 0);
        assert_eq!(r.page_count(), 0x1000 / PAGE_SIZE);
        assert!(r.dirty_pages().is_empty());
    }

    #[test]
    fn single_byte_write_dirties_one_page() {
        let mut r = ram();
        r.write_u8(0x2000_0000 + PAGE_SIZE as u32 * 3 + 7, 0xaa)
            .unwrap();
        assert_eq!(r.dirty_pages(), vec![3]);
    }

    #[test]
    fn write_straddling_a_page_boundary_dirties_both_pages() {
        let mut r = ram();
        // Last 2 bytes of page 1, first 2 bytes of page 2.
        let addr = 0x2000_0000 + (2 * PAGE_SIZE - 2) as u32;
        r.write(addr, &[1, 2, 3, 4]).unwrap();
        assert_eq!(r.dirty_pages(), vec![1, 2]);
    }

    #[test]
    fn word_writes_delegate_through_dirty_tracking() {
        let mut r = ram();
        r.write_u64(
            0x2000_0000 + (PAGE_SIZE - 4) as u32,
            0x0123_4567_89ab_cdef,
            Endianness::Little,
        )
        .unwrap();
        assert_eq!(r.dirty_pages(), vec![0, 1]);
    }

    #[test]
    fn fill_marks_every_page_dirty() {
        let mut r = ram();
        r.fill(0);
        assert_eq!(r.dirty_page_count(), r.page_count());
    }

    #[test]
    fn clear_dirty_is_idempotent_and_reads_stay_clean() {
        let mut r = ram();
        r.write(0x2000_0010, &[1, 2, 3, 4]).unwrap();
        r.clear_dirty();
        assert_eq!(r.dirty_page_count(), 0);
        r.clear_dirty();
        assert_eq!(r.dirty_page_count(), 0);
        // Reads never dirty.
        let mut b = [0u8; 4];
        r.read(0x2000_0010, &mut b).unwrap();
        let _ = r.slice(0x2000_0000, 64).unwrap();
        assert_eq!(r.dirty_page_count(), 0);
    }

    #[test]
    fn failed_write_does_not_dirty() {
        let mut r = ram();
        assert!(r.write(0x2000_0ffe, &[0; 8]).is_err());
        assert_eq!(r.dirty_page_count(), 0);
    }

    #[test]
    fn last_page_may_be_short() {
        let r = Ram::new(0x2000_0000, PAGE_SIZE + PAGE_SIZE / 2);
        assert_eq!(r.page_count(), 2);
        assert_eq!(r.page_len(0), PAGE_SIZE);
        assert_eq!(r.page_len(1), PAGE_SIZE / 2);
        assert_eq!(r.page_addr(1), 0x2000_0000 + PAGE_SIZE as u32);
    }
}
