//! Simulated on-chip SRAM.
//!
//! Embedded targets address RAM from a base address (e.g. `0x2000_0000` on
//! Cortex-M); the debug probe and the firmware both see the same bytes. All
//! accesses are bounds-checked and return [`HalError::OutOfBoundsRam`]
//! rather than panicking, because out-of-range accesses are a *normal*
//! event during fuzzing (a corrupted test case can make the agent compute a
//! wild pointer) and must surface as a simulated bus fault, not a host
//! crash.

use crate::arch::Endianness;
use crate::error::HalError;

/// Byte-addressable simulated SRAM with a fixed base address.
#[derive(Debug, Clone)]
pub struct Ram {
    base: u32,
    bytes: Vec<u8>,
}

impl Ram {
    /// Create zero-filled RAM of `size` bytes mapped at `base`.
    pub fn new(base: u32, size: usize) -> Self {
        Ram {
            base,
            bytes: vec![0; size],
        }
    }

    /// Base address of the RAM window.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size of the RAM in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Translate an absolute address into an offset, bounds-checked for a
    /// `len`-byte access.
    fn offset(&self, addr: u32, len: usize) -> Result<usize, HalError> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base
            || off
                .checked_add(len)
                .is_none_or(|end| end > self.bytes.len())
        {
            return Err(HalError::OutOfBoundsRam {
                addr,
                len,
                ram_size: self.bytes.len(),
            });
        }
        Ok(off)
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), HalError> {
        let off = self.offset(addr, buf.len())?;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        Ok(())
    }

    /// Write `buf` starting at `addr`.
    pub fn write(&mut self, addr: u32, buf: &[u8]) -> Result<(), HalError> {
        let off = self.offset(addr, buf.len())?;
        self.bytes[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Read a single byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, HalError> {
        let off = self.offset(addr, 1)?;
        Ok(self.bytes[off])
    }

    /// Write a single byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), HalError> {
        let off = self.offset(addr, 1)?;
        self.bytes[off] = v;
        Ok(())
    }

    /// Read a 16-bit value with the given byte order.
    pub fn read_u16(&self, addr: u32, e: Endianness) -> Result<u16, HalError> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(match e {
            Endianness::Little => u16::from_le_bytes(b),
            Endianness::Big => u16::from_be_bytes(b),
        })
    }

    /// Write a 16-bit value with the given byte order.
    pub fn write_u16(&mut self, addr: u32, v: u16, e: Endianness) -> Result<(), HalError> {
        let b = match e {
            Endianness::Little => v.to_le_bytes(),
            Endianness::Big => v.to_be_bytes(),
        };
        self.write(addr, &b)
    }

    /// Read a 32-bit value with the given byte order.
    pub fn read_u32(&self, addr: u32, e: Endianness) -> Result<u32, HalError> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(e.u32_from(b))
    }

    /// Write a 32-bit value with the given byte order.
    pub fn write_u32(&mut self, addr: u32, v: u32, e: Endianness) -> Result<(), HalError> {
        self.write(addr, &e.u32_bytes(v))
    }

    /// Read a 64-bit value with the given byte order.
    pub fn read_u64(&self, addr: u32, e: Endianness) -> Result<u64, HalError> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(e.u64_from(b))
    }

    /// Write a 64-bit value with the given byte order.
    pub fn write_u64(&mut self, addr: u32, v: u64, e: Endianness) -> Result<(), HalError> {
        self.write(addr, &e.u64_bytes(v))
    }

    /// Fill the whole RAM with a byte value (power-on / reset pattern).
    pub fn fill(&mut self, v: u8) {
        self.bytes.fill(v);
    }

    /// Borrow a region as a slice (host-side convenience for bulk drains).
    pub fn slice(&self, addr: u32, len: usize) -> Result<&[u8], HalError> {
        let off = self.offset(addr, len)?;
        Ok(&self.bytes[off..off + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram() -> Ram {
        Ram::new(0x2000_0000, 0x1000)
    }

    #[test]
    fn roundtrip_bytes() {
        let mut r = ram();
        r.write(0x2000_0010, &[1, 2, 3, 4]).unwrap();
        let mut b = [0u8; 4];
        r.read(0x2000_0010, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 4]);
    }

    #[test]
    fn word_roundtrip_both_endiannesses() {
        let mut r = ram();
        for e in [Endianness::Little, Endianness::Big] {
            r.write_u32(0x2000_0000, 0xcafe_babe, e).unwrap();
            assert_eq!(r.read_u32(0x2000_0000, e).unwrap(), 0xcafe_babe);
            r.write_u64(0x2000_0008, 0x0123_4567_89ab_cdef, e).unwrap();
            assert_eq!(r.read_u64(0x2000_0008, e).unwrap(), 0x0123_4567_89ab_cdef);
        }
    }

    #[test]
    fn below_base_is_out_of_bounds() {
        let r = ram();
        let err = r.read_u8(0x1fff_ffff).unwrap_err();
        assert!(matches!(err, HalError::OutOfBoundsRam { .. }));
    }

    #[test]
    fn end_of_ram_boundary() {
        let mut r = ram();
        // Last valid byte.
        r.write_u8(0x2000_0fff, 7).unwrap();
        assert_eq!(r.read_u8(0x2000_0fff).unwrap(), 7);
        // One past the end.
        assert!(r.write_u8(0x2000_1000, 7).is_err());
        // A 4-byte access straddling the end.
        assert!(r.read_u32(0x2000_0ffd, Endianness::Little).is_err());
    }

    #[test]
    fn overflowing_access_is_rejected() {
        let r = ram();
        let mut buf = vec![0u8; 16];
        assert!(r.read(u32::MAX - 2, &mut buf).is_err());
    }

    #[test]
    fn fill_resets_contents() {
        let mut r = ram();
        r.write_u8(0x2000_0040, 0xaa).unwrap();
        r.fill(0);
        assert_eq!(r.read_u8(0x2000_0040).unwrap(), 0);
    }

    #[test]
    fn slice_view() {
        let mut r = ram();
        r.write(0x2000_0100, b"hello").unwrap();
        assert_eq!(r.slice(0x2000_0100, 5).unwrap(), b"hello");
        assert!(r.slice(0x2000_0100, 0x1000).is_err());
    }
}
