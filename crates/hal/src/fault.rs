//! Firmware fault taxonomy and host-side fault injection.
//!
//! Two different things are modelled here:
//!
//! * [`FaultKind`] / [`FaultRecord`] — faults *raised by the firmware
//!   itself* (kernel panics, failed assertions, memory faults). These are
//!   the explicit fault signals of the paper's threat model (§4.1) and are
//!   what the exception monitor observes.
//! * [`FaultPlan`] / [`InjectedFault`] — faults *injected by the test
//!   harness* (flash bit flips, hard lockups, debug-link drops) to exercise
//!   EOF's liveness watchdogs and state restoration without waiting for a
//!   fuzzing campaign to corrupt the device naturally.

/// Classification of a firmware-raised fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Kernel panic (unrecoverable error detected by the OS itself).
    Panic,
    /// Failed kernel assertion (`RT_ASSERT`, `configASSERT`, `__ASSERT`, …).
    Assertion,
    /// Illegal memory access escalated to a bus/mem fault.
    MemFault,
    /// Usage fault (illegal state transition, bad mode).
    UsageFault,
    /// Hard lockup: the core stops fetching entirely; even the debug port
    /// may lose the target. A reboot alone does not always recover it.
    HardLockup,
}

impl FaultKind {
    /// Short lower-case tag used in UART crash banners.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Assertion => "assertion",
            FaultKind::MemFault => "memfault",
            FaultKind::UsageFault => "usagefault",
            FaultKind::HardLockup => "lockup",
        }
    }
}

/// A fault captured by the machine when firmware raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Fault classification.
    pub kind: FaultKind,
    /// Message emitted by the failing kernel path.
    pub message: String,
    /// Symbolised call stack, innermost frame first.
    pub backtrace: Vec<String>,
    /// Program counter at the fault (the exception handler address).
    pub pc: u32,
    /// Cycle at which the fault was raised.
    pub at_cycle: u64,
}

/// A harness-injected hardware fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFault {
    /// Flip one bit in flash — models image corruption that survives reboot.
    FlashBitFlip {
        /// Flash byte offset.
        offset: u32,
        /// Bit index 0..8.
        bit: u8,
    },
    /// Freeze the firmware: the PC stops changing (execution stall).
    FreezeFirmware,
    /// Kill the core entirely: debug reads start timing out.
    KillCore,
    /// Drop the debug link for `cycles` cycles (consumed by `eof-dap`).
    DropLink {
        /// Outage duration in cycles.
        cycles: u64,
    },
}

/// A scheduled set of injected faults, each firing once at a given cycle.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(u64, InjectedFault)>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule `fault` to fire at absolute cycle `at_cycle`.
    pub fn at(mut self, at_cycle: u64, fault: InjectedFault) -> Self {
        self.entries.push((at_cycle, fault));
        self.entries.sort_by_key(|(c, _)| *c);
        self
    }

    /// Shift every entry forward by `base` cycles (saturating). Used by
    /// the machine to anchor a freshly-armed plan at the current bus time.
    pub fn rebase(mut self, base: u64) -> Self {
        for (c, _) in &mut self.entries {
            *c = c.saturating_add(base);
        }
        self
    }

    /// Remove and return every fault due at or before `cycle`.
    pub fn take_due(&mut self, cycle: u64) -> Vec<InjectedFault> {
        let split = self.entries.partition_point(|(c, _)| *c <= cycle);
        self.entries.drain(..split).map(|(_, f)| f).collect()
    }

    /// Number of faults still pending.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_due_is_ordered_and_consuming() {
        let mut p = FaultPlan::none()
            .at(100, InjectedFault::FreezeFirmware)
            .at(50, InjectedFault::KillCore)
            .at(200, InjectedFault::DropLink { cycles: 10 });
        assert_eq!(p.pending(), 3);
        let due = p.take_due(120);
        assert_eq!(
            due,
            vec![InjectedFault::KillCore, InjectedFault::FreezeFirmware]
        );
        assert_eq!(p.pending(), 1);
        assert!(p.take_due(120).is_empty());
        assert_eq!(p.take_due(200).len(), 1);
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(FaultKind::Panic.tag(), "panic");
        assert_eq!(FaultKind::Assertion.tag(), "assertion");
        assert_eq!(FaultKind::HardLockup.tag(), "lockup");
    }
}
