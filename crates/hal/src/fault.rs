//! Firmware fault taxonomy and host-side fault injection.
//!
//! Two different things are modelled here:
//!
//! * [`FaultKind`] / [`FaultRecord`] — faults *raised by the firmware
//!   itself* (kernel panics, failed assertions, memory faults). These are
//!   the explicit fault signals of the paper's threat model (§4.1) and are
//!   what the exception monitor observes.
//! * [`FaultPlan`] / [`InjectedFault`] — faults *injected by the test
//!   harness* (flash bit flips, hard lockups, debug-link drops) to exercise
//!   EOF's liveness watchdogs and state restoration without waiting for a
//!   fuzzing campaign to corrupt the device naturally.

/// Classification of a firmware-raised fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Kernel panic (unrecoverable error detected by the OS itself).
    Panic,
    /// Failed kernel assertion (`RT_ASSERT`, `configASSERT`, `__ASSERT`, …).
    Assertion,
    /// Illegal memory access escalated to a bus/mem fault.
    MemFault,
    /// Usage fault (illegal state transition, bad mode).
    UsageFault,
    /// Hard lockup: the core stops fetching entirely; even the debug port
    /// may lose the target. A reboot alone does not always recover it.
    HardLockup,
}

impl FaultKind {
    /// Short lower-case tag used in UART crash banners.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Assertion => "assertion",
            FaultKind::MemFault => "memfault",
            FaultKind::UsageFault => "usagefault",
            FaultKind::HardLockup => "lockup",
        }
    }
}

/// A fault captured by the machine when firmware raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Fault classification.
    pub kind: FaultKind,
    /// Message emitted by the failing kernel path.
    pub message: String,
    /// Symbolised call stack, innermost frame first.
    pub backtrace: Vec<String>,
    /// Program counter at the fault (the exception handler address).
    pub pc: u32,
    /// Cycle at which the fault was raised.
    pub at_cycle: u64,
}

/// A harness-injected hardware fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFault {
    /// Flip one bit in flash — models image corruption that survives reboot.
    FlashBitFlip {
        /// Flash byte offset.
        offset: u32,
        /// Bit index 0..=7.
        bit: u8,
    },
    /// Freeze the firmware: the PC stops changing (execution stall).
    FreezeFirmware,
    /// Kill the core entirely: debug reads start timing out.
    KillCore,
    /// Drop the debug link for `cycles` cycles (consumed by `eof-dap`).
    DropLink {
        /// Outage duration in cycles.
        cycles: u64,
    },
    /// Sustained debug-link flakiness: for `cycles` cycles, each debug
    /// operation is dropped with probability `drop_per_mille`/1000
    /// (consumed by `eof-dap`). Models the loose-cable / noisy-probe
    /// behaviour µAFL reports as a first-order operational cost.
    FlakyLink {
        /// Per-operation drop probability in parts per thousand (0..=1000).
        drop_per_mille: u16,
        /// Window duration in cycles.
        cycles: u64,
    },
    /// Supply brownout: the core is unresponsive for `cycles` cycles
    /// (debug operations time out), then execution resumes. No reset or
    /// reflash can shorten it — only waiting (or a power-cycle whose
    /// off-time outlasts the sag) gets the target back.
    Brownout {
        /// Sag duration in cycles.
        cycles: u64,
    },
    /// Burst of line noise on the UART: binary garbage appears in the
    /// log stream. The log monitor must neither crash on it nor report
    /// it as a target bug.
    UartGarbage,
}

impl InjectedFault {
    /// Stable lower-case label (telemetry counter suffixes, journals).
    pub fn label(&self) -> &'static str {
        match self {
            InjectedFault::FlashBitFlip { .. } => "flash_bit_flip",
            InjectedFault::FreezeFirmware => "freeze_firmware",
            InjectedFault::KillCore => "kill_core",
            InjectedFault::DropLink { .. } => "drop_link",
            InjectedFault::FlakyLink { .. } => "flaky_link",
            InjectedFault::Brownout { .. } => "brownout",
            InjectedFault::UartGarbage => "uart_garbage",
        }
    }

    /// Whether this fault acts on the debug *link* (consumed by the
    /// `eof-dap` transport) rather than on the core/peripherals
    /// (consumed by the machine's step loop).
    pub fn is_link_fault(&self) -> bool {
        matches!(
            self,
            InjectedFault::DropLink { .. } | InjectedFault::FlakyLink { .. }
        )
    }
}

/// A scheduled set of injected faults, each firing once at a given cycle.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(u64, InjectedFault)>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule `fault` to fire at absolute cycle `at_cycle`. Binary-search
    /// insertion keeps the list sorted without re-sorting the whole plan on
    /// every call; ties keep insertion order, matching the stable sort this
    /// replaces.
    pub fn at(mut self, at_cycle: u64, fault: InjectedFault) -> Self {
        let idx = self.entries.partition_point(|(c, _)| *c <= at_cycle);
        self.entries.insert(idx, (at_cycle, fault));
        self
    }

    /// Shift every entry forward by `base` cycles (saturating). Used by
    /// the machine to anchor a freshly-armed plan at the current bus time.
    pub fn rebase(mut self, base: u64) -> Self {
        for (c, _) in &mut self.entries {
            *c = c.saturating_add(base);
        }
        self
    }

    /// Remove and return every fault due at or before `cycle`.
    pub fn take_due(&mut self, cycle: u64) -> Vec<InjectedFault> {
        let split = self.entries.partition_point(|(c, _)| *c <= cycle);
        self.entries.drain(..split).map(|(_, f)| f).collect()
    }

    /// Remove and return the due *core/peripheral* faults, leaving link
    /// faults in place for the transport to collect.
    pub fn take_due_core(&mut self, cycle: u64) -> Vec<InjectedFault> {
        self.take_due_filtered(cycle, false)
    }

    /// Remove and return the due *link* faults, leaving core faults in
    /// place for the machine's step loop.
    pub fn take_due_link(&mut self, cycle: u64) -> Vec<InjectedFault> {
        self.take_due_filtered(cycle, true)
    }

    fn take_due_filtered(&mut self, cycle: u64, link: bool) -> Vec<InjectedFault> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.entries.len() && self.entries[i].0 <= cycle {
            if self.entries[i].1.is_link_fault() == link {
                out.push(self.entries.remove(i).1);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Number of faults still pending.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_due_is_ordered_and_consuming() {
        let mut p = FaultPlan::none()
            .at(100, InjectedFault::FreezeFirmware)
            .at(50, InjectedFault::KillCore)
            .at(200, InjectedFault::DropLink { cycles: 10 });
        assert_eq!(p.pending(), 3);
        let due = p.take_due(120);
        assert_eq!(
            due,
            vec![InjectedFault::KillCore, InjectedFault::FreezeFirmware]
        );
        assert_eq!(p.pending(), 1);
        assert!(p.take_due(120).is_empty());
        assert_eq!(p.take_due(200).len(), 1);
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(FaultKind::Panic.tag(), "panic");
        assert_eq!(FaultKind::Assertion.tag(), "assertion");
        assert_eq!(FaultKind::HardLockup.tag(), "lockup");
    }

    #[test]
    fn at_keeps_entries_sorted_with_stable_ties() {
        let mut p = FaultPlan::none()
            .at(50, InjectedFault::KillCore)
            .at(10, InjectedFault::FreezeFirmware)
            .at(50, InjectedFault::UartGarbage)
            .at(5, InjectedFault::Brownout { cycles: 3 });
        assert_eq!(
            p.take_due(u64::MAX),
            vec![
                InjectedFault::Brownout { cycles: 3 },
                InjectedFault::FreezeFirmware,
                InjectedFault::KillCore,
                InjectedFault::UartGarbage,
            ]
        );
    }

    #[test]
    fn link_and_core_faults_split_cleanly() {
        let mut p = FaultPlan::none()
            .at(10, InjectedFault::DropLink { cycles: 5 })
            .at(20, InjectedFault::FreezeFirmware)
            .at(
                30,
                InjectedFault::FlakyLink {
                    drop_per_mille: 500,
                    cycles: 100,
                },
            )
            .at(40, InjectedFault::KillCore);
        let core = p.take_due_core(25);
        assert_eq!(core, vec![InjectedFault::FreezeFirmware]);
        // The link fault at 10 is still there for the transport.
        let link = p.take_due_link(35);
        assert_eq!(
            link,
            vec![
                InjectedFault::DropLink { cycles: 5 },
                InjectedFault::FlakyLink {
                    drop_per_mille: 500,
                    cycles: 100,
                },
            ]
        );
        assert_eq!(p.pending(), 1);
    }

    #[test]
    fn link_fault_classification() {
        assert!(InjectedFault::DropLink { cycles: 1 }.is_link_fault());
        assert!(InjectedFault::FlakyLink {
            drop_per_mille: 1,
            cycles: 1
        }
        .is_link_fault());
        assert!(!InjectedFault::Brownout { cycles: 1 }.is_link_fault());
        assert!(!InjectedFault::UartGarbage.is_link_fault());
        assert!(!InjectedFault::KillCore.is_link_fault());
    }
}
