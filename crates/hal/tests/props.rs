//! Property tests of the hardware substrate.

use eof_hal::flash::{fnv1a, ERASED};
use eof_hal::{Endianness, Flash, Partition, PartitionTable, Ram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ram_write_read_roundtrip(
        offset in 0u32..0x0f00,
        data in proptest::collection::vec(any::<u8>(), 1..128)
    ) {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let addr = 0x2000_0000 + offset.min(0x1000 - data.len() as u32);
        ram.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        ram.read(addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn ram_out_of_bounds_never_panics(addr in any::<u32>(), len in 0usize..4096) {
        let ram = Ram::new(0x2000_0000, 0x1000);
        let mut buf = vec![0u8; len];
        let _ = ram.read(addr, &mut buf);
    }

    #[test]
    fn word_accessors_roundtrip_any_endianness(
        v32 in any::<u32>(),
        v64 in any::<u64>(),
        big in any::<bool>()
    ) {
        let e = if big { Endianness::Big } else { Endianness::Little };
        let mut ram = Ram::new(0, 64);
        ram.write_u32(0, v32, e).unwrap();
        ram.write_u64(8, v64, e).unwrap();
        prop_assert_eq!(ram.read_u32(0, e).unwrap(), v32);
        prop_assert_eq!(ram.read_u64(8, e).unwrap(), v64);
    }

    #[test]
    fn flash_partition_roundtrip(
        image in proptest::collection::vec(any::<u8>(), 1..512)
    ) {
        let table = PartitionTable::new(
            vec![Partition::new("kernel", 0x100, 0x400)],
            0x1000,
        ).unwrap();
        let mut flash = Flash::new(0x1000, table);
        flash.flash_partition("kernel", &image).unwrap();
        let back = flash.read_partition("kernel").unwrap();
        prop_assert_eq!(&back[..image.len()], &image[..]);
        prop_assert!(back[image.len()..].iter().all(|&b| b == ERASED));
        // Reflash is idempotent.
        let cs1 = flash.checksum(0x100, 0x400).unwrap();
        flash.flash_partition("kernel", &image).unwrap();
        prop_assert_eq!(flash.checksum(0x100, 0x400).unwrap(), cs1);
    }

    #[test]
    fn any_bit_flip_changes_partition_checksum(
        image in proptest::collection::vec(any::<u8>(), 16..256),
        flip_off in 0u32..256,
        bit in 0u8..8
    ) {
        let table = PartitionTable::new(
            vec![Partition::new("kernel", 0, 0x400)],
            0x1000,
        ).unwrap();
        let mut flash = Flash::new(0x1000, table);
        flash.flash_partition("kernel", &image).unwrap();
        let before = flash.checksum(0, 0x400).unwrap();
        flash.flip_bit(flip_off.min(image.len() as u32 - 1), bit).unwrap();
        prop_assert_ne!(flash.checksum(0, 0x400).unwrap(), before);
    }

    #[test]
    fn overlapping_partitions_always_rejected(
        a_off in 0u32..100, a_size in 1u32..100,
        b_delta in 0u32..50, b_size in 1u32..100
    ) {
        // b starts inside a.
        let b_off = a_off + b_delta % a_size;
        let r = PartitionTable::new(
            vec![
                Partition::new("a", a_off, a_size),
                Partition::new("b", b_off, b_size),
            ],
            0x10000,
        );
        prop_assert!(r.is_err());
    }

    #[test]
    fn fnv1a_sensitivity(data in proptest::collection::vec(any::<u8>(), 1..64), i in 0usize..64) {
        let mut mutated = data.clone();
        let idx = i % data.len();
        mutated[idx] ^= 0x01;
        prop_assert_ne!(fnv1a(&data), fnv1a(&mutated));
    }
}
