//! Vectored debug-port transactions.
//!
//! The per-exec hot path — prog upload, coverage drain, sync-point
//! breakpoint churn — is a string of small debug operations, and in the
//! scalar protocol every one of them pays the full round-trip tax: link
//! latency, its own DR scan walk, its own access-port setup, and its own
//! window of exposure to link faults. Real probes batch: FTDI MPSSE
//! block shifts, CMSIS-DAP packed transfers and AHB-AP address
//! auto-increment all exist because hardware round trips dominate
//! on-target fuzzing throughput (the paper's §5.5; EmbedFuzz and
//! Ember-IO in PAPERS.md make the same argument from opposite ends).
//!
//! A [`Txn`] queues operations host-side and submits them as **one**
//! link transaction:
//!
//! * one [`LinkConfig::latency`](crate::LinkConfig) charge and one TAP
//!   scan for the whole batch, with the bulk payload shifted in block
//!   mode (the probe streams from its FIFO instead of pacing every word
//!   from the host);
//! * one fault-injection point — the submit itself. Link faults can
//!   only refuse the batch *before* anything applies, so a dropped
//!   transaction is replayed whole and partial application is
//!   impossible by construction (see `DebugTransport::run_txn`);
//! * every queued operation is validated against the target before any
//!   is applied: a bad address or an over-budget breakpoint refuses the
//!   whole batch with the target untouched.

use std::sync::OnceLock;

/// Wire-descriptor bits per queued operation (command, address, length).
pub const TXN_HEADER_BITS: u64 = 32;

/// Block-mode payload shift rate: TCK cycles per core cycle. The scalar
/// path paces every word from the host at 1:8 ([`crate::tap`]); a
/// vectored batch streams its payload from the probe FIFO without
/// per-word turnarounds, an 8× faster effective shift.
pub const BLOCK_TCK_PER_CORE_CYCLE: u64 = 64;

/// Process-wide default for the vectored-transaction knob: `EOF_VECTORED`
/// unset or any value but `"0"` enables vectoring; `EOF_VECTORED=0`
/// selects the scalar fallback path everywhere the default is consulted.
pub fn vectored_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("EOF_VECTORED")
            .map(|v| v != "0")
            .unwrap_or(true)
    })
}

/// Process-wide default for the snapshot/delta-restore knob:
/// `EOF_SNAPSHOT` unset or any value but `"0"` enables the snapshot
/// fast path; `EOF_SNAPSHOT=0` selects the reboot/reflash-only fallback
/// everywhere the default is consulted.
pub fn snapshot_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("EOF_SNAPSHOT")
            .map(|v| v != "0")
            .unwrap_or(true)
    })
}

/// Process-wide default for the cmplog (Redqueen/I2S) knob: unlike the
/// two above, this one defaults **off** — `EOF_CMPLOG` unset or `"0"`
/// leaves campaigns byte-identical to pre-cmplog ones; any other value
/// arms the comparison-operand channel everywhere the default is
/// consulted.
pub fn cmplog_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("EOF_CMPLOG")
            .map(|v| v != "0")
            .unwrap_or(false)
    })
}

/// One queued debug operation inside a [`Txn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Halt the core.
    Halt,
    /// Resume the core (non-blocking).
    Resume,
    /// Read `len` bytes of target RAM at `addr`.
    ReadMem {
        /// RAM address.
        addr: u32,
        /// Bytes to read.
        len: u32,
    },
    /// Write bytes into target RAM at `addr`.
    WriteMem {
        /// RAM address.
        addr: u32,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Read the program counter.
    ReadPc,
    /// Install a hardware breakpoint.
    SetBreakpoint {
        /// Breakpoint address.
        addr: u32,
    },
    /// Remove a hardware breakpoint.
    ClearBreakpoint {
        /// Breakpoint address.
        addr: u32,
    },
    /// Target-side checksum of a flash partition (core-independent).
    FlashChecksum {
        /// Partition name.
        partition: String,
    },
    /// Program a flash partition (core-independent).
    FlashWrite {
        /// Partition name.
        partition: String,
        /// Image bytes.
        image: Vec<u8>,
    },
    /// Per-sector checksums of a flash partition (core-independent):
    /// the damage-localisation step of sector-delta reflash. The host
    /// states how many sector checksums it expects back so the response
    /// payload is metered honestly.
    FlashSectorChecksums {
        /// Partition name.
        partition: String,
        /// Number of sectors the partition holds (response size).
        sectors: u32,
    },
    /// Rewrite a sparse set of sectors inside a partition
    /// (core-independent). Each entry is `(sector index, bytes)` — the
    /// sector-delta reflash's write step: only the sectors that failed
    /// verification travel the wire.
    FlashWriteSectors {
        /// Partition name.
        partition: String,
        /// Sectors to rewrite, in ascending index order.
        sectors: Vec<(u32, Vec<u8>)>,
    },
    /// Hardware reset (core-independent; answers even when dead).
    ResetTarget,
    /// Scatter-write a set of RAM pages in one burst — the snapshot
    /// delta restore's bulk carrier. Each entry is `(addr, bytes)`.
    WritePages {
        /// Pages to write, in ascending address order.
        pages: Vec<(u32, Vec<u8>)>,
    },
    /// Restore the core's register file from the loaded image and
    /// restart it at the reset vector *without* a hardware reset — RAM
    /// keeps its (just delta-restored) contents and no reset latency is
    /// paid. The snapshot restore's final step.
    RestoreCore,
    /// Atomically drain **and reset** a record ring (the cmplog
    /// channel): read `header + capacity × record_bytes` at `base`, then
    /// zero the count and overflow words — one operation, so a link
    /// fault can only lose the whole drain (replayed whole), never leave
    /// the ring half-reset under a stale count.
    DrainRing {
        /// Ring header address.
        base: u32,
        /// Maximum records the ring holds.
        capacity: u32,
        /// Bytes per record.
        record_bytes: u32,
    },
    /// Atomically drain the hardware trace FIFO: the 12-byte trace
    /// header streams back first, then exactly the live stream bytes it
    /// announced, and the FIFO is reset — one operation, so a link
    /// fault can only lose the whole drain (replayed whole; the host
    /// decoder's stream state is reset alongside), never split a packet
    /// across a retry. The FIFO lives in the debug subsystem, not
    /// target RAM, so the op is addressless.
    DrainTrace,
}

impl TxnOp {
    /// Whether the operation needs a live core. Flash and reset lines
    /// answer independently of core state, exactly like their scalar
    /// counterparts ([`crate::DebugTransport::flash_partition`] & co).
    pub fn needs_core(&self) -> bool {
        !matches!(
            self,
            TxnOp::FlashChecksum { .. }
                | TxnOp::FlashWrite { .. }
                | TxnOp::FlashSectorChecksums { .. }
                | TxnOp::FlashWriteSectors { .. }
                | TxnOp::ResetTarget
        )
    }

    /// Bulk payload bits this operation shifts through the probe
    /// (beyond its fixed command descriptor).
    pub fn payload_bits(&self) -> u64 {
        match self {
            TxnOp::ReadMem { len, .. } => *len as u64 * 8,
            TxnOp::WriteMem { data, .. } => data.len() as u64 * 8,
            TxnOp::FlashWrite { image, .. } => image.len() as u64 * 8,
            TxnOp::FlashChecksum { .. } => 64,
            TxnOp::FlashSectorChecksums { sectors, .. } => *sectors as u64 * 64,
            // Like WritePages: a 32-bit sector descriptor ahead of each
            // sector's bytes.
            TxnOp::FlashWriteSectors { sectors, .. } => sectors
                .iter()
                .map(|(_, data)| 32 + data.len() as u64 * 8)
                .sum(),
            TxnOp::ReadPc => 32,
            // Each page carries a 32-bit address descriptor ahead of its
            // bytes; the register-file restore ships PC + status words.
            TxnOp::WritePages { pages } => pages
                .iter()
                .map(|(_, data)| 32 + data.len() as u64 * 8)
                .sum(),
            TxnOp::RestoreCore => 64,
            // A 32-bit ring descriptor goes out and the 12-byte header
            // always streams back. The records are a probe-side
            // dependent read — the transport charges their stream bits
            // at apply time, when the live count is known, so a
            // mostly-empty ring costs a dozen bytes rather than the
            // full capacity image.
            TxnOp::DrainRing { .. } => 32 + 12 * 8,
            // Same dependent-read shape as DrainRing: descriptor out,
            // 12-byte trace header back, live stream bytes charged at
            // apply time when the FIFO's used count is known.
            TxnOp::DrainTrace => 32 + 12 * 8,
            TxnOp::Halt
            | TxnOp::Resume
            | TxnOp::SetBreakpoint { .. }
            | TxnOp::ClearBreakpoint { .. }
            | TxnOp::ResetTarget => 0,
        }
    }
}

/// Result of one [`TxnOp`], in queue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnResult {
    /// The operation completed with nothing to return.
    Done,
    /// Bytes read by a [`TxnOp::ReadMem`].
    Bytes(Vec<u8>),
    /// Program counter read by a [`TxnOp::ReadPc`].
    Pc(u32),
    /// Checksum computed by a [`TxnOp::FlashChecksum`].
    Checksum(u64),
    /// Per-sector checksums computed by a [`TxnOp::FlashSectorChecksums`].
    Checksums(Vec<u64>),
}

/// A host-side batch of debug operations, submitted as one link
/// transaction via `DebugTransport::run_txn`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Txn {
    ops: Vec<TxnOp>,
}

impl Txn {
    /// An empty transaction.
    pub fn new() -> Self {
        Txn::default()
    }

    /// Queued operations, in submission order.
    pub fn ops(&self) -> &[TxnOp] {
        &self.ops
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing is queued (submitting an empty txn is free).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether any queued operation needs a live core.
    pub fn needs_core(&self) -> bool {
        self.ops.iter().any(TxnOp::needs_core)
    }

    /// Total bulk payload bits across the batch.
    pub fn payload_bits(&self) -> u64 {
        self.ops.iter().map(TxnOp::payload_bits).sum()
    }

    /// Total command-descriptor bits across the batch.
    pub fn header_bits(&self) -> u64 {
        self.ops.len() as u64 * TXN_HEADER_BITS
    }

    /// Queue an arbitrary operation.
    pub fn push(&mut self, op: TxnOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Queue a halt.
    pub fn halt(&mut self) -> &mut Self {
        self.push(TxnOp::Halt)
    }

    /// Queue a resume.
    pub fn resume(&mut self) -> &mut Self {
        self.push(TxnOp::Resume)
    }

    /// Queue a memory read of `len` bytes.
    pub fn read_mem(&mut self, addr: u32, len: u32) -> &mut Self {
        self.push(TxnOp::ReadMem { addr, len })
    }

    /// Queue a memory write.
    pub fn write_mem(&mut self, addr: u32, data: &[u8]) -> &mut Self {
        self.push(TxnOp::WriteMem {
            addr,
            data: data.to_vec(),
        })
    }

    /// Queue a PC read.
    pub fn read_pc(&mut self) -> &mut Self {
        self.push(TxnOp::ReadPc)
    }

    /// Queue a breakpoint install.
    pub fn set_breakpoint(&mut self, addr: u32) -> &mut Self {
        self.push(TxnOp::SetBreakpoint { addr })
    }

    /// Queue a breakpoint removal.
    pub fn clear_breakpoint(&mut self, addr: u32) -> &mut Self {
        self.push(TxnOp::ClearBreakpoint { addr })
    }

    /// Queue a flash checksum.
    pub fn flash_checksum(&mut self, partition: &str) -> &mut Self {
        self.push(TxnOp::FlashChecksum {
            partition: partition.to_string(),
        })
    }

    /// Queue a per-sector partition checksum; `sectors` is the count the
    /// host expects back (it knows the partition size).
    pub fn flash_sector_checksums(&mut self, partition: &str, sectors: u32) -> &mut Self {
        self.push(TxnOp::FlashSectorChecksums {
            partition: partition.to_string(),
            sectors,
        })
    }

    /// Queue a sparse sector rewrite inside a partition.
    pub fn flash_write_sectors(
        &mut self,
        partition: &str,
        sectors: Vec<(u32, Vec<u8>)>,
    ) -> &mut Self {
        self.push(TxnOp::FlashWriteSectors {
            partition: partition.to_string(),
            sectors,
        })
    }

    /// Queue a whole-partition flash program.
    pub fn flash_write(&mut self, partition: &str, image: &[u8]) -> &mut Self {
        self.push(TxnOp::FlashWrite {
            partition: partition.to_string(),
            image: image.to_vec(),
        })
    }

    /// Queue a target reset.
    pub fn reset_target(&mut self) -> &mut Self {
        self.push(TxnOp::ResetTarget)
    }

    /// Queue a scatter-write of RAM pages.
    pub fn write_pages(&mut self, pages: Vec<(u32, Vec<u8>)>) -> &mut Self {
        self.push(TxnOp::WritePages { pages })
    }

    /// Queue a register-file restore + restart at the reset vector.
    pub fn restore_core(&mut self) -> &mut Self {
        self.push(TxnOp::RestoreCore)
    }

    /// Queue an atomic ring drain-and-reset (the cmplog channel).
    pub fn drain_ring(&mut self, base: u32, capacity: u32, record_bytes: u32) -> &mut Self {
        self.push(TxnOp::DrainRing {
            base,
            capacity,
            record_bytes,
        })
    }

    /// Queue an atomic trace-FIFO drain-and-reset (the hardware-trace
    /// coverage channel).
    pub fn drain_trace(&mut self) -> &mut Self {
        self.push(TxnOp::DrainTrace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_queues_in_order() {
        let mut t = Txn::new();
        t.halt()
            .read_mem(0x100, 8)
            .write_mem(0x200, &[1, 2])
            .resume();
        assert_eq!(t.len(), 4);
        assert_eq!(t.ops()[0], TxnOp::Halt);
        assert_eq!(
            t.ops()[1],
            TxnOp::ReadMem {
                addr: 0x100,
                len: 8
            }
        );
        assert_eq!(
            t.ops()[2],
            TxnOp::WriteMem {
                addr: 0x200,
                data: vec![1, 2]
            }
        );
        assert_eq!(t.ops()[3], TxnOp::Resume);
    }

    #[test]
    fn payload_and_header_accounting() {
        let mut t = Txn::new();
        t.read_mem(0, 12).write_mem(0, &[0u8; 4]).set_breakpoint(4);
        assert_eq!(t.payload_bits(), 12 * 8 + 4 * 8);
        assert_eq!(t.header_bits(), 3 * TXN_HEADER_BITS);
        assert!(t.needs_core());
    }

    #[test]
    fn flash_ops_are_core_independent() {
        let mut t = Txn::new();
        t.flash_checksum("kernel")
            .flash_write("kernel", b"IMG!")
            .reset_target();
        assert!(!t.needs_core());
        t.read_pc();
        assert!(t.needs_core());
    }

    #[test]
    fn snapshot_ops_account_and_need_core() {
        let mut t = Txn::new();
        t.write_pages(vec![(0x100, vec![0u8; 256]), (0x300, vec![0u8; 16])])
            .restore_core();
        assert!(t.needs_core());
        assert_eq!(
            t.payload_bits(),
            (32 + 256 * 8) + (32 + 16 * 8) + 64,
            "each page ships a 32-bit descriptor + bytes; restore-core ships 64"
        );
        assert_eq!(t.header_bits(), 2 * TXN_HEADER_BITS);
    }

    #[test]
    fn drain_ring_accounts_and_needs_core() {
        let mut t = Txn::new();
        t.drain_ring(0x2000_5100, 128, 24);
        assert!(t.needs_core());
        assert_eq!(
            t.payload_bits(),
            32 + 12 * 8,
            "descriptor out, header back; live records are charged at apply time"
        );
    }

    #[test]
    fn drain_trace_accounts_and_needs_core() {
        let mut t = Txn::new();
        t.drain_trace();
        assert!(t.needs_core());
        assert_eq!(
            t.payload_bits(),
            32 + 12 * 8,
            "descriptor out, trace header back; live stream bytes are charged at apply time"
        );
    }

    #[test]
    fn empty_txn() {
        let t = Txn::new();
        assert!(t.is_empty());
        assert_eq!(t.payload_bits(), 0);
        assert_eq!(t.header_bits(), 0);
    }
}
