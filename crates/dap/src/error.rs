//! Debug-link error types.

use eof_hal::HalError;
use std::fmt;

/// Errors surfaced by the debug access port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DapError {
    /// The operation timed out: the target never answered. This is the
    /// signal Algorithm 1's first watchdog keys on — it fires when the
    /// system "has either failed to boot correctly or has become entirely
    /// unresponsive".
    ConnectionTimeout {
        /// Cycles spent waiting before giving up.
        waited: u64,
    },
    /// The physical link is down (cable fault / probe outage injection).
    LinkDown,
    /// The target rejected the operation (bad address, bad state, …).
    Target(HalError),
    /// A protocol-level framing error (bad RSP checksum, unknown OpenOCD
    /// command, …).
    Protocol(String),
}

impl fmt::Display for DapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DapError::ConnectionTimeout { waited } => {
                write!(f, "debug connection timeout after {waited} cycles")
            }
            DapError::LinkDown => f.write_str("debug link down"),
            DapError::Target(e) => write!(f, "target error: {e}"),
            DapError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for DapError {}

impl From<HalError> for DapError {
    fn from(e: HalError) -> Self {
        DapError::Target(e)
    }
}

impl DapError {
    /// Whether this error indicates the *connection* (rather than the
    /// request) failed — the predicate `ConnectionTimeout(DebugPipe)` in
    /// Algorithm 1.
    pub fn is_connection_loss(&self) -> bool {
        matches!(
            self,
            DapError::ConnectionTimeout { .. } | DapError::LinkDown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_loss_classification() {
        assert!(DapError::ConnectionTimeout { waited: 10 }.is_connection_loss());
        assert!(DapError::LinkDown.is_connection_loss());
        assert!(!DapError::Target(HalError::NoFirmware).is_connection_loss());
        assert!(!DapError::Protocol("x".into()).is_connection_loss());
    }

    #[test]
    fn from_hal_error() {
        let e: DapError = HalError::NoFirmware.into();
        assert!(matches!(e, DapError::Target(_)));
    }
}
