//! GDB Remote Serial Protocol codec and server.
//!
//! GDBFuzz and EOF both ride GDB's remote protocol; the paper's Algorithm 1
//! issues `-exec-continue` and reads the PC through this layer. Packets
//! are framed as `$<data>#<2-hex-checksum>` where the checksum is the
//! modulo-256 sum of the data bytes. The server implements the commands a
//! fuzzer needs:
//!
//! | packet | meaning |
//! |---|---|
//! | `?` | halt reason |
//! | `p20` | read PC (register 0x20 here) |
//! | `m ADDR,LEN` | read memory (hex) |
//! | `M ADDR,LEN:HEX` | write memory |
//! | `Z0,ADDR,4` / `z0,ADDR,4` | set / clear breakpoint |
//! | `c` | continue (bounded by the server's run budget) |
//! | `R` | restart target |
//! | `vTxn:OP;OP;…` | vectored transaction (see below) |
//!
//! The `vTxn` packet is the wire form of a [`Txn`] (modelled on GDB's
//! `vFlash`/`vCont` multi-action family): operations separated by `;`,
//! each a compact command — `h` halt, `r` resume, `mADDR,LEN` read,
//! `MADDR,LEN:HEX` write, `p` read PC, `ZADDR`/`zADDR` breakpoints,
//! `FcNAME` flash checksum, `FwNAME:HEX` flash write, `R` reset,
//! `WADDR:HEX,ADDR:HEX,…` multi-page scatter write, `G` restore core
//! (restart from the reset vector without a hardware reset),
//! `DBASE,CAP,RECBYTES` atomic ring drain-and-reset (cmplog),
//! `T` atomic trace-FIFO drain-and-reset (hardware-trace coverage).
//! The reply is the `;`-joined per-op results in queue order: `OK`,
//! hex bytes, `P`+8-hex PC, or `C`+16-hex checksum.

use crate::error::DapError;
use crate::transport::{DebugTransport, LinkEvent};
use crate::txn::{Txn, TxnOp, TxnResult};

/// Compute the RSP checksum of packet data.
pub fn checksum(data: &str) -> u8 {
    data.bytes().fold(0u8, |a, b| a.wrapping_add(b))
}

/// Frame data into a `$data#cs` packet.
pub fn frame_packet(data: &str) -> String {
    format!("${}#{:02x}", data, checksum(data))
}

/// Parse and verify a framed packet, returning the payload.
pub fn parse_packet(raw: &str) -> Result<&str, DapError> {
    let raw = raw.trim();
    if !raw.starts_with('$') {
        return Err(DapError::Protocol("packet must start with '$'".into()));
    }
    let hash = raw
        .rfind('#')
        .ok_or_else(|| DapError::Protocol("packet missing '#'".into()))?;
    let data = &raw[1..hash];
    let cs_str = &raw[hash + 1..];
    let cs = u8::from_str_radix(cs_str, 16)
        .map_err(|_| DapError::Protocol(format!("bad checksum field {cs_str:?}")))?;
    if cs != checksum(data) {
        return Err(DapError::Protocol(format!(
            "checksum mismatch: got {cs:02x}, want {:02x}",
            checksum(data)
        )));
    }
    Ok(data)
}

/// An RSP endpoint bound to a transport.
pub struct RspServer {
    transport: DebugTransport,
    /// Cycle budget for each `c` (continue) packet.
    pub run_budget: u64,
}

impl RspServer {
    /// Wrap a transport with a default continue budget.
    pub fn new(transport: DebugTransport) -> Self {
        RspServer {
            transport,
            run_budget: 100_000,
        }
    }

    /// The underlying transport.
    pub fn transport(&self) -> &DebugTransport {
        &self.transport
    }

    /// Mutable transport access.
    pub fn transport_mut(&mut self) -> &mut DebugTransport {
        &mut self.transport
    }

    /// Handle one framed packet, returning the framed reply.
    pub fn handle(&mut self, raw: &str) -> Result<String, DapError> {
        let data = parse_packet(raw)?;
        let reply = self.dispatch(data)?;
        Ok(frame_packet(&reply))
    }

    fn dispatch(&mut self, data: &str) -> Result<String, DapError> {
        match data {
            "?" => Ok("S05".into()),
            "p20" => {
                let pc = self.transport.read_pc()?;
                // Registers travel little-endian in RSP.
                Ok(hex_encode(&pc.to_le_bytes()))
            }
            "c" => match self.transport.continue_until_halt(self.run_budget)? {
                LinkEvent::BreakpointHit { .. } => Ok("S05".into()),
                LinkEvent::StillRunning => Ok("S00".into()),
                LinkEvent::TargetDead => Ok("X09".into()),
                LinkEvent::WatchdogReset => Ok("S12".into()),
            },
            "R" => {
                self.transport.reset_target()?;
                Ok("OK".into())
            }
            _ if data.starts_with('m') => {
                let (addr, len) = parse_addr_len(&data[1..])?;
                let mut buf = vec![0u8; len];
                self.transport.read_mem(addr, &mut buf)?;
                Ok(hex_encode(&buf))
            }
            _ if data.starts_with('M') => {
                let colon = data
                    .find(':')
                    .ok_or_else(|| DapError::Protocol("M packet missing ':'".into()))?;
                let (addr, len) = parse_addr_len(&data[1..colon])?;
                let bytes = hex_decode(&data[colon + 1..])?;
                if bytes.len() != len {
                    return Err(DapError::Protocol(format!(
                        "M packet length mismatch: header {len}, payload {}",
                        bytes.len()
                    )));
                }
                self.transport.write_mem(addr, &bytes)?;
                Ok("OK".into())
            }
            _ if data.starts_with("Z0,") => {
                let addr = parse_hex_field(data[3..].split(',').next().unwrap_or(""))?;
                self.transport.set_breakpoint(addr)?;
                Ok("OK".into())
            }
            _ if data.starts_with("z0,") => {
                let addr = parse_hex_field(data[3..].split(',').next().unwrap_or(""))?;
                self.transport.clear_breakpoint(addr)?;
                Ok("OK".into())
            }
            _ if data.starts_with("vTxn:") => {
                let txn = decode_txn(data)?;
                let results = self.transport.run_txn(&txn)?;
                Ok(encode_txn_reply(&results))
            }
            other => Err(DapError::Protocol(format!("unsupported packet {other:?}"))),
        }
    }
}

/// Encode a transaction as a `vTxn:` packet payload (unframed).
pub fn encode_txn(txn: &Txn) -> Result<String, DapError> {
    let mut parts = Vec::with_capacity(txn.len());
    for op in txn.ops() {
        parts.push(encode_txn_op(op)?);
    }
    Ok(format!("vTxn:{}", parts.join(";")))
}

fn encode_txn_op(op: &TxnOp) -> Result<String, DapError> {
    let check_name = |name: &str| -> Result<(), DapError> {
        if name.is_empty() || name.contains([';', ':', '#', '$']) {
            return Err(DapError::Protocol(format!(
                "partition name {name:?} is not wire-safe"
            )));
        }
        Ok(())
    };
    Ok(match op {
        TxnOp::Halt => "h".into(),
        TxnOp::Resume => "r".into(),
        TxnOp::ReadMem { addr, len } => format!("m{addr:x},{len:x}"),
        TxnOp::WriteMem { addr, data } => {
            format!("M{addr:x},{:x}:{}", data.len(), hex_encode(data))
        }
        TxnOp::ReadPc => "p".into(),
        TxnOp::SetBreakpoint { addr } => format!("Z{addr:x}"),
        TxnOp::ClearBreakpoint { addr } => format!("z{addr:x}"),
        TxnOp::FlashChecksum { partition } => {
            check_name(partition)?;
            format!("Fc{partition}")
        }
        TxnOp::FlashWrite { partition, image } => {
            check_name(partition)?;
            format!("Fw{partition}:{}", hex_encode(image))
        }
        TxnOp::FlashSectorChecksums { partition, sectors } => {
            check_name(partition)?;
            format!("Fs{sectors:x},{partition}")
        }
        TxnOp::FlashWriteSectors { partition, sectors } => {
            check_name(partition)?;
            let body = sectors
                .iter()
                .map(|(idx, data)| format!("{idx:x}:{}", hex_encode(data)))
                .collect::<Vec<_>>()
                .join(",");
            format!("FS{partition}:{body}")
        }
        TxnOp::ResetTarget => "R".into(),
        TxnOp::WritePages { pages } => {
            let body = pages
                .iter()
                .map(|(addr, data)| format!("{addr:x}:{}", hex_encode(data)))
                .collect::<Vec<_>>()
                .join(",");
            format!("W{body}")
        }
        TxnOp::RestoreCore => "G".into(),
        TxnOp::DrainRing {
            base,
            capacity,
            record_bytes,
        } => format!("D{base:x},{capacity:x},{record_bytes:x}"),
        TxnOp::DrainTrace => "T".into(),
    })
}

/// Decode a `vTxn:` packet payload back into a transaction.
pub fn decode_txn(data: &str) -> Result<Txn, DapError> {
    let body = data
        .strip_prefix("vTxn:")
        .ok_or_else(|| DapError::Protocol("not a vTxn packet".into()))?;
    let mut txn = Txn::new();
    if body.is_empty() {
        return Ok(txn);
    }
    for item in body.split(';') {
        txn.push(decode_txn_op(item)?);
    }
    Ok(txn)
}

fn decode_txn_op(item: &str) -> Result<TxnOp, DapError> {
    let bad = || DapError::Protocol(format!("bad vTxn op {item:?}"));
    Ok(match item {
        "h" => TxnOp::Halt,
        "r" => TxnOp::Resume,
        "p" => TxnOp::ReadPc,
        "R" => TxnOp::ResetTarget,
        "G" => TxnOp::RestoreCore,
        "T" => TxnOp::DrainTrace,
        "W" => TxnOp::WritePages { pages: Vec::new() },
        _ if item.starts_with('m') => {
            let (addr, len) = parse_addr_len(&item[1..])?;
            TxnOp::ReadMem {
                addr,
                len: len as u32,
            }
        }
        _ if item.starts_with('M') => {
            let colon = item.find(':').ok_or_else(bad)?;
            let (addr, len) = parse_addr_len(&item[1..colon])?;
            let data = hex_decode(&item[colon + 1..])?;
            if data.len() != len {
                return Err(DapError::Protocol(format!(
                    "vTxn write length mismatch: header {len}, payload {}",
                    data.len()
                )));
            }
            TxnOp::WriteMem { addr, data }
        }
        _ if item.starts_with('Z') => TxnOp::SetBreakpoint {
            addr: parse_hex_field(&item[1..])?,
        },
        _ if item.starts_with('z') => TxnOp::ClearBreakpoint {
            addr: parse_hex_field(&item[1..])?,
        },
        _ if item.starts_with("Fc") => TxnOp::FlashChecksum {
            partition: item[2..].to_string(),
        },
        _ if item.starts_with("Fs") => {
            let (sectors, partition) = item[2..].split_once(',').ok_or_else(bad)?;
            TxnOp::FlashSectorChecksums {
                partition: partition.to_string(),
                sectors: parse_hex_field(sectors)?,
            }
        }
        _ if item.starts_with("FS") => {
            let colon = item.find(':').ok_or_else(bad)?;
            let body = &item[colon + 1..];
            let sectors = if body.is_empty() {
                Vec::new()
            } else {
                body.split(',')
                    .map(|sector| {
                        let sep = sector.find(':').ok_or_else(bad)?;
                        Ok((
                            parse_hex_field(&sector[..sep])?,
                            hex_decode(&sector[sep + 1..])?,
                        ))
                    })
                    .collect::<Result<Vec<_>, DapError>>()?
            };
            TxnOp::FlashWriteSectors {
                partition: item[2..colon].to_string(),
                sectors,
            }
        }
        _ if item.starts_with("Fw") => {
            let colon = item.find(':').ok_or_else(bad)?;
            TxnOp::FlashWrite {
                partition: item[2..colon].to_string(),
                image: hex_decode(&item[colon + 1..])?,
            }
        }
        _ if item.starts_with('D') => {
            let mut fields = item[1..].split(',');
            let mut next = || fields.next().ok_or_else(bad).and_then(parse_hex_field);
            let (base, capacity, record_bytes) = (next()?, next()?, next()?);
            if fields.next().is_some() {
                return Err(bad());
            }
            TxnOp::DrainRing {
                base,
                capacity,
                record_bytes,
            }
        }
        _ if item.starts_with('W') => {
            let pages = item[1..]
                .split(',')
                .map(|page| {
                    let colon = page.find(':').ok_or_else(bad)?;
                    Ok((
                        parse_hex_field(&page[..colon])?,
                        hex_decode(&page[colon + 1..])?,
                    ))
                })
                .collect::<Result<Vec<_>, DapError>>()?;
            TxnOp::WritePages { pages }
        }
        _ => return Err(bad()),
    })
}

/// Encode per-op results as a `vTxn` reply payload.
pub fn encode_txn_reply(results: &[TxnResult]) -> String {
    results
        .iter()
        .map(|r| match r {
            TxnResult::Done => "OK".to_string(),
            TxnResult::Bytes(b) => hex_encode(b),
            TxnResult::Pc(pc) => format!("P{pc:08x}"),
            TxnResult::Checksum(cs) => format!("C{cs:016x}"),
            TxnResult::Checksums(css) => format!(
                "S{}",
                css.iter()
                    .map(|cs| format!("{cs:016x}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Decode a `vTxn` reply payload back into per-op results.
pub fn decode_txn_reply(data: &str) -> Result<Vec<TxnResult>, DapError> {
    if data.is_empty() {
        return Ok(Vec::new());
    }
    data.split(';')
        .map(|item| {
            Ok(match item {
                "OK" => TxnResult::Done,
                _ if item.starts_with('P') => TxnResult::Pc(parse_hex_field(&item[1..])?),
                _ if item.starts_with('C') => TxnResult::Checksum(
                    u64::from_str_radix(&item[1..], 16)
                        .map_err(|_| DapError::Protocol(format!("bad checksum reply {item:?}")))?,
                ),
                "S" => TxnResult::Checksums(Vec::new()),
                _ if item.starts_with('S') => TxnResult::Checksums(
                    item[1..]
                        .split(',')
                        .map(|cs| {
                            u64::from_str_radix(cs, 16).map_err(|_| {
                                DapError::Protocol(format!("bad sector checksum reply {cs:?}"))
                            })
                        })
                        .collect::<Result<Vec<_>, DapError>>()?,
                ),
                _ => TxnResult::Bytes(hex_decode(item)?),
            })
        })
        .collect()
}

fn parse_addr_len(s: &str) -> Result<(u32, usize), DapError> {
    let (a, l) = s
        .split_once(',')
        .ok_or_else(|| DapError::Protocol(format!("expected ADDR,LEN in {s:?}")))?;
    Ok((parse_hex_field(a)?, parse_hex_field(l)? as usize))
}

fn parse_hex_field(s: &str) -> Result<u32, DapError> {
    u32::from_str_radix(s, 16).map_err(|_| DapError::Protocol(format!("bad hex field {s:?}")))
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>, DapError> {
    if !s.len().is_multiple_of(2) {
        return Err(DapError::Protocol("odd hex payload".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| DapError::Protocol(format!("bad hex at {i}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LinkConfig;
    use eof_hal::{BoardCatalog, FirmwareLoader, Machine};

    struct Hopper {
        pc: u32,
        symbols: eof_hal::SymbolTable,
    }

    impl eof_hal::Firmware for Hopper {
        fn name(&self) -> &str {
            "hopper"
        }
        fn symbols(&self) -> &eof_hal::SymbolTable {
            &self.symbols
        }
        fn step(&mut self, _bus: &mut eof_hal::Bus) -> eof_hal::StepResult {
            self.pc += 4;
            eof_hal::StepResult::Running {
                pc: self.pc,
                cycles: 1,
            }
        }
        fn on_reset(&mut self, _bus: &mut eof_hal::Bus) {
            self.pc = 0x4000;
        }
        fn freeze(&mut self) {}
    }

    fn server() -> RspServer {
        let loader: FirmwareLoader = Box::new(|_, _| {
            Ok(Box::new(Hopper {
                pc: 0x4000,
                symbols: eof_hal::SymbolTable::new(),
            }))
        });
        let mut m = Machine::new(BoardCatalog::stm32h745_nucleo(), loader);
        m.reset();
        RspServer::new(DebugTransport::attach(m, LinkConfig::default()))
    }

    #[test]
    fn framing_roundtrip() {
        let p = frame_packet("m24000000,10");
        assert!(p.starts_with('$'));
        assert_eq!(parse_packet(&p).unwrap(), "m24000000,10");
    }

    #[test]
    fn checksum_rejects_corruption() {
        let mut p = frame_packet("c");
        p.replace_range(1..2, "x");
        assert!(parse_packet(&p).is_err());
    }

    #[test]
    fn known_checksum_vector() {
        // "OK" = 0x4f + 0x4b = 0x9a.
        assert_eq!(checksum("OK"), 0x9a);
        assert_eq!(frame_packet("OK"), "$OK#9a");
    }

    #[test]
    fn memory_write_then_read() {
        let mut s = server();
        let reply = s.handle(&frame_packet("M24000100,4:deadbeef")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "OK");
        let reply = s.handle(&frame_packet("m24000100,4")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "deadbeef");
    }

    #[test]
    fn halt_reason() {
        let mut s = server();
        let reply = s.handle(&frame_packet("?")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "S05");
    }

    #[test]
    fn breakpoint_continue_pc() {
        let mut s = server();
        s.handle(&frame_packet("Z0,4010,4")).unwrap();
        let reply = s.handle(&frame_packet("c")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "S05");
        let pc_reply = s.handle(&frame_packet("p20")).unwrap();
        let hex = parse_packet(&pc_reply).unwrap();
        let bytes = hex_decode(hex).unwrap();
        let pc = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        assert_eq!(pc, 0x4010);
    }

    #[test]
    fn clear_breakpoint_lets_target_run() {
        let mut s = server();
        s.handle(&frame_packet("Z0,4010,4")).unwrap();
        s.handle(&frame_packet("z0,4010,4")).unwrap();
        s.run_budget = 50;
        let reply = s.handle(&frame_packet("c")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "S00");
    }

    #[test]
    fn restart_packet() {
        let mut s = server();
        let reply = s.handle(&frame_packet("R")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "OK");
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut s = server();
        assert!(s.handle(&frame_packet("M24000100,4:dead")).is_err());
    }

    #[test]
    fn unsupported_packet() {
        let mut s = server();
        assert!(s.handle(&frame_packet("qSupported")).is_err());
    }

    #[test]
    fn txn_codec_round_trip() {
        let mut t = Txn::new();
        t.halt()
            .read_mem(0x2400_0100, 12)
            .write_mem(0x2400_0200, &[0xde, 0xad])
            .read_pc()
            .set_breakpoint(0x4010)
            .clear_breakpoint(0x4010)
            .flash_checksum("kernel")
            .flash_write("kernel", &[1, 2, 3])
            .reset_target()
            .resume();
        let wire = encode_txn(&t).unwrap();
        assert!(wire.starts_with("vTxn:h;m24000100,c;M24000200,2:dead;p;Z4010;z4010;"));
        let back = decode_txn(&wire).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn txn_reply_codec_round_trip() {
        let results = vec![
            TxnResult::Done,
            TxnResult::Bytes(vec![0xde, 0xad, 0xbe, 0xef]),
            TxnResult::Pc(0x4010),
            TxnResult::Checksum(0x1234_5678_9abc_def0),
        ];
        let wire = encode_txn_reply(&results);
        assert_eq!(wire, "OK;deadbeef;P00004010;C123456789abcdef0");
        assert_eq!(decode_txn_reply(&wire).unwrap(), results);
    }

    #[test]
    fn txn_packet_dispatch() {
        let mut s = server();
        let mut t = Txn::new();
        t.write_mem(0x2400_0100, &[0xca, 0xfe, 0xba, 0xbe])
            .read_mem(0x2400_0100, 4)
            .read_pc();
        let wire = encode_txn(&t).unwrap();
        let reply = s.handle(&frame_packet(&wire)).unwrap();
        let body = parse_packet(&reply).unwrap();
        let results = decode_txn_reply(body).unwrap();
        assert_eq!(results[0], TxnResult::Done);
        assert_eq!(results[1], TxnResult::Bytes(vec![0xca, 0xfe, 0xba, 0xbe]));
        assert!(matches!(results[2], TxnResult::Pc(_)));
    }

    #[test]
    fn snapshot_ops_codec_round_trip() {
        let mut t = Txn::new();
        t.write_pages(vec![
            (0x2400_0100, vec![0xde, 0xad]),
            (0x2400_0200, vec![0xbe, 0xef]),
        ])
        .restore_core();
        let wire = encode_txn(&t).unwrap();
        assert_eq!(wire, "vTxn:W24000100:dead,24000200:beef;G");
        assert_eq!(decode_txn(&wire).unwrap(), t);
        // An empty scatter write survives the trip too.
        let mut t = Txn::new();
        t.write_pages(Vec::new());
        assert_eq!(decode_txn(&encode_txn(&t).unwrap()).unwrap(), t);
    }

    #[test]
    fn drain_ring_codec_round_trip() {
        let mut t = Txn::new();
        t.drain_ring(0x2400_5100, 128, 24);
        let wire = encode_txn(&t).unwrap();
        assert_eq!(wire, "vTxn:D24005100,80,18");
        assert_eq!(decode_txn(&wire).unwrap(), t);
        assert!(decode_txn("vTxn:D24005100,80").is_err()); // missing field
        assert!(decode_txn("vTxn:D24005100,80,18,9").is_err()); // extra field
    }

    #[test]
    fn drain_trace_codec_round_trip() {
        let mut t = Txn::new();
        t.drain_trace().drain_ring(0x2400_5100, 128, 24);
        let wire = encode_txn(&t).unwrap();
        assert_eq!(wire, "vTxn:T;D24005100,80,18");
        assert_eq!(decode_txn(&wire).unwrap(), t);
    }

    #[test]
    fn snapshot_ops_reject_malformed_pages() {
        assert!(decode_txn("vTxn:W24000100-dead").is_err()); // no colon
        assert!(decode_txn("vTxn:Wnothex:dead").is_err());
    }

    #[test]
    fn txn_codec_rejects_unsafe_partition_names() {
        let mut t = Txn::new();
        t.flash_checksum("bad;name");
        assert!(encode_txn(&t).is_err());
        let mut t = Txn::new();
        t.flash_write("bad:name", &[1]);
        assert!(encode_txn(&t).is_err());
    }

    #[test]
    fn txn_codec_rejects_malformed_ops() {
        assert!(decode_txn("vTxn:x").is_err());
        assert!(decode_txn("vTxn:M100,4:dead").is_err()); // length mismatch
        assert!(decode_txn("not-a-txn").is_err());
        assert!(decode_txn_reply("Cnothex").is_err());
    }
}
