//! GDB Remote Serial Protocol codec and server.
//!
//! GDBFuzz and EOF both ride GDB's remote protocol; the paper's Algorithm 1
//! issues `-exec-continue` and reads the PC through this layer. Packets
//! are framed as `$<data>#<2-hex-checksum>` where the checksum is the
//! modulo-256 sum of the data bytes. The server implements the commands a
//! fuzzer needs:
//!
//! | packet | meaning |
//! |---|---|
//! | `?` | halt reason |
//! | `p20` | read PC (register 0x20 here) |
//! | `m ADDR,LEN` | read memory (hex) |
//! | `M ADDR,LEN:HEX` | write memory |
//! | `Z0,ADDR,4` / `z0,ADDR,4` | set / clear breakpoint |
//! | `c` | continue (bounded by the server's run budget) |
//! | `R` | restart target |

use crate::error::DapError;
use crate::transport::{DebugTransport, LinkEvent};

/// Compute the RSP checksum of packet data.
pub fn checksum(data: &str) -> u8 {
    data.bytes().fold(0u8, |a, b| a.wrapping_add(b))
}

/// Frame data into a `$data#cs` packet.
pub fn frame_packet(data: &str) -> String {
    format!("${}#{:02x}", data, checksum(data))
}

/// Parse and verify a framed packet, returning the payload.
pub fn parse_packet(raw: &str) -> Result<&str, DapError> {
    let raw = raw.trim();
    if !raw.starts_with('$') {
        return Err(DapError::Protocol("packet must start with '$'".into()));
    }
    let hash = raw
        .rfind('#')
        .ok_or_else(|| DapError::Protocol("packet missing '#'".into()))?;
    let data = &raw[1..hash];
    let cs_str = &raw[hash + 1..];
    let cs = u8::from_str_radix(cs_str, 16)
        .map_err(|_| DapError::Protocol(format!("bad checksum field {cs_str:?}")))?;
    if cs != checksum(data) {
        return Err(DapError::Protocol(format!(
            "checksum mismatch: got {cs:02x}, want {:02x}",
            checksum(data)
        )));
    }
    Ok(data)
}

/// An RSP endpoint bound to a transport.
pub struct RspServer {
    transport: DebugTransport,
    /// Cycle budget for each `c` (continue) packet.
    pub run_budget: u64,
}

impl RspServer {
    /// Wrap a transport with a default continue budget.
    pub fn new(transport: DebugTransport) -> Self {
        RspServer {
            transport,
            run_budget: 100_000,
        }
    }

    /// The underlying transport.
    pub fn transport(&self) -> &DebugTransport {
        &self.transport
    }

    /// Mutable transport access.
    pub fn transport_mut(&mut self) -> &mut DebugTransport {
        &mut self.transport
    }

    /// Handle one framed packet, returning the framed reply.
    pub fn handle(&mut self, raw: &str) -> Result<String, DapError> {
        let data = parse_packet(raw)?;
        let reply = self.dispatch(data)?;
        Ok(frame_packet(&reply))
    }

    fn dispatch(&mut self, data: &str) -> Result<String, DapError> {
        match data {
            "?" => Ok("S05".into()),
            "p20" => {
                let pc = self.transport.read_pc()?;
                // Registers travel little-endian in RSP.
                Ok(hex_encode(&pc.to_le_bytes()))
            }
            "c" => match self.transport.continue_until_halt(self.run_budget)? {
                LinkEvent::BreakpointHit { .. } => Ok("S05".into()),
                LinkEvent::StillRunning => Ok("S00".into()),
                LinkEvent::TargetDead => Ok("X09".into()),
                LinkEvent::WatchdogReset => Ok("S12".into()),
            },
            "R" => {
                self.transport.reset_target()?;
                Ok("OK".into())
            }
            _ if data.starts_with('m') => {
                let (addr, len) = parse_addr_len(&data[1..])?;
                let mut buf = vec![0u8; len];
                self.transport.read_mem(addr, &mut buf)?;
                Ok(hex_encode(&buf))
            }
            _ if data.starts_with('M') => {
                let colon = data
                    .find(':')
                    .ok_or_else(|| DapError::Protocol("M packet missing ':'".into()))?;
                let (addr, len) = parse_addr_len(&data[1..colon])?;
                let bytes = hex_decode(&data[colon + 1..])?;
                if bytes.len() != len {
                    return Err(DapError::Protocol(format!(
                        "M packet length mismatch: header {len}, payload {}",
                        bytes.len()
                    )));
                }
                self.transport.write_mem(addr, &bytes)?;
                Ok("OK".into())
            }
            _ if data.starts_with("Z0,") => {
                let addr = parse_hex_field(data[3..].split(',').next().unwrap_or(""))?;
                self.transport.set_breakpoint(addr)?;
                Ok("OK".into())
            }
            _ if data.starts_with("z0,") => {
                let addr = parse_hex_field(data[3..].split(',').next().unwrap_or(""))?;
                self.transport.clear_breakpoint(addr)?;
                Ok("OK".into())
            }
            other => Err(DapError::Protocol(format!("unsupported packet {other:?}"))),
        }
    }
}

fn parse_addr_len(s: &str) -> Result<(u32, usize), DapError> {
    let (a, l) = s
        .split_once(',')
        .ok_or_else(|| DapError::Protocol(format!("expected ADDR,LEN in {s:?}")))?;
    Ok((parse_hex_field(a)?, parse_hex_field(l)? as usize))
}

fn parse_hex_field(s: &str) -> Result<u32, DapError> {
    u32::from_str_radix(s, 16).map_err(|_| DapError::Protocol(format!("bad hex field {s:?}")))
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>, DapError> {
    if !s.len().is_multiple_of(2) {
        return Err(DapError::Protocol("odd hex payload".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| DapError::Protocol(format!("bad hex at {i}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LinkConfig;
    use eof_hal::{BoardCatalog, FirmwareLoader, Machine};

    struct Hopper {
        pc: u32,
        symbols: eof_hal::SymbolTable,
    }

    impl eof_hal::Firmware for Hopper {
        fn name(&self) -> &str {
            "hopper"
        }
        fn symbols(&self) -> &eof_hal::SymbolTable {
            &self.symbols
        }
        fn step(&mut self, _bus: &mut eof_hal::Bus) -> eof_hal::StepResult {
            self.pc += 4;
            eof_hal::StepResult::Running {
                pc: self.pc,
                cycles: 1,
            }
        }
        fn on_reset(&mut self, _bus: &mut eof_hal::Bus) {
            self.pc = 0x4000;
        }
        fn freeze(&mut self) {}
    }

    fn server() -> RspServer {
        let loader: FirmwareLoader = Box::new(|_, _| {
            Ok(Box::new(Hopper {
                pc: 0x4000,
                symbols: eof_hal::SymbolTable::new(),
            }))
        });
        let mut m = Machine::new(BoardCatalog::stm32h745_nucleo(), loader);
        m.reset();
        RspServer::new(DebugTransport::attach(m, LinkConfig::default()))
    }

    #[test]
    fn framing_roundtrip() {
        let p = frame_packet("m24000000,10");
        assert!(p.starts_with('$'));
        assert_eq!(parse_packet(&p).unwrap(), "m24000000,10");
    }

    #[test]
    fn checksum_rejects_corruption() {
        let mut p = frame_packet("c");
        p.replace_range(1..2, "x");
        assert!(parse_packet(&p).is_err());
    }

    #[test]
    fn known_checksum_vector() {
        // "OK" = 0x4f + 0x4b = 0x9a.
        assert_eq!(checksum("OK"), 0x9a);
        assert_eq!(frame_packet("OK"), "$OK#9a");
    }

    #[test]
    fn memory_write_then_read() {
        let mut s = server();
        let reply = s.handle(&frame_packet("M24000100,4:deadbeef")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "OK");
        let reply = s.handle(&frame_packet("m24000100,4")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "deadbeef");
    }

    #[test]
    fn halt_reason() {
        let mut s = server();
        let reply = s.handle(&frame_packet("?")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "S05");
    }

    #[test]
    fn breakpoint_continue_pc() {
        let mut s = server();
        s.handle(&frame_packet("Z0,4010,4")).unwrap();
        let reply = s.handle(&frame_packet("c")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "S05");
        let pc_reply = s.handle(&frame_packet("p20")).unwrap();
        let hex = parse_packet(&pc_reply).unwrap();
        let bytes = hex_decode(hex).unwrap();
        let pc = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        assert_eq!(pc, 0x4010);
    }

    #[test]
    fn clear_breakpoint_lets_target_run() {
        let mut s = server();
        s.handle(&frame_packet("Z0,4010,4")).unwrap();
        s.handle(&frame_packet("z0,4010,4")).unwrap();
        s.run_budget = 50;
        let reply = s.handle(&frame_packet("c")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "S00");
    }

    #[test]
    fn restart_packet() {
        let mut s = server();
        let reply = s.handle(&frame_packet("R")).unwrap();
        assert_eq!(parse_packet(&reply).unwrap(), "OK");
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut s = server();
        assert!(s.handle(&frame_packet("M24000100,4:dead")).is_err());
    }

    #[test]
    fn unsupported_packet() {
        let mut s = server();
        assert!(s.handle(&frame_packet("qSupported")).is_err());
    }
}
