//! The probe session: EOF's single channel of control and observation.
//!
//! A [`DebugTransport`] owns the simulated [`Machine`] and exposes the
//! operations OpenOCD offers a client — halt/resume, memory access,
//! breakpoints, reset, flash — with the two properties the paper's
//! liveness design depends on:
//!
//! * **every operation costs simulated time** (link latency plus, for
//!   JTAG boards, the TAP scan cycles), so slow recovery genuinely eats
//!   campaign budget;
//! * **operations against a dead or disconnected target time out** after
//!   [`LinkConfig::timeout`] cycles rather than failing instantly —
//!   modelling the real blocking behaviour that makes watchdog tuning a
//!   trade-off.

use crate::error::DapError;
use crate::tap::TapController;
use crate::txn::{Txn, TxnOp, TxnResult, BLOCK_TCK_PER_CORE_CYCLE};
use eof_hal::{
    machine::cost, DebugIface, HalError, InjectedFault, Machine, RunExit, Snapshot, PAGE_SIZE,
};
use eof_telemetry as tel;

/// Link parameters of a probe session.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Cycles of link latency added to each operation.
    pub latency: u64,
    /// Cycles an operation blocks before reporting a connection timeout.
    pub timeout: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: 2,
            timeout: 1_000,
        }
    }
}

/// Outcome of letting the target run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// Target halted at a breakpoint.
    BreakpointHit {
        /// Address of the breakpoint.
        pc: u32,
    },
    /// The run budget elapsed with the target still running.
    StillRunning,
    /// The target died mid-run (boot failure, killed core).
    TargetDead,
    /// The on-chip watchdog reset the target during the run.
    WatchdogReset,
}

/// An open probe session to one board.
pub struct DebugTransport {
    machine: Machine,
    config: LinkConfig,
    tap: Option<TapController>,
    /// Scheduled link outages as `(start_cycle, end_cycle)`. Expired
    /// windows are pruned on every operation so a multi-day campaign
    /// never scans an ever-growing list.
    outages: Vec<(u64, u64)>,
    /// Flaky-link windows as `(start_cycle, end_cycle, drop_per_mille)`.
    flaky: Vec<(u64, u64, u16)>,
    ops: u64,
    timeouts: u64,
    /// Operations refused by a flaky-link window.
    flaky_drops: u64,
    /// Vectored transactions that errored *after* applying at least one
    /// queued operation. Zero by construction — validation refuses a
    /// doomed batch before anything applies — and asserted zero by the
    /// chaos harness; a nonzero count means the atomicity contract broke.
    txn_partials: u64,
}

impl DebugTransport {
    /// Attach to a machine. JTAG boards get a TAP controller underneath.
    pub fn attach(machine: Machine, config: LinkConfig) -> Self {
        let tap = match machine.board().debug_iface {
            DebugIface::Jtag => Some(TapController::new()),
            DebugIface::Swd => None,
        };
        DebugTransport {
            machine,
            config,
            tap,
            outages: Vec::new(),
            flaky: Vec::new(),
            ops: 0,
            timeouts: 0,
            flaky_drops: 0,
            txn_partials: 0,
        }
    }

    /// The attached machine (tests and image tooling).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (tests and image tooling).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Total debug operations performed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total operations that ended in a connection timeout.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Operations dropped by an injected flaky-link window.
    pub fn flaky_drops(&self) -> u64 {
        self.flaky_drops
    }

    /// Vectored transactions that partially applied (always zero unless
    /// the atomicity contract broke; see [`DebugTransport::run_txn`]).
    pub fn txn_partials(&self) -> u64 {
        self.txn_partials
    }

    /// Schedule a link outage of `duration` cycles starting at `at_cycle`.
    pub fn schedule_outage(&mut self, at_cycle: u64, duration: u64) {
        self.outages.push((at_cycle, at_cycle + duration));
    }

    /// Schedule a flaky-link window: each operation inside it is dropped
    /// with probability `drop_per_mille`/1000 (deterministically, keyed
    /// on the operation counter).
    pub fn schedule_flaky(&mut self, at_cycle: u64, duration: u64, drop_per_mille: u16) {
        self.flaky
            .push((at_cycle, at_cycle + duration, drop_per_mille.min(1000)));
    }

    fn link_up(&self) -> bool {
        let now = self.machine.bus().now();
        !self.outages.iter().any(|&(s, e)| now >= s && now < e)
    }

    /// Collect due link faults from the machine's injection plan and turn
    /// them into outage / flaky windows starting now.
    fn poll_link_faults(&mut self) {
        // Fast path: nothing scheduled (the overwhelmingly common case).
        if self.machine.pending_injected_faults() == 0 {
            return;
        }
        let now = self.machine.bus().now();
        for fault in self.machine.take_due_link_faults() {
            match fault {
                InjectedFault::DropLink { cycles } => {
                    tel::count("dap.link.outages", 1);
                    tel::event("dap.link.outage", now, || format!("cycles={cycles}"));
                    self.outages.push((now, now + cycles));
                }
                InjectedFault::FlakyLink {
                    drop_per_mille,
                    cycles,
                } => {
                    tel::count("dap.link.flaky_windows", 1);
                    tel::event("dap.link.flaky", now, || {
                        format!("cycles={cycles} drop_per_mille={drop_per_mille}")
                    });
                    self.flaky
                        .push((now, now + cycles, drop_per_mille.min(1000)));
                }
                _ => {}
            }
        }
    }

    /// Whether an active flaky window drops this operation. Deterministic:
    /// the coin is a hash of the monotone operation counter, so identical
    /// campaigns see identical drop sequences.
    fn flaky_drop(&self) -> bool {
        let now = self.machine.bus().now();
        let Some(&(_, _, per_mille)) = self.flaky.iter().find(|&&(s, e, _)| now >= s && now < e)
        else {
            return false;
        };
        let mut x = self.ops ^ 0x9e37_79b9_7f4a_7c15;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x % 1000 < per_mille as u64
    }

    /// Link-layer preamble shared by every operation: charge latency,
    /// fire due link faults, prune expired windows, verify the link.
    /// Used directly by the core-independent operations (reset, flash) —
    /// those lines answer even when the core is dead.
    fn begin_link_op(&mut self) -> Result<(), DapError> {
        self.ops += 1;
        self.machine.bus_mut().charge_debug(self.config.latency);
        self.poll_link_faults();
        let now = self.machine.bus().now();
        self.outages.retain(|&(_, e)| e > now);
        self.flaky.retain(|&(_, e, _)| e > now);
        if !self.link_up() {
            return Err(DapError::LinkDown);
        }
        if self.flaky_drop() {
            self.flaky_drops += 1;
            tel::count("dap.link.flaky_drops", 1);
            return Err(DapError::LinkDown);
        }
        Ok(())
    }

    /// Run one operation body and record its cycle cost and outcome as
    /// per-op telemetry. Cheaper than a span: the hot fuzzing loop does
    /// thousands of these per execution.
    fn record_op<T>(
        &mut self,
        name: &'static str,
        body: impl FnOnce(&mut Self) -> Result<T, DapError>,
    ) -> Result<T, DapError> {
        let start = self.machine.bus().now();
        let result = body(self);
        tel::op(
            name,
            self.machine.bus().now().saturating_sub(start),
            result.is_err(),
        );
        result
    }

    /// Preamble of every core-facing operation: charge latency (and TAP
    /// scan cost on JTAG), verify the link, verify the target answers.
    fn begin_op(&mut self, payload_bits: u32) -> Result<(), DapError> {
        if let Some(tap) = self.tap.as_mut() {
            // Each operation is one DR scan of the payload width; the TCK
            // cycles map 1:8 onto core cycles (TCK is slower).
            let tck = tap.scan_dr(payload_bits.max(8));
            self.machine.bus_mut().charge_debug(tck / 8);
        }
        self.begin_link_op()?;
        if self.machine.is_dead() {
            // Block for the full timeout window, then report.
            self.machine.bus_mut().charge_debug(self.config.timeout);
            self.timeouts += 1;
            tel::count("dap.timeouts", 1);
            return Err(DapError::ConnectionTimeout {
                waited: self.config.timeout,
            });
        }
        Ok(())
    }

    /// Cheap aliveness probe: succeeds iff the target answers at all.
    /// `ConnectionTimeout(DebugPipe)` in Algorithm 1 is `ping().is_err()`.
    pub fn ping(&mut self) -> Result<(), DapError> {
        self.record_op("ping", |t| t.begin_op(8))
    }

    /// Link-only probe: succeeds iff the debug LINK answers, regardless
    /// of core state — the IDCODE read a probe tool fires before doing
    /// anything else. A dead core still acks on the link lines (that is
    /// what reset and flash recovery rely on), so this distinguishes "the
    /// wire is the problem" from "the target is the problem" at
    /// register-read cost.
    pub fn probe_link(&mut self) -> Result<(), DapError> {
        self.record_op("probe_link", |t| t.begin_link_op())
    }

    /// Halt the core.
    pub fn halt(&mut self) -> Result<(), DapError> {
        self.record_op("halt", |t| {
            t.begin_op(32)?;
            t.machine.debug_halt().map_err(Into::into)
        })
    }

    /// Resume the core (GDB `-exec-continue` without waiting).
    pub fn resume(&mut self) -> Result<(), DapError> {
        self.record_op("resume", |t| {
            t.begin_op(32)?;
            t.machine.debug_resume().map_err(Into::into)
        })
    }

    /// Resume and run the target for at most `budget` cycles, reporting
    /// how the run ended. This is the blocking `continue` the fuzzing
    /// loop uses between sync points.
    pub fn continue_until_halt(&mut self, budget: u64) -> Result<LinkEvent, DapError> {
        self.record_op("continue_until_halt", |t| {
            t.begin_op(32)?;
            t.machine.debug_resume()?;
            Ok(match t.machine.run(budget) {
                RunExit::Breakpoint { pc } => LinkEvent::BreakpointHit { pc },
                RunExit::BudgetExhausted => LinkEvent::StillRunning,
                RunExit::CoreDead => LinkEvent::TargetDead,
                RunExit::WatchdogReset => LinkEvent::WatchdogReset,
            })
        })
    }

    /// Read target memory.
    pub fn read_mem(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), DapError> {
        self.record_op("read_mem", |t| {
            t.begin_op((buf.len() as u32) * 8)?;
            t.machine.debug_read(addr, buf).map_err(Into::into)
        })
    }

    /// Write target memory.
    pub fn write_mem(&mut self, addr: u32, buf: &[u8]) -> Result<(), DapError> {
        self.record_op("write_mem", |t| {
            t.begin_op((buf.len() as u32) * 8)?;
            t.machine.debug_write(addr, buf).map_err(Into::into)
        })
    }

    /// Read the program counter.
    pub fn read_pc(&mut self) -> Result<u32, DapError> {
        self.record_op("read_pc", |t| {
            t.begin_op(32)?;
            t.machine.debug_pc().map_err(Into::into)
        })
    }

    /// Install a hardware breakpoint.
    pub fn set_breakpoint(&mut self, addr: u32) -> Result<(), DapError> {
        self.record_op("set_breakpoint", |t| {
            t.begin_op(32)?;
            t.machine.set_breakpoint(addr).map_err(Into::into)
        })
    }

    /// Remove a hardware breakpoint.
    pub fn clear_breakpoint(&mut self, addr: u32) -> Result<(), DapError> {
        self.record_op("clear_breakpoint", |t| {
            t.begin_op(32)?;
            t.machine.clear_breakpoint(addr);
            Ok(())
        })
    }

    /// Submit a vectored transaction: every queued operation in one link
    /// round trip. The batch pays one latency charge, one TAP scan (bulk
    /// payload shifted in block mode at 1:[`BLOCK_TCK_PER_CORE_CYCLE`]
    /// instead of the scalar per-word 1:8), and one access-port setup
    /// ([`cost::MEM_BASE`]) for all its memory operations.
    ///
    /// **Atomicity.** The submit itself is the only fault-injection
    /// point: link outages and flaky drops refuse the batch before
    /// anything applies, and the dead-target check runs once up front
    /// (core faults only fire while the target *runs*, so dead-ness
    /// cannot change mid-batch). Target-side preconditions — address
    /// bounds, breakpoint-comparator budget, partition names and sizes,
    /// flash-port availability — are validated for every operation
    /// before the first one applies; a doomed batch is refused whole
    /// with the target untouched. A connection-loss error therefore
    /// always means "nothing applied", which is what makes whole-batch
    /// replay ([`crate::RetryPolicy::run_txn`]) safe.
    pub fn run_txn(&mut self, txn: &Txn) -> Result<Vec<TxnResult>, DapError> {
        if txn.is_empty() {
            return Ok(Vec::new());
        }
        self.record_op("txn", |t| t.run_txn_inner(txn))
    }

    fn run_txn_inner(&mut self, txn: &Txn) -> Result<Vec<TxnResult>, DapError> {
        tel::observe("dap.txn.ops", txn.len() as u64);
        tel::count("dap.txn.round_trips_saved", txn.len() as u64 - 1);
        // --- link phase: one scan, one latency charge, one dead check ---
        if let Some(tap) = &mut self.tap {
            let header_bits = txn.header_bits().min(u32::MAX as u64) as u32;
            let data_bits = txn
                .payload_bits()
                .min((u32::MAX as u64) - header_bits as u64) as u32;
            let tck = tap.scan_dr((header_bits + data_bits).max(8));
            // Command descriptors and the state-machine walk are paced by
            // the host like any scalar scan (1:8); the payload streams
            // from the probe FIFO in block mode.
            let walk = tck.saturating_sub(data_bits as u64);
            self.machine
                .bus_mut()
                .charge_debug(walk / 8 + data_bits as u64 / BLOCK_TCK_PER_CORE_CYCLE);
        }
        self.begin_link_op()?;
        if txn.needs_core() && self.machine.is_dead() {
            self.machine.bus_mut().charge_debug(self.config.timeout);
            self.timeouts += 1;
            tel::count("dap.timeouts", 1);
            return Err(DapError::ConnectionTimeout {
                waited: self.config.timeout,
            });
        }
        // --- validate phase: no mutation, whole-batch refusal ---
        self.validate_txn(txn)?;
        // --- apply phase: charged per payload, infallible by design ---
        let mut results = Vec::with_capacity(txn.len());
        if txn.ops().iter().any(|op| {
            matches!(
                op,
                TxnOp::ReadMem { .. }
                    | TxnOp::WriteMem { .. }
                    | TxnOp::WritePages { .. }
                    | TxnOp::DrainRing { .. }
                    | TxnOp::DrainTrace
            )
        }) {
            // One access-port setup for the whole memory burst.
            self.machine.bus_mut().charge_debug(cost::MEM_BASE);
        }
        for op in txn.ops() {
            match self.apply_txn_op(op) {
                Ok(r) => results.push(r),
                Err(e) => {
                    // Validation must make this unreachable; account it
                    // loudly if it ever is not.
                    if !results.is_empty() {
                        self.txn_partials += 1;
                        tel::count("dap.txn.partial", 1);
                    }
                    return Err(e);
                }
            }
        }
        Ok(results)
    }

    /// Check every queued operation's target-side preconditions without
    /// mutating anything. Core faults cannot fire between validation and
    /// application (the target never runs during a transaction), so a
    /// passing validation guarantees the apply phase succeeds.
    fn validate_txn(&self, txn: &Txn) -> Result<(), DapError> {
        // Simulate the comparator budget across the batch's own
        // set/clear sequence, starting from what is installed now.
        let mut bps: Vec<u32> = self.machine.breakpoints().to_vec();
        let max_bps = self.machine.board().max_breakpoints;
        // Destructive drains consume their resource: a second drain of
        // the same ring (or the trace FIFO) in one batch would read a
        // header the first drain already reset — the stale-header trap.
        // Refuse the batch whole instead of letting the duplicate
        // observe inconsistent counts.
        let mut drained_rings: Vec<u32> = Vec::new();
        let mut trace_drained = false;
        for op in txn.ops() {
            match op {
                TxnOp::Halt | TxnOp::Resume | TxnOp::ReadPc | TxnOp::ResetTarget => {}
                TxnOp::ReadMem { addr, len } => {
                    self.machine.debug_check_mem(*addr, *len as usize)?;
                }
                TxnOp::WriteMem { addr, data } => {
                    self.machine.debug_check_mem(*addr, data.len())?;
                }
                TxnOp::SetBreakpoint { addr } => {
                    if !bps.contains(addr) {
                        if bps.len() >= max_bps {
                            return Err(HalError::BreakpointLimit { max: max_bps }.into());
                        }
                        bps.push(*addr);
                    }
                }
                TxnOp::ClearBreakpoint { addr } => {
                    bps.retain(|a| a != addr);
                }
                TxnOp::FlashChecksum { partition } => {
                    if !self.machine.flash_port_available() {
                        return Err(DapError::Target(HalError::BadMachineState {
                            op: "flash checksum",
                            state: "flash port unavailable".into(),
                        }));
                    }
                    self.machine
                        .flash()
                        .table()
                        .get(partition)
                        .map_err(DapError::Target)?;
                }
                TxnOp::FlashWrite { partition, image } => {
                    if self.machine.browned_out() {
                        return Err(DapError::Target(HalError::BadMachineState {
                            op: "flash write",
                            state: "brownout".into(),
                        }));
                    }
                    let part = self
                        .machine
                        .flash()
                        .table()
                        .get(partition)
                        .map_err(DapError::Target)?;
                    if image.len() > part.size as usize {
                        return Err(DapError::Target(HalError::BadPartitionLayout(format!(
                            "image ({} bytes) exceeds partition {partition:?} ({} bytes)",
                            image.len(),
                            part.size
                        ))));
                    }
                }
                TxnOp::FlashSectorChecksums { partition, .. } => {
                    if !self.machine.flash_port_available() {
                        return Err(DapError::Target(HalError::BadMachineState {
                            op: "flash sector checksums",
                            state: "flash port unavailable".into(),
                        }));
                    }
                    self.machine
                        .flash()
                        .table()
                        .get(partition)
                        .map_err(DapError::Target)?;
                }
                TxnOp::FlashWriteSectors { partition, sectors } => {
                    // A sector write cannot release the hard-lockup
                    // latch, so a killed core refuses alongside a
                    // browned-out rail — unlike the full kernel stream.
                    if !self.machine.flash_port_available() {
                        return Err(DapError::Target(HalError::BadMachineState {
                            op: "flash sector write",
                            state: "flash port unavailable".into(),
                        }));
                    }
                    let part = self
                        .machine
                        .flash()
                        .table()
                        .get(partition)
                        .map_err(DapError::Target)?;
                    for (idx, data) in sectors {
                        let off = *idx as u64 * eof_hal::flash::SECTOR_SIZE as u64;
                        if data.len() > eof_hal::flash::SECTOR_SIZE
                            || off + data.len() as u64 > part.size as u64
                        {
                            return Err(DapError::Target(HalError::BadPartitionLayout(format!(
                                "sector {idx} write ({} bytes) exceeds partition {partition:?} ({} bytes)",
                                data.len(),
                                part.size
                            ))));
                        }
                    }
                }
                TxnOp::WritePages { pages } => {
                    for (addr, data) in pages {
                        self.machine.debug_check_mem(*addr, data.len())?;
                    }
                }
                TxnOp::RestoreCore => {
                    // Kill/brownout/boot-dead are covered by the batch-level
                    // dead check; the remaining failure mode is a flash
                    // image that no longer parses. Dry-run the loader so a
                    // doomed batch refuses whole with the target untouched.
                    self.machine.check_boot_image().map_err(DapError::Target)?;
                }
                TxnOp::DrainRing {
                    base,
                    capacity,
                    record_bytes,
                } => {
                    if drained_rings.contains(base) {
                        return Err(DapError::Target(HalError::BadMachineState {
                            op: "drain ring",
                            state: format!(
                                "duplicate drain of ring {base:#x} in one transaction"
                            ),
                        }));
                    }
                    drained_rings.push(*base);
                    let len = 12 + *capacity as usize * *record_bytes as usize;
                    self.machine.debug_check_mem(*base, len)?;
                }
                TxnOp::DrainTrace => {
                    if trace_drained {
                        return Err(DapError::Target(HalError::BadMachineState {
                            op: "drain trace",
                            state: "duplicate trace drain in one transaction".into(),
                        }));
                    }
                    trace_drained = true;
                }
            }
        }
        Ok(())
    }

    fn apply_txn_op(&mut self, op: &TxnOp) -> Result<TxnResult, DapError> {
        Ok(match op {
            TxnOp::Halt => {
                self.machine.debug_halt()?;
                TxnResult::Done
            }
            TxnOp::Resume => {
                self.machine.debug_resume()?;
                TxnResult::Done
            }
            TxnOp::ReadMem { addr, len } => {
                let mut buf = vec![0u8; *len as usize];
                self.machine.debug_read_batched(*addr, &mut buf)?;
                TxnResult::Bytes(buf)
            }
            TxnOp::WriteMem { addr, data } => {
                self.machine.debug_write_batched(*addr, data)?;
                TxnResult::Done
            }
            TxnOp::ReadPc => TxnResult::Pc(self.machine.debug_pc()?),
            TxnOp::SetBreakpoint { addr } => {
                self.machine.set_breakpoint(*addr)?;
                TxnResult::Done
            }
            TxnOp::ClearBreakpoint { addr } => {
                self.machine.clear_breakpoint(*addr);
                TxnResult::Done
            }
            TxnOp::FlashChecksum { partition } => {
                TxnResult::Checksum(self.machine.debug_flash_checksum(partition)?)
            }
            TxnOp::FlashWrite { partition, image } => {
                self.machine.reflash_partition(partition, image)?;
                TxnResult::Done
            }
            TxnOp::FlashSectorChecksums { partition, .. } => {
                TxnResult::Checksums(self.machine.debug_flash_sector_checksums(partition)?)
            }
            TxnOp::FlashWriteSectors { partition, sectors } => {
                self.machine.debug_reflash_sectors(partition, sectors)?;
                TxnResult::Done
            }
            TxnOp::ResetTarget => {
                self.machine.reset();
                TxnResult::Done
            }
            TxnOp::WritePages { pages } => {
                for (addr, data) in pages {
                    self.machine.debug_write_batched(*addr, data)?;
                }
                TxnResult::Done
            }
            TxnOp::RestoreCore => {
                self.machine.debug_restore_core()?;
                TxnResult::Done
            }
            TxnOp::DrainRing {
                base,
                capacity,
                record_bytes,
            } => {
                // Dependent read: header first, then only the live
                // records — a mostly-empty ring costs a dozen bytes on
                // the wire, not the full capacity image. Count + reset
                // still happen inside the one op, so a fault can lose
                // the drain whole but never leave the ring half-reset.
                let mut header = [0u8; 12];
                self.machine.debug_read_batched(*base, &mut header)?;
                let e = self.machine.board().endianness;
                let count = e
                    .u32_from([header[0], header[1], header[2], header[3]])
                    .min(*capacity);
                let len = 12 + count as usize * *record_bytes as usize;
                let mut buf = vec![0u8; len];
                buf[..12].copy_from_slice(&header);
                if count > 0 {
                    self.machine
                        .debug_read_batched(*base + 12, &mut buf[12..])?;
                    // The records' TCK stream bits are charged here —
                    // the static payload accounting covers only the
                    // descriptor and header, since the live count is
                    // unknown until the header comes back.
                    if self.tap.is_some() {
                        let bits = count as u64 * *record_bytes as u64 * 8;
                        self.machine
                            .bus_mut()
                            .charge_debug(bits / BLOCK_TCK_PER_CORE_CYCLE);
                    }
                }
                self.machine.debug_write_batched(*base, &[0u8; 4])?;
                self.machine.debug_write_batched(*base + 8, &[0u8; 4])?;
                TxnResult::Bytes(buf)
            }
            TxnOp::DrainTrace => {
                // Same dependent-read shape as DrainRing, against the
                // debug subsystem's trace FIFO instead of target RAM:
                // the machine returns header + live stream bytes and
                // resets the FIFO inside the one op. The stream's TCK
                // bits are charged here, once the live count is known.
                let buf = self.machine.debug_drain_trace_batched()?;
                if self.tap.is_some() {
                    let bits = buf.len().saturating_sub(12) as u64 * 8;
                    self.machine
                        .bus_mut()
                        .charge_debug(bits / BLOCK_TCK_PER_CORE_CYCLE);
                }
                TxnResult::Bytes(buf)
            }
        })
    }

    /// Look up a firmware symbol address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.machine.symbol(name)
    }

    /// Reset the target (OpenOCD `reset run`). Works even when the target
    /// is dead — the reset line is independent of the core.
    pub fn reset_target(&mut self) -> Result<(), DapError> {
        self.record_op("reset_target", |t| {
            t.begin_link_op()?;
            t.machine.reset();
            Ok(())
        })
    }

    /// Cut the target's power for `off_cycles`, then cold-boot it. The
    /// power rail needs no probe at all — this is the one recovery action
    /// that works with the debug link completely down, which is why it is
    /// the last rung of the restoration ladder.
    pub fn power_cycle(&mut self, off_cycles: u64) {
        let start = self.machine.bus().now();
        self.ops += 1;
        self.machine.power_cycle(off_cycles);
        tel::op(
            "power_cycle",
            self.machine.bus().now().saturating_sub(start),
            false,
        );
    }

    /// Program an image into a named flash partition (OpenOCD
    /// `flash write_image`). Also link-independent of core state.
    pub fn flash_partition(&mut self, name: &str, image: &[u8]) -> Result<(), DapError> {
        self.record_op("flash_partition", |t| {
            t.begin_link_op()?;
            t.machine.reflash_partition(name, image).map_err(Into::into)
        })
    }

    /// Target-side checksum of a flash partition (OpenOCD
    /// `flash verify_image`). Link-dependent but core-independent.
    pub fn flash_checksum(&mut self, name: &str) -> Result<u64, DapError> {
        self.record_op("flash_checksum", |t| {
            t.begin_link_op()?;
            t.machine.debug_flash_checksum(name).map_err(Into::into)
        })
    }

    /// Per-sector target-side checksums of a flash partition — the
    /// damage-localisation step of sector-delta reflash. Link-dependent
    /// but core-independent, like [`Self::flash_checksum`].
    pub fn flash_sector_checksums(&mut self, name: &str) -> Result<Vec<u64>, DapError> {
        self.record_op("flash_sector_checksums", |t| {
            t.begin_link_op()?;
            t.machine
                .debug_flash_sector_checksums(name)
                .map_err(Into::into)
        })
    }

    /// Rewrite a sparse set of sectors inside a partition (the write
    /// step of sector-delta reflash). Link-dependent but
    /// core-independent, like [`Self::flash_partition`].
    pub fn flash_write_sectors(
        &mut self,
        name: &str,
        sectors: &[(u32, Vec<u8>)],
    ) -> Result<(), DapError> {
        self.record_op("flash_write_sectors", |t| {
            t.begin_link_op()?;
            t.machine
                .debug_reflash_sectors(name, sectors)
                .map_err(Into::into)
        })
    }

    /// Read the flash controller's mutation generation counter — the
    /// snapshot suspicion probe. A register read on the flash controller;
    /// link-dependent but core-independent, like [`Self::flash_checksum`].
    pub fn flash_generation(&mut self) -> Result<u64, DapError> {
        self.record_op("flash_generation", |t| {
            t.begin_link_op()?;
            t.machine.debug_flash_generation().map_err(Into::into)
        })
    }

    /// Capture a board snapshot over the debug port. The wire only
    /// carries the pages written since the last capture (or since
    /// power-on, the architectural zero-fill baseline) — everything else
    /// the host already knows — so the charge is proportional to the
    /// dirty-page count, not the RAM size.
    pub fn capture_snapshot(&mut self) -> Result<Snapshot, DapError> {
        self.record_op("capture_snapshot", |t| {
            let dirty_bytes = (t.machine.dirty_page_count() * PAGE_SIZE) as u64;
            let bits = (dirty_bytes * 8).clamp(32, u32::MAX as u64) as u32;
            t.begin_op(bits)?;
            t.machine
                .bus_mut()
                .charge_debug(cost::MEM_BASE + dirty_bytes / 4);
            t.machine.capture_snapshot().map_err(Into::into)
        })
    }

    /// Scalar register-file restore + restart at the reset vector (the
    /// snapshot restore's final step when vectoring is off; the vectored
    /// path queues [`TxnOp::RestoreCore`] instead).
    pub fn restore_core(&mut self) -> Result<(), DapError> {
        self.record_op("restore_core", |t| {
            t.begin_op(64)?;
            t.machine.debug_restore_core().map_err(Into::into)
        })
    }

    /// Arm or disarm the hardware trace unit. A register poke in the
    /// debug power domain; the latch survives resets and power cycles
    /// like breakpoint comparators do.
    pub fn trace_set_enabled(&mut self, on: bool) -> Result<(), DapError> {
        self.record_op("trace_set_enabled", |t| {
            t.begin_op(32)?;
            t.machine.debug_trace_set_enabled(on).map_err(Into::into)
        })
    }

    /// Scalar trace-FIFO drain (the fallback when vectoring is off; the
    /// vectored path queues [`TxnOp::DrainTrace`] instead). Both paths
    /// call the same machine primitive, so the drained bytes are
    /// identical either way — only the wire accounting differs: the
    /// scalar path paces the whole stream at the per-word 1:8 rate.
    pub fn drain_trace(&mut self) -> Result<Vec<u8>, DapError> {
        self.record_op("drain_trace", |t| {
            t.begin_op(32 + 12 * 8)?;
            let buf = t.machine.debug_drain_trace_batched()?;
            // The live stream bytes are a dependent read, charged once
            // the header's count is known — at the scalar shift rate.
            let bits = buf.len().saturating_sub(12) as u64 * 8;
            t.machine.bus_mut().charge_debug(bits / 8);
            Ok(buf)
        })
    }

    /// Raise an interrupt line on the target, as external stimulus
    /// hardware (a GPIO toggler, host-side serial TX) would. Independent
    /// of the debug link; a dead core simply never services it.
    pub fn inject_irq(&mut self, line: u8, payload: Vec<u8>) {
        self.machine.bus_mut().charge(1);
        self.machine
            .bus_mut()
            .pending_irqs
            .push_back(eof_hal::IrqRequest { line, payload });
    }

    /// Sample the target's power rail. The current probe is a separate
    /// instrument: it answers even when the debug link is down or the
    /// core is dead.
    pub fn sample_power(&mut self) -> f32 {
        self.machine.bus_mut().charge(1);
        self.machine.power_sample()
    }

    /// Drain the captured UART stream (the stdout-redirected target log).
    pub fn drain_uart(&mut self) -> Vec<u8> {
        self.machine.drain_uart()
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.machine.bus().now()
    }

    /// The target-visible cycle count: total time minus debug-port
    /// traffic. Use this for decisions that must match what the target
    /// itself could observe (its timers freeze during debug halts).
    pub fn core_now(&self) -> u64 {
        self.machine.bus().core_now()
    }

    /// Sleep for `cycles` of simulated time (Algorithm 1 line 19's
    /// post-reboot settle delay).
    pub fn sleep(&mut self, cycles: u64) {
        self.machine.bus_mut().charge(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_hal::{BoardCatalog, FaultPlan, FirmwareLoader, HalError, InjectedFault, Machine};

    /// An image whose magic is wrong, so a reset after flashing it
    /// boot-fails — the "corrupted kernel partition" fixture.
    const BROKEN_IMAGE: &[u8] = b"XXX!broken";

    // Reuse the HAL's counting firmware shape via a local copy, since the
    // HAL's test firmware is private to its crate.
    struct Walker {
        steps: u32,
        frozen: bool,
        symbols: eof_hal::SymbolTable,
    }

    impl Walker {
        fn new() -> Self {
            let mut symbols = eof_hal::SymbolTable::new();
            symbols.insert("entry", 0x0800_0000);
            Walker {
                steps: 0,
                frozen: false,
                symbols,
            }
        }
    }

    impl eof_hal::Firmware for Walker {
        fn name(&self) -> &str {
            "walker"
        }
        fn symbols(&self) -> &eof_hal::SymbolTable {
            &self.symbols
        }
        fn step(&mut self, _bus: &mut eof_hal::Bus) -> eof_hal::StepResult {
            if self.frozen {
                return eof_hal::StepResult::Stalled {
                    pc: 0x0800_0000 + self.steps * 4,
                    cycles: 1,
                };
            }
            self.steps += 1;
            eof_hal::StepResult::Running {
                pc: 0x0800_0000 + self.steps * 4,
                cycles: 2,
            }
        }
        fn on_reset(&mut self, _bus: &mut eof_hal::Bus) {
            self.steps = 0;
            self.frozen = false;
        }
        fn freeze(&mut self) {
            self.frozen = true;
        }
    }

    fn transport() -> DebugTransport {
        let loader: FirmwareLoader = Box::new(|flash, _| {
            let kernel = flash.read_partition("kernel")?;
            if &kernel[..4] != b"IMG!" {
                return Err(HalError::BootFailure("bad magic".into()));
            }
            Ok(Box::new(Walker::new()))
        });
        let mut m = Machine::new(BoardCatalog::esp32_devkit(), loader);
        m.reflash_partition("kernel", b"IMG!fw").unwrap();
        m.reset();
        DebugTransport::attach(m, LinkConfig::default())
    }

    #[test]
    fn memory_roundtrip_over_link() {
        let mut t = transport();
        let base = t.machine().board().ram_base;
        t.write_mem(base + 0x100, b"payload").unwrap();
        let mut buf = [0u8; 7];
        t.read_mem(base + 0x100, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
        assert!(t.ops() >= 2);
    }

    #[test]
    fn jtag_board_charges_tap_cycles() {
        let mut t = transport();
        let before = t.now();
        t.ping().unwrap();
        // Latency (2) + TAP scan contribution must both land.
        assert!(t.now() - before > LinkConfig::default().latency);
    }

    #[test]
    fn breakpoint_and_continue() {
        let mut t = transport();
        t.halt().unwrap();
        t.set_breakpoint(0x0800_0000 + 5 * 4).unwrap();
        match t.continue_until_halt(10_000).unwrap() {
            LinkEvent::BreakpointHit { pc } => assert_eq!(pc, 0x0800_0014),
            other => panic!("expected breakpoint, got {other:?}"),
        }
    }

    #[test]
    fn dead_target_times_out_and_costs_time() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::KillCore));
        let _ = t.continue_until_halt(100);
        let before = t.now();
        let err = t.read_pc().unwrap_err();
        assert!(err.is_connection_loss());
        assert!(t.now() - before >= LinkConfig::default().timeout);
        assert_eq!(t.timeouts(), 1);
    }

    #[test]
    fn outage_reports_link_down() {
        let mut t = transport();
        let now = t.now();
        t.schedule_outage(now, 10_000);
        assert_eq!(t.ping().unwrap_err(), DapError::LinkDown);
        // After the outage window, the link heals.
        t.machine_mut().bus_mut().charge(20_000);
        assert!(t.ping().is_ok());
    }

    #[test]
    fn reset_works_on_dead_target() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::FreezeFirmware));
        let _ = t.continue_until_halt(100);
        // Freeze is not death; PC reads still work but never change.
        let pc1 = t.read_pc().unwrap();
        let _ = t.continue_until_halt(100);
        let pc2 = t.read_pc().unwrap();
        assert_eq!(pc1, pc2);
        // Reset revives progress.
        t.reset_target().unwrap();
        let _ = t.continue_until_halt(100);
        let pc3 = t.read_pc().unwrap();
        let _ = t.continue_until_halt(100);
        let pc4 = t.read_pc().unwrap();
        assert_ne!(pc3, pc4);
    }

    #[test]
    fn reflash_over_link() {
        let mut t = transport();
        t.flash_partition("kernel", b"IMG!new-fw").unwrap();
        t.reset_target().unwrap();
        assert!(t.read_pc().is_ok());
    }

    #[test]
    fn uart_drain_over_link() {
        let mut t = transport();
        t.machine_mut()
            .bus_mut()
            .uart
            .tx_line("E (123) boot: panic");
        let log = t.drain_uart();
        assert_eq!(log, b"E (123) boot: panic\n");
    }

    #[test]
    fn sleep_advances_time() {
        let mut t = transport();
        let before = t.now();
        t.sleep(5_000);
        assert_eq!(t.now() - before, 5_000);
    }

    #[test]
    fn flaky_window_drops_some_but_not_all_ops() {
        let mut t = transport();
        let now = t.now();
        t.schedule_flaky(now, 1_000_000, 500);
        let mut ok = 0u32;
        let mut dropped = 0u32;
        for _ in 0..200 {
            match t.ping() {
                Ok(()) => ok += 1,
                Err(DapError::LinkDown) => dropped += 1,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        // ~50% drop rate: both outcomes must occur in quantity.
        assert!(ok > 40, "only {ok} ops survived a 500‰ window");
        assert!(dropped > 40, "only {dropped} ops dropped in a 500‰ window");
        assert_eq!(t.flaky_drops(), dropped as u64);
    }

    #[test]
    fn flaky_drop_sequence_is_deterministic() {
        let run = || {
            let mut t = transport();
            let now = t.now();
            t.schedule_flaky(now, 1_000_000, 300);
            (0..100).map(|_| t.ping().is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn expired_windows_are_pruned() {
        let mut t = transport();
        let now = t.now();
        for i in 0..50 {
            t.schedule_outage(now + i, 1);
            t.schedule_flaky(now + i, 1, 900);
        }
        t.machine_mut().bus_mut().charge(10_000);
        t.ping().unwrap();
        assert!(t.outages.is_empty(), "expired outages must be pruned");
        assert!(t.flaky.is_empty(), "expired flaky windows must be pruned");
    }

    #[test]
    fn drop_link_fault_reaches_transport_as_outage() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::DropLink { cycles: 50_000 }));
        // Even with the core halted, the next op trips over the outage.
        assert_eq!(t.ping().unwrap_err(), DapError::LinkDown);
        t.machine_mut().bus_mut().charge(60_000);
        assert!(t.ping().is_ok());
    }

    #[test]
    fn power_cycle_revives_killed_core_during_outage() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::KillCore));
        let _ = t.continue_until_halt(100);
        let now = t.now();
        t.schedule_outage(now, 1_000_000);
        // Probe-side actions all fail: the link is dark.
        assert!(t.reset_target().is_err());
        assert!(t.flash_partition("kernel", b"IMG!fw").is_err());
        // Pulling the power needs no probe and clears the kill latch.
        t.power_cycle(5_000);
        assert!(!t.machine().is_dead());
    }

    #[test]
    fn retry_policy_rides_out_short_outage() {
        use crate::retry::{RetryPolicy, RetryStats};
        let mut t = transport();
        let now = t.now();
        // Outage shorter than the first backoff: one retry clears it.
        t.schedule_outage(now, 100);
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: 512,
            max_backoff: 8_192,
        };
        let mut stats = RetryStats::default();
        policy.run(&mut stats, &mut t, |p| p.ping()).unwrap();
        assert_eq!(stats.recovered, 1);
        assert!(stats.retries >= 1);
        assert!(stats.backoff_cycles >= 512);
    }

    #[test]
    fn retry_policy_exhausts_on_long_outage() {
        use crate::retry::{RetryPolicy, RetryStats};
        let mut t = transport();
        let now = t.now();
        t.schedule_outage(now, 10_000_000);
        let mut stats = RetryStats::default();
        let err = RetryPolicy::default()
            .run(&mut stats, &mut t, |p| p.ping())
            .unwrap_err();
        assert!(err.is_connection_loss());
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.recovered, 0);
    }

    #[test]
    fn retry_policy_passes_through_target_errors() {
        use crate::retry::{RetryPolicy, RetryStats};
        let mut t = transport();
        let mut stats = RetryStats::default();
        // Unknown partition is a target error, not a connection loss —
        // it must not be retried.
        let err = RetryPolicy::default()
            .run(&mut stats, &mut t, |p| p.flash_checksum("no-such-part"))
            .unwrap_err();
        assert!(!err.is_connection_loss());
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn txn_matches_scalar_results_and_costs_less() {
        // Same op sequence both ways; the vectored submit must return
        // identical data and spend strictly fewer cycles.
        let mut scalar = transport();
        let base = scalar.machine().board().ram_base;
        let start = scalar.now();
        scalar.halt().unwrap();
        scalar.write_mem(base + 0x40, b"vector-me").unwrap();
        let mut buf = [0u8; 9];
        scalar.read_mem(base + 0x40, &mut buf).unwrap();
        let pc_scalar = scalar.read_pc().unwrap();
        scalar.resume().unwrap();
        let scalar_cost = scalar.now() - start;

        let mut vectored = transport();
        let start = vectored.now();
        let mut txn = Txn::new();
        txn.halt()
            .write_mem(base + 0x40, b"vector-me")
            .read_mem(base + 0x40, 9)
            .read_pc()
            .resume();
        let results = vectored.run_txn(&txn).unwrap();
        let vectored_cost = vectored.now() - start;

        assert_eq!(results[0], TxnResult::Done);
        assert_eq!(results[2], TxnResult::Bytes(b"vector-me".to_vec()));
        assert_eq!(results[3], TxnResult::Pc(pc_scalar));
        assert!(
            vectored_cost < scalar_cost,
            "vectored {vectored_cost} !< scalar {scalar_cost}"
        );
        // 5 ops collapsed into one round trip.
        assert_eq!(vectored.txn_partials(), 0);
    }

    #[test]
    fn txn_validation_failure_applies_nothing() {
        let mut t = transport();
        let base = t.machine().board().ram_base;
        t.halt().unwrap();
        let mut txn = Txn::new();
        txn.write_mem(base + 0x80, b"poison")
            .write_mem(0xffff_0000, b"out-of-bounds");
        let err = t.run_txn(&txn).unwrap_err();
        assert!(!err.is_connection_loss());
        // The first (valid) write must NOT have landed.
        let mut buf = [0u8; 6];
        t.read_mem(base + 0x80, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 6], "doomed batch half-applied");
        assert_eq!(t.txn_partials(), 0);
    }

    #[test]
    fn txn_breakpoint_budget_checked_across_batch() {
        let mut t = transport();
        let max = t.machine().board().max_breakpoints;
        t.halt().unwrap();
        let mut txn = Txn::new();
        for i in 0..=max as u32 {
            txn.set_breakpoint(0x0800_0000 + i * 4);
        }
        let err = t.run_txn(&txn).unwrap_err();
        assert!(matches!(
            err,
            DapError::Target(HalError::BreakpointLimit { .. })
        ));
        assert!(
            t.machine().breakpoints().is_empty(),
            "over-budget batch installed comparators"
        );
        // A set/clear pair inside one batch stays within budget.
        let mut txn = Txn::new();
        for i in 0..max as u32 {
            txn.set_breakpoint(0x0800_0000 + i * 4);
            txn.clear_breakpoint(0x0800_0000 + i * 4);
        }
        txn.set_breakpoint(0x0800_1000);
        t.run_txn(&txn).unwrap();
        assert_eq!(t.machine().breakpoints(), &[0x0800_1000]);
    }

    #[test]
    fn empty_txn_is_free() {
        let mut t = transport();
        let before = t.now();
        let ops_before = t.ops();
        assert!(t.run_txn(&Txn::new()).unwrap().is_empty());
        assert_eq!(t.now(), before);
        assert_eq!(t.ops(), ops_before);
    }

    #[test]
    fn txn_against_dead_target_times_out_once() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::KillCore));
        let _ = t.continue_until_halt(100);
        let before = t.now();
        let mut txn = Txn::new();
        txn.halt().read_pc().resume();
        let err = t.run_txn(&txn).unwrap_err();
        assert!(err.is_connection_loss());
        // One timeout charge for the whole batch, not one per op.
        let spent = t.now() - before;
        assert!(spent >= LinkConfig::default().timeout);
        assert!(spent < 2 * LinkConfig::default().timeout);
        assert_eq!(t.timeouts(), 1);
    }

    #[test]
    fn flash_txn_works_on_boot_dead_target() {
        // A target that failed to boot (bad image) is dead, but flash and
        // reset lines answer independently — exactly like the scalar path.
        let mut t = transport();
        t.machine_mut()
            .reflash_partition("kernel", BROKEN_IMAGE)
            .unwrap();
        t.machine_mut().reset();
        assert!(t.machine().is_dead());
        let mut txn = Txn::new();
        txn.flash_write("kernel", b"IMG!fixed")
            .flash_checksum("kernel")
            .reset_target();
        let results = t.run_txn(&txn).unwrap();
        assert!(matches!(results[1], TxnResult::Checksum(_)));
        assert!(!t.machine().is_dead());
        assert!(t.read_pc().is_ok());
    }

    #[test]
    fn txn_under_outage_fails_with_nothing_applied() {
        let mut t = transport();
        let base = t.machine().board().ram_base;
        t.halt().unwrap();
        let now = t.now();
        t.schedule_outage(now, 5_000);
        let mut txn = Txn::new();
        txn.write_mem(base + 0x40, b"ghost")
            .set_breakpoint(0x0800_0100);
        assert_eq!(t.run_txn(&txn).unwrap_err(), DapError::LinkDown);
        t.machine_mut().bus_mut().charge(10_000);
        let mut buf = [0u8; 5];
        t.read_mem(base + 0x40, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 5], "write applied through a dark link");
        assert!(t.machine().breakpoints().is_empty());
        assert_eq!(t.txn_partials(), 0);
    }

    #[test]
    fn snapshot_delta_restore_over_txn() {
        let mut t = transport();
        let base = t.machine().board().ram_base;
        t.halt().unwrap();
        t.write_mem(base + 0x100, b"golden").unwrap();
        let snap = t.capture_snapshot().unwrap();
        // Scribble over the captured state.
        t.write_mem(base + 0x100, b"junked").unwrap();
        t.write_mem(base + 0x900, b"more junk").unwrap();
        // Ship the delta back as one vectored transaction.
        let pages: Vec<(u32, Vec<u8>)> = t
            .machine()
            .dirty_pages()
            .into_iter()
            .map(|p| (snap.page_addr(p), snap.page(p).to_vec()))
            .collect();
        assert!(!pages.is_empty());
        let mut txn = Txn::new();
        txn.write_pages(pages).restore_core();
        t.run_txn(&txn).unwrap();
        let mut buf = [0u8; 6];
        t.read_mem(base + 0x100, &mut buf).unwrap();
        assert_eq!(&buf, b"golden");
        let mut buf = [0u8; 9];
        t.read_mem(base + 0x900, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 9], "junk survived the delta restore");
        assert_eq!(t.txn_partials(), 0);
        // The core restarted without a hardware reset.
        assert!(!t.machine().is_dead());
        assert!(t.continue_until_halt(100).is_ok());
    }

    #[test]
    fn restore_core_refused_whole_when_image_is_stale() {
        let mut t = transport();
        let base = t.machine().board().ram_base;
        t.halt().unwrap();
        // Corrupt the image magic without resetting: the core still
        // answers, but a RestoreCore would boot-fail.
        t.machine_mut()
            .reflash_partition("kernel", BROKEN_IMAGE)
            .unwrap();
        let mut txn = Txn::new();
        txn.write_pages(vec![(base + 0x40, b"ghost".to_vec())])
            .restore_core();
        let err = t.run_txn(&txn).unwrap_err();
        assert!(!err.is_connection_loss());
        let mut buf = [0u8; 5];
        t.read_mem(base + 0x40, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 5], "doomed restore batch half-applied");
        assert_eq!(t.txn_partials(), 0);
    }

    #[test]
    fn capture_cost_scales_with_dirty_pages_not_ram_size() {
        let mut t = transport();
        let base = t.machine().board().ram_base;
        t.halt().unwrap();
        let first = t.capture_snapshot().unwrap();
        // Baseline established: a capture with nothing dirty is cheap.
        let before = t.now();
        t.capture_snapshot().unwrap();
        let clean_cost = t.now() - before;
        // Dirty a lot of pages; capture cost must grow with them.
        t.write_mem(base, &vec![0xAAu8; 64 * PAGE_SIZE]).unwrap();
        let before = t.now();
        let snap = t.capture_snapshot().unwrap();
        let dirty_cost = t.now() - before;
        assert!(
            dirty_cost > clean_cost + (64 * PAGE_SIZE as u64) / 8,
            "dirty capture ({dirty_cost}) not clearly dearer than clean ({clean_cost})"
        );
        // And far cheaper than shipping the whole RAM at scalar rates.
        let full_ram_cost = snap.ram_len() as u64 / 4;
        assert!(
            dirty_cost < full_ram_cost,
            "capture ({dirty_cost}) cost as much as a full RAM read ({full_ram_cost})"
        );
        assert_eq!(first.ram_len(), snap.ram_len());
    }

    #[test]
    fn flash_generation_probe_tracks_mutations() {
        let mut t = transport();
        let g0 = t.flash_generation().unwrap();
        t.flash_partition("kernel", b"IMG!other").unwrap();
        let g1 = t.flash_generation().unwrap();
        assert!(g1 > g0);
        let g2 = t.flash_generation().unwrap();
        assert_eq!(g1, g2, "reads must not bump the generation");
    }

    #[test]
    fn scalar_restore_core_restarts_without_reset_charge() {
        let mut t = transport();
        t.halt().unwrap();
        let resets_before = t.machine().reset_count();
        t.restore_core().unwrap();
        assert_eq!(t.machine().reset_count(), resets_before);
        assert!(t.continue_until_halt(100).is_ok());
    }

    fn prime_trace(t: &mut DebugTransport, ids: &[u64]) {
        let bus = t.machine_mut().bus_mut();
        bus.trace.set_enabled(true);
        for &id in ids {
            bus.trace.emit(id, false);
        }
    }

    #[test]
    fn vectored_trace_drain_returns_stream_and_resets_fifo() {
        let mut t = transport();
        prime_trace(&mut t, &[0x42, 0x43, 0x43]);
        t.halt().unwrap();
        let mut txn = Txn::new();
        txn.drain_trace();
        let results = t.run_txn(&txn).unwrap();
        let TxnResult::Bytes(buf) = &results[0] else {
            panic!("expected bytes, got {results:?}");
        };
        let used = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        assert!(used > 0);
        assert_eq!(buf.len(), 12 + used);
        // The drain reset the FIFO inside the same op.
        let again = t.run_txn(&txn).unwrap();
        let TxnResult::Bytes(empty) = &again[0] else {
            panic!("expected bytes");
        };
        assert_eq!(u32::from_le_bytes([empty[0], empty[1], empty[2], empty[3]]), 0);
    }

    #[test]
    fn scalar_and_vectored_trace_drains_return_identical_bytes() {
        let ids: &[u64] = &[7, 7, 9, 0xffff_0001, 9];
        let mut a = transport();
        prime_trace(&mut a, ids);
        a.halt().unwrap();
        let scalar = a.drain_trace().unwrap();
        let mut b = transport();
        prime_trace(&mut b, ids);
        b.halt().unwrap();
        let mut txn = Txn::new();
        txn.drain_trace();
        let results = b.run_txn(&txn).unwrap();
        assert_eq!(results[0], TxnResult::Bytes(scalar));
    }

    /// The stale-header regression (seeded): a batch that drains the
    /// same resource twice would have its second drain observe the
    /// header the first drain already reset — validation refuses the
    /// whole batch with the target untouched, for the trace FIFO and
    /// for a cmplog ring alike.
    #[test]
    fn duplicate_drains_in_one_txn_are_refused_whole() {
        let mut t = transport();
        prime_trace(&mut t, &[1, 2, 3]);
        t.halt().unwrap();
        let base = t.machine().board().ram_base;

        let mut txn = Txn::new();
        txn.drain_trace().drain_trace();
        assert!(matches!(t.run_txn(&txn), Err(DapError::Target(_))));
        // Refused whole: the FIFO still holds every packet.
        assert!(t.machine().bus().trace.used() > 0);

        // Same ring twice: refused. Two distinct rings: fine.
        let mut txn = Txn::new();
        txn.drain_ring(base + 0x100, 4, 8).drain_ring(base + 0x100, 4, 8);
        assert!(matches!(t.run_txn(&txn), Err(DapError::Target(_))));
        let mut txn = Txn::new();
        txn.drain_ring(base + 0x100, 4, 8)
            .drain_ring(base + 0x200, 4, 8)
            .drain_trace();
        assert_eq!(t.run_txn(&txn).unwrap().len(), 3);
    }

    /// A retried trace drain after a dropped submit returns exactly the
    /// bytes a fault-free drain would have: the drop applied nothing, so
    /// no packet is lost or duplicated across the retry.
    #[test]
    fn trace_drain_retry_is_lossless() {
        use crate::retry::{RetryPolicy, RetryStats};
        let ids: &[u64] = &[11, 12, 12, 13];
        let mut clean = transport();
        prime_trace(&mut clean, ids);
        clean.halt().unwrap();
        let mut txn = Txn::new();
        txn.drain_trace();
        let want = clean.run_txn(&txn).unwrap();

        let mut t = transport();
        prime_trace(&mut t, ids);
        t.halt().unwrap();
        let now = t.now();
        t.schedule_outage(now, 100);
        let mut stats = RetryStats::default();
        let got = RetryPolicy::default().run_txn(&mut stats, &mut t, &txn).unwrap();
        assert_eq!(stats.recovered, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn txn_retry_replays_whole_batch() {
        use crate::retry::{RetryPolicy, RetryStats};
        let mut t = transport();
        let base = t.machine().board().ram_base;
        t.halt().unwrap();
        let now = t.now();
        // Outage shorter than the first backoff: attempt 1 drops, the
        // replay applies the whole batch.
        t.schedule_outage(now, 100);
        let mut txn = Txn::new();
        txn.write_mem(base + 0x40, b"retry-me")
            .read_mem(base + 0x40, 8);
        let mut stats = RetryStats::default();
        let results = RetryPolicy::default()
            .run_txn(&mut stats, &mut t, &txn)
            .unwrap();
        assert_eq!(results[1], TxnResult::Bytes(b"retry-me".to_vec()));
        assert_eq!(stats.recovered, 1);
        assert_eq!(t.txn_partials(), 0);
    }
}
