//! OpenOCD-style text command server.
//!
//! The paper connects the host fuzzer to the board through OpenOCD
//! (§4.3.1, §4.6); EOF's Rust component speaks OpenOCD's Tcl-ish command
//! language. This module implements the subset of commands the fuzzer and
//! examples need, executing them against a [`DebugTransport`]:
//!
//! | command | effect |
//! |---|---|
//! | `halt` / `resume` | stop / start the core |
//! | `reset run` | hardware reset |
//! | `mdw ADDR [N]` | read N (default 1) 32-bit words |
//! | `mww ADDR VAL` | write one 32-bit word |
//! | `bp ADDR` / `rbp ADDR` | set / remove hardware breakpoint |
//! | `reg pc` | read the program counter |
//! | `flash write_image PART HEXBYTES` | program a partition |
//! | `flash verify_image PART HEXBYTES` | target-side checksum compare |
//! | `flash erase PART` | erase a partition |
//! | `reset halt` | reset and hold the core |
//! | `power` | sample the power rail |
//! | `targets` | identify the attached target |

use crate::error::DapError;
use crate::transport::DebugTransport;
use eof_hal::Endianness;

/// A command interpreter bound to one transport.
pub struct OcdServer {
    transport: DebugTransport,
}

impl OcdServer {
    /// Wrap a transport.
    pub fn new(transport: DebugTransport) -> Self {
        OcdServer { transport }
    }

    /// The underlying transport.
    pub fn transport(&self) -> &DebugTransport {
        &self.transport
    }

    /// Mutable transport access.
    pub fn transport_mut(&mut self) -> &mut DebugTransport {
        &mut self.transport
    }

    /// Consume the server, returning the transport.
    pub fn into_transport(self) -> DebugTransport {
        self.transport
    }

    /// Execute one command line, returning its textual response.
    pub fn execute(&mut self, line: &str) -> Result<String, DapError> {
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => Ok(String::new()),
            ["halt"] => {
                self.transport.halt()?;
                Ok("target halted".into())
            }
            ["resume"] => {
                self.transport.resume()?;
                Ok("target running".into())
            }
            ["reset", "run"] | ["reset"] => {
                self.transport.reset_target()?;
                Ok("target reset".into())
            }
            ["reset", "halt"] => {
                self.transport.reset_target()?;
                self.transport.halt()?;
                Ok("target reset, halted".into())
            }
            ["power"] => {
                let mw = self.transport.sample_power();
                Ok(format!("power: {mw:.1} mW"))
            }
            ["mdw", addr] | ["mdw", addr, "1"] => self.mdw(addr, 1),
            ["mdw", addr, n] => {
                let n: usize = n
                    .parse()
                    .map_err(|_| DapError::Protocol(format!("bad count {n:?}")))?;
                self.mdw(addr, n)
            }
            ["mww", addr, val] => {
                let addr = parse_num(addr)?;
                let val = parse_num(val)?;
                let e = self.endianness();
                self.transport.write_mem(addr, &e.u32_bytes(val))?;
                Ok(String::new())
            }
            ["bp", addr] => {
                self.transport.set_breakpoint(parse_num(addr)?)?;
                Ok("breakpoint set".into())
            }
            ["rbp", addr] => {
                self.transport.clear_breakpoint(parse_num(addr)?)?;
                Ok("breakpoint removed".into())
            }
            ["reg", "pc"] => {
                let pc = self.transport.read_pc()?;
                Ok(format!("pc (/32): {pc:#010x}"))
            }
            ["flash", "write_image", part, hex] => {
                let image = parse_hex_bytes(hex)?;
                self.transport.flash_partition(part, &image)?;
                Ok(format!("wrote {} bytes to {part}", image.len()))
            }
            ["flash", "verify_image", part, hex] => {
                let image = parse_hex_bytes(hex)?;
                let target_cs = self.transport.flash_checksum(part)?;
                // Pad to the partition size, as the flasher would have.
                let size = self
                    .transport
                    .machine()
                    .flash()
                    .table()
                    .get(part)
                    .map_err(eof_dap_part_err)?
                    .size as usize;
                let mut padded = image;
                padded.resize(size, 0xff);
                let expect = eof_hal::flash::fnv1a(&padded);
                if target_cs == expect {
                    Ok("verified OK".into())
                } else {
                    Ok(format!(
                        "MISMATCH: target {target_cs:#x} != image {expect:#x}"
                    ))
                }
            }
            ["flash", "erase", part] => {
                let part_info = self
                    .transport
                    .machine()
                    .flash()
                    .table()
                    .get(part)
                    .map_err(eof_dap_part_err)?
                    .clone();
                self.transport
                    .machine_mut()
                    .flash_mut()
                    .erase(part_info.offset, part_info.size as usize)
                    .map_err(eof_dap_part_err)?;
                Ok(format!("erased {part}"))
            }
            ["targets"] => {
                let b = self.transport.machine().board();
                Ok(format!(
                    "{} ({}, {}) via {}",
                    b.name, b.arch, b.endianness, b.debug_iface
                ))
            }
            other => Err(DapError::Protocol(format!(
                "unknown command {:?}",
                other.join(" ")
            ))),
        }
    }

    fn endianness(&self) -> Endianness {
        self.transport.machine().board().endianness
    }

    fn mdw(&mut self, addr: &str, n: usize) -> Result<String, DapError> {
        let addr = parse_num(addr)?;
        let e = self.endianness();
        let mut out = String::new();
        for i in 0..n {
            let mut b = [0u8; 4];
            self.transport.read_mem(addr + (i as u32) * 4, &mut b)?;
            let v = e.u32_from(b);
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{v:#010x}"));
        }
        Ok(format!("{addr:#010x}: {out}"))
    }
}

fn eof_dap_part_err(e: eof_hal::HalError) -> DapError {
    DapError::Target(e)
}

fn parse_num(s: &str) -> Result<u32, DapError> {
    let r = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| DapError::Protocol(format!("bad number {s:?}")))
}

fn parse_hex_bytes(s: &str) -> Result<Vec<u8>, DapError> {
    if !s.len().is_multiple_of(2) {
        return Err(DapError::Protocol("odd hex string".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| DapError::Protocol(format!("bad hex at {i}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LinkConfig;
    use eof_hal::{BoardCatalog, FirmwareLoader, Machine};

    struct Idle {
        symbols: eof_hal::SymbolTable,
    }

    impl eof_hal::Firmware for Idle {
        fn name(&self) -> &str {
            "idle"
        }
        fn symbols(&self) -> &eof_hal::SymbolTable {
            &self.symbols
        }
        fn step(&mut self, bus: &mut eof_hal::Bus) -> eof_hal::StepResult {
            eof_hal::StepResult::Running {
                pc: 0x1000 + (bus.now() % 64) as u32,
                cycles: 1,
            }
        }
        fn on_reset(&mut self, _bus: &mut eof_hal::Bus) {}
        fn freeze(&mut self) {}
    }

    fn server() -> OcdServer {
        let loader: FirmwareLoader = Box::new(|_, _| {
            Ok(Box::new(Idle {
                symbols: eof_hal::SymbolTable::new(),
            }))
        });
        let mut m = Machine::new(BoardCatalog::stm32f4_disco(), loader);
        m.reset();
        OcdServer::new(DebugTransport::attach(m, LinkConfig::default()))
    }

    #[test]
    fn memory_commands_roundtrip() {
        let mut s = server();
        s.execute("mww 0x20000010 0xdeadbeef").unwrap();
        let out = s.execute("mdw 0x20000010").unwrap();
        assert!(out.contains("0xdeadbeef"), "{out}");
    }

    #[test]
    fn multi_word_read() {
        let mut s = server();
        s.execute("mww 0x20000000 0x00000001").unwrap();
        s.execute("mww 0x20000004 0x00000002").unwrap();
        let out = s.execute("mdw 0x20000000 2").unwrap();
        assert!(out.contains("0x00000001 0x00000002"), "{out}");
    }

    #[test]
    fn halt_resume_reset() {
        let mut s = server();
        assert_eq!(s.execute("halt").unwrap(), "target halted");
        assert_eq!(s.execute("resume").unwrap(), "target running");
        assert_eq!(s.execute("reset run").unwrap(), "target reset");
    }

    #[test]
    fn breakpoints() {
        let mut s = server();
        assert!(s.execute("bp 0x1000").unwrap().contains("set"));
        assert!(s.execute("rbp 0x1000").unwrap().contains("removed"));
    }

    #[test]
    fn reg_pc() {
        let mut s = server();
        let out = s.execute("reg pc").unwrap();
        assert!(out.starts_with("pc (/32): 0x"), "{out}");
    }

    #[test]
    fn flash_write_image() {
        let mut s = server();
        let out = s.execute("flash write_image fs 48656c6c6f").unwrap();
        assert!(out.contains("wrote 5 bytes"), "{out}");
        assert_eq!(
            &s.transport()
                .machine()
                .flash()
                .read_partition("fs")
                .unwrap()[..5],
            b"Hello"
        );
    }

    #[test]
    fn flash_verify_and_erase() {
        let mut s = server();
        s.execute("flash write_image fs 48656c6c6f").unwrap();
        assert_eq!(
            s.execute("flash verify_image fs 48656c6c6f").unwrap(),
            "verified OK"
        );
        assert!(s
            .execute("flash verify_image fs 42414421")
            .unwrap()
            .contains("MISMATCH"));
        s.execute("flash erase fs").unwrap();
        assert!(s
            .execute("flash verify_image fs 48656c6c6f")
            .unwrap()
            .contains("MISMATCH"));
    }

    #[test]
    fn reset_halt_and_power() {
        let mut s = server();
        assert!(s.execute("reset halt").unwrap().contains("halted"));
        assert!(s.execute("power").unwrap().starts_with("power: "));
    }

    #[test]
    fn targets_identifies_board() {
        let mut s = server();
        let out = s.execute("targets").unwrap();
        assert!(out.contains("stm32f4-discovery"));
        assert!(out.contains("SWD"));
    }

    #[test]
    fn unknown_command_is_protocol_error() {
        let mut s = server();
        assert!(matches!(
            s.execute("explode everything").unwrap_err(),
            DapError::Protocol(_)
        ));
    }

    #[test]
    fn bad_numbers_rejected() {
        let mut s = server();
        assert!(s.execute("mdw zzz").is_err());
        assert!(s.execute("flash write_image fs abc").is_err());
    }
}
