//! OpenOCD-style text command server.
//!
//! The paper connects the host fuzzer to the board through OpenOCD
//! (§4.3.1, §4.6); EOF's Rust component speaks OpenOCD's Tcl-ish command
//! language. This module implements the subset of commands the fuzzer and
//! examples need, executing them against a [`DebugTransport`]:
//!
//! | command | effect |
//! |---|---|
//! | `halt` / `resume` | stop / start the core |
//! | `reset run` | hardware reset |
//! | `mdw ADDR [N]` | read N (default 1) 32-bit words |
//! | `mww ADDR VAL` | write one 32-bit word |
//! | `bp ADDR` / `rbp ADDR` | set / remove hardware breakpoint |
//! | `reg pc` | read the program counter |
//! | `flash write_image PART HEXBYTES` | program a partition |
//! | `flash verify_image PART HEXBYTES` | target-side checksum compare |
//! | `flash erase PART` | erase a partition |
//! | `reset halt` | reset and hold the core |
//! | `power` | sample the power rail |
//! | `targets` | identify the attached target |
//! | `batch CMD;CMD;…` | run sub-commands as **one** vectored transaction |
//!
//! `batch` queues its `;`-separated sub-commands into a [`Txn`] and
//! submits them through `DebugTransport::run_txn`: one link round trip,
//! all-or-nothing semantics. Sub-command outputs come back joined with
//! `" | "` in queue order. Supported inside a batch: `halt`, `resume`,
//! `reset [run]`, `mdw`, `mww`, `bp`, `rbp`, `reg pc`,
//! `flash write_image`, `flash verify_image`,
//! `flash verify_sectors PART N` (per-sector checksums),
//! `flash write_sectors PART IDX:HEX,IDX:HEX,…` (sector-delta repair),
//! `write_pages ADDR:HEX,ADDR:HEX,…` (snapshot-delta scatter write),
//! `restore_core` (restart from the reset vector without a reset) and
//! `drain_ring ADDR CAP RECBYTES` (atomic cmplog ring drain-and-reset,
//! replying the raw ring image as hex) and `drain_trace` (atomic
//! hardware-trace FIFO drain-and-reset, replying header + stream hex).

use crate::error::DapError;
use crate::transport::DebugTransport;
use crate::txn::{Txn, TxnResult};
use eof_hal::Endianness;

/// A command interpreter bound to one transport.
pub struct OcdServer {
    transport: DebugTransport,
}

impl OcdServer {
    /// Wrap a transport.
    pub fn new(transport: DebugTransport) -> Self {
        OcdServer { transport }
    }

    /// The underlying transport.
    pub fn transport(&self) -> &DebugTransport {
        &self.transport
    }

    /// Mutable transport access.
    pub fn transport_mut(&mut self) -> &mut DebugTransport {
        &mut self.transport
    }

    /// Consume the server, returning the transport.
    pub fn into_transport(self) -> DebugTransport {
        self.transport
    }

    /// Execute one command line, returning its textual response.
    pub fn execute(&mut self, line: &str) -> Result<String, DapError> {
        // `batch` carries `;`-separated sub-commands: peel it off before
        // the whitespace split mangles the separators.
        if let Some(body) = line.trim_start().strip_prefix("batch ") {
            return self.batch(body);
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => Ok(String::new()),
            ["halt"] => {
                self.transport.halt()?;
                Ok("target halted".into())
            }
            ["resume"] => {
                self.transport.resume()?;
                Ok("target running".into())
            }
            ["reset", "run"] | ["reset"] => {
                self.transport.reset_target()?;
                Ok("target reset".into())
            }
            ["reset", "halt"] => {
                self.transport.reset_target()?;
                self.transport.halt()?;
                Ok("target reset, halted".into())
            }
            ["power"] => {
                let mw = self.transport.sample_power();
                Ok(format!("power: {mw:.1} mW"))
            }
            ["mdw", addr] | ["mdw", addr, "1"] => self.mdw(addr, 1),
            ["mdw", addr, n] => {
                let n: usize = n
                    .parse()
                    .map_err(|_| DapError::Protocol(format!("bad count {n:?}")))?;
                self.mdw(addr, n)
            }
            ["mww", addr, val] => {
                let addr = parse_num(addr)?;
                let val = parse_num(val)?;
                let e = self.endianness();
                self.transport.write_mem(addr, &e.u32_bytes(val))?;
                Ok(String::new())
            }
            ["bp", addr] => {
                self.transport.set_breakpoint(parse_num(addr)?)?;
                Ok("breakpoint set".into())
            }
            ["rbp", addr] => {
                self.transport.clear_breakpoint(parse_num(addr)?)?;
                Ok("breakpoint removed".into())
            }
            ["reg", "pc"] => {
                let pc = self.transport.read_pc()?;
                Ok(format!("pc (/32): {pc:#010x}"))
            }
            ["flash", "write_image", part, hex] => {
                let image = parse_hex_bytes(hex)?;
                self.transport.flash_partition(part, &image)?;
                Ok(format!("wrote {} bytes to {part}", image.len()))
            }
            ["flash", "verify_image", part, hex] => {
                let image = parse_hex_bytes(hex)?;
                let target_cs = self.transport.flash_checksum(part)?;
                // Pad to the partition size, as the flasher would have.
                let size = self
                    .transport
                    .machine()
                    .flash()
                    .table()
                    .get(part)
                    .map_err(eof_dap_part_err)?
                    .size as usize;
                let mut padded = image;
                padded.resize(size, 0xff);
                let expect = eof_hal::flash::fnv1a(&padded);
                if target_cs == expect {
                    Ok("verified OK".into())
                } else {
                    Ok(format!(
                        "MISMATCH: target {target_cs:#x} != image {expect:#x}"
                    ))
                }
            }
            ["flash", "erase", part] => {
                let part_info = self
                    .transport
                    .machine()
                    .flash()
                    .table()
                    .get(part)
                    .map_err(eof_dap_part_err)?
                    .clone();
                self.transport
                    .machine_mut()
                    .flash_mut()
                    .erase(part_info.offset, part_info.size as usize)
                    .map_err(eof_dap_part_err)?;
                Ok(format!("erased {part}"))
            }
            ["targets"] => {
                let b = self.transport.machine().board();
                Ok(format!(
                    "{} ({}, {}) via {}",
                    b.name, b.arch, b.endianness, b.debug_iface
                ))
            }
            other => Err(DapError::Protocol(format!(
                "unknown command {:?}",
                other.join(" ")
            ))),
        }
    }

    /// Queue `;`-separated sub-commands into one vectored transaction,
    /// submit it, and render the per-op replies.
    fn batch(&mut self, body: &str) -> Result<String, DapError> {
        enum Fmt {
            Plain(&'static str),
            Words {
                addr: u32,
                n: usize,
            },
            Pc,
            Wrote {
                part: String,
                len: usize,
            },
            Verify {
                expect: u64,
            },
            Sectors,
            WroteSectors {
                part: String,
                n: usize,
                bytes: usize,
            },
            Pages {
                n: usize,
                bytes: usize,
            },
            Ring,
            Trace,
        }
        let e = self.endianness();
        let mut txn = Txn::new();
        let mut fmts = Vec::new();
        for cmd in body.split(';') {
            let words: Vec<&str> = cmd.split_whitespace().collect();
            match words.as_slice() {
                [] => continue,
                ["halt"] => {
                    txn.halt();
                    fmts.push(Fmt::Plain("target halted"));
                }
                ["resume"] => {
                    txn.resume();
                    fmts.push(Fmt::Plain("target running"));
                }
                ["reset", "run"] | ["reset"] => {
                    txn.reset_target();
                    fmts.push(Fmt::Plain("target reset"));
                }
                ["mdw", addr] | ["mdw", addr, "1"] => {
                    let addr = parse_num(addr)?;
                    txn.read_mem(addr, 4);
                    fmts.push(Fmt::Words { addr, n: 1 });
                }
                ["mdw", addr, n] => {
                    let addr = parse_num(addr)?;
                    let n: usize = n
                        .parse()
                        .map_err(|_| DapError::Protocol(format!("bad count {n:?}")))?;
                    txn.read_mem(addr, (n as u32) * 4);
                    fmts.push(Fmt::Words { addr, n });
                }
                ["mww", addr, val] => {
                    txn.write_mem(parse_num(addr)?, &e.u32_bytes(parse_num(val)?));
                    fmts.push(Fmt::Plain("ok"));
                }
                ["bp", addr] => {
                    txn.set_breakpoint(parse_num(addr)?);
                    fmts.push(Fmt::Plain("breakpoint set"));
                }
                ["rbp", addr] => {
                    txn.clear_breakpoint(parse_num(addr)?);
                    fmts.push(Fmt::Plain("breakpoint removed"));
                }
                ["reg", "pc"] => {
                    txn.read_pc();
                    fmts.push(Fmt::Pc);
                }
                ["flash", "write_image", part, hex] => {
                    let image = parse_hex_bytes(hex)?;
                    fmts.push(Fmt::Wrote {
                        part: part.to_string(),
                        len: image.len(),
                    });
                    txn.flash_write(part, &image);
                }
                ["flash", "verify_image", part, hex] => {
                    let image = parse_hex_bytes(hex)?;
                    let size = self
                        .transport
                        .machine()
                        .flash()
                        .table()
                        .get(part)
                        .map_err(eof_dap_part_err)?
                        .size as usize;
                    let mut padded = image;
                    padded.resize(size, 0xff);
                    fmts.push(Fmt::Verify {
                        expect: eof_hal::flash::fnv1a(&padded),
                    });
                    txn.flash_checksum(part);
                }
                ["flash", "verify_sectors", part, n] => {
                    let n: u32 = n
                        .parse()
                        .map_err(|_| DapError::Protocol(format!("bad sector count {n:?}")))?;
                    txn.flash_sector_checksums(part, n);
                    fmts.push(Fmt::Sectors);
                }
                ["flash", "write_sectors", part, spec] => {
                    let sectors = spec
                        .split(',')
                        .map(|sector| {
                            let (idx, hex) = sector.split_once(':').ok_or_else(|| {
                                DapError::Protocol(format!("bad sector spec {sector:?}"))
                            })?;
                            Ok((parse_num(idx)?, parse_hex_bytes(hex)?))
                        })
                        .collect::<Result<Vec<_>, DapError>>()?;
                    fmts.push(Fmt::WroteSectors {
                        part: part.to_string(),
                        n: sectors.len(),
                        bytes: sectors.iter().map(|(_, d)| d.len()).sum(),
                    });
                    txn.flash_write_sectors(part, sectors);
                }
                ["write_pages", spec] => {
                    let pages = spec
                        .split(',')
                        .map(|page| {
                            let (addr, hex) = page.split_once(':').ok_or_else(|| {
                                DapError::Protocol(format!("bad page spec {page:?}"))
                            })?;
                            Ok((parse_num(addr)?, parse_hex_bytes(hex)?))
                        })
                        .collect::<Result<Vec<_>, DapError>>()?;
                    let (n, bytes) = (
                        pages.len(),
                        pages.iter().map(|(_, d)| d.len()).sum::<usize>(),
                    );
                    txn.write_pages(pages);
                    fmts.push(Fmt::Pages { n, bytes });
                }
                ["restore_core"] => {
                    txn.restore_core();
                    fmts.push(Fmt::Plain("core restored"));
                }
                ["drain_ring", base, cap, rec] => {
                    txn.drain_ring(parse_num(base)?, parse_num(cap)?, parse_num(rec)?);
                    fmts.push(Fmt::Ring);
                }
                ["drain_trace"] => {
                    txn.drain_trace();
                    fmts.push(Fmt::Trace);
                }
                other => {
                    return Err(DapError::Protocol(format!(
                        "unknown batch sub-command {:?}",
                        other.join(" ")
                    )))
                }
            }
        }
        let results = self.transport.run_txn(&txn)?;
        let mut outs = Vec::with_capacity(results.len());
        for (fmt, res) in fmts.iter().zip(results.iter()) {
            outs.push(match (fmt, res) {
                (Fmt::Plain(s), _) => (*s).to_string(),
                (Fmt::Words { addr, n }, TxnResult::Bytes(b)) => {
                    let words: Vec<String> = (0..*n)
                        .map(|i| {
                            let w =
                                e.u32_from([b[i * 4], b[i * 4 + 1], b[i * 4 + 2], b[i * 4 + 3]]);
                            format!("{w:#010x}")
                        })
                        .collect();
                    format!("{addr:#010x}: {}", words.join(" "))
                }
                (Fmt::Pc, TxnResult::Pc(pc)) => format!("pc (/32): {pc:#010x}"),
                (Fmt::Wrote { part, len }, _) => format!("wrote {len} bytes to {part}"),
                (Fmt::Pages { n, bytes }, _) => format!("restored {n} pages ({bytes} bytes)"),
                (Fmt::Verify { expect }, TxnResult::Checksum(cs)) => {
                    if cs == expect {
                        "verified OK".to_string()
                    } else {
                        format!("MISMATCH: target {cs:#x} != image {expect:#x}")
                    }
                }
                (Fmt::Sectors, TxnResult::Checksums(css)) => format!(
                    "sectors: {}",
                    css.iter()
                        .map(|cs| format!("{cs:016x}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
                (Fmt::WroteSectors { part, n, bytes }, _) => {
                    format!("wrote {n} sectors ({bytes} bytes) to {part}")
                }
                (Fmt::Ring, TxnResult::Bytes(b)) => format!(
                    "ring: {}",
                    b.iter().map(|x| format!("{x:02x}")).collect::<String>()
                ),
                (Fmt::Trace, TxnResult::Bytes(b)) => format!(
                    "trace: {}",
                    b.iter().map(|x| format!("{x:02x}")).collect::<String>()
                ),
                _ => return Err(DapError::Protocol("batch reply shape mismatch".into())),
            });
        }
        Ok(outs.join(" | "))
    }

    fn endianness(&self) -> Endianness {
        self.transport.machine().board().endianness
    }

    fn mdw(&mut self, addr: &str, n: usize) -> Result<String, DapError> {
        let addr = parse_num(addr)?;
        let e = self.endianness();
        let mut out = String::new();
        for i in 0..n {
            let mut b = [0u8; 4];
            self.transport.read_mem(addr + (i as u32) * 4, &mut b)?;
            let v = e.u32_from(b);
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{v:#010x}"));
        }
        Ok(format!("{addr:#010x}: {out}"))
    }
}

fn eof_dap_part_err(e: eof_hal::HalError) -> DapError {
    DapError::Target(e)
}

fn parse_num(s: &str) -> Result<u32, DapError> {
    let r = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| DapError::Protocol(format!("bad number {s:?}")))
}

fn parse_hex_bytes(s: &str) -> Result<Vec<u8>, DapError> {
    if !s.len().is_multiple_of(2) {
        return Err(DapError::Protocol("odd hex string".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| DapError::Protocol(format!("bad hex at {i}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LinkConfig;
    use eof_hal::{BoardCatalog, FirmwareLoader, Machine};

    struct Idle {
        symbols: eof_hal::SymbolTable,
    }

    impl eof_hal::Firmware for Idle {
        fn name(&self) -> &str {
            "idle"
        }
        fn symbols(&self) -> &eof_hal::SymbolTable {
            &self.symbols
        }
        fn step(&mut self, bus: &mut eof_hal::Bus) -> eof_hal::StepResult {
            eof_hal::StepResult::Running {
                pc: 0x1000 + (bus.now() % 64) as u32,
                cycles: 1,
            }
        }
        fn on_reset(&mut self, _bus: &mut eof_hal::Bus) {}
        fn freeze(&mut self) {}
    }

    fn server() -> OcdServer {
        let loader: FirmwareLoader = Box::new(|_, _| {
            Ok(Box::new(Idle {
                symbols: eof_hal::SymbolTable::new(),
            }))
        });
        let mut m = Machine::new(BoardCatalog::stm32f4_disco(), loader);
        m.reset();
        OcdServer::new(DebugTransport::attach(m, LinkConfig::default()))
    }

    #[test]
    fn memory_commands_roundtrip() {
        let mut s = server();
        s.execute("mww 0x20000010 0xdeadbeef").unwrap();
        let out = s.execute("mdw 0x20000010").unwrap();
        assert!(out.contains("0xdeadbeef"), "{out}");
    }

    #[test]
    fn multi_word_read() {
        let mut s = server();
        s.execute("mww 0x20000000 0x00000001").unwrap();
        s.execute("mww 0x20000004 0x00000002").unwrap();
        let out = s.execute("mdw 0x20000000 2").unwrap();
        assert!(out.contains("0x00000001 0x00000002"), "{out}");
    }

    #[test]
    fn halt_resume_reset() {
        let mut s = server();
        assert_eq!(s.execute("halt").unwrap(), "target halted");
        assert_eq!(s.execute("resume").unwrap(), "target running");
        assert_eq!(s.execute("reset run").unwrap(), "target reset");
    }

    #[test]
    fn breakpoints() {
        let mut s = server();
        assert!(s.execute("bp 0x1000").unwrap().contains("set"));
        assert!(s.execute("rbp 0x1000").unwrap().contains("removed"));
    }

    #[test]
    fn reg_pc() {
        let mut s = server();
        let out = s.execute("reg pc").unwrap();
        assert!(out.starts_with("pc (/32): 0x"), "{out}");
    }

    #[test]
    fn flash_write_image() {
        let mut s = server();
        let out = s.execute("flash write_image fs 48656c6c6f").unwrap();
        assert!(out.contains("wrote 5 bytes"), "{out}");
        assert_eq!(
            &s.transport()
                .machine()
                .flash()
                .read_partition("fs")
                .unwrap()[..5],
            b"Hello"
        );
    }

    #[test]
    fn flash_verify_and_erase() {
        let mut s = server();
        s.execute("flash write_image fs 48656c6c6f").unwrap();
        assert_eq!(
            s.execute("flash verify_image fs 48656c6c6f").unwrap(),
            "verified OK"
        );
        assert!(s
            .execute("flash verify_image fs 42414421")
            .unwrap()
            .contains("MISMATCH"));
        s.execute("flash erase fs").unwrap();
        assert!(s
            .execute("flash verify_image fs 48656c6c6f")
            .unwrap()
            .contains("MISMATCH"));
    }

    #[test]
    fn reset_halt_and_power() {
        let mut s = server();
        assert!(s.execute("reset halt").unwrap().contains("halted"));
        assert!(s.execute("power").unwrap().starts_with("power: "));
    }

    #[test]
    fn targets_identifies_board() {
        let mut s = server();
        let out = s.execute("targets").unwrap();
        assert!(out.contains("stm32f4-discovery"));
        assert!(out.contains("SWD"));
    }

    #[test]
    fn unknown_command_is_protocol_error() {
        let mut s = server();
        assert!(matches!(
            s.execute("explode everything").unwrap_err(),
            DapError::Protocol(_)
        ));
    }

    #[test]
    fn bad_numbers_rejected() {
        let mut s = server();
        assert!(s.execute("mdw zzz").is_err());
        assert!(s.execute("flash write_image fs abc").is_err());
    }

    #[test]
    fn batch_runs_subcommands_in_one_transaction() {
        let mut s = server();
        let out = s
            .execute("batch halt; mww 0x20000010 0xdeadbeef; mdw 0x20000010; reg pc; resume")
            .unwrap();
        assert!(out.contains("target halted"), "{out}");
        assert!(out.contains("0xdeadbeef"), "{out}");
        assert!(out.contains("pc (/32): 0x"), "{out}");
        assert!(out.contains("target running"), "{out}");
        assert_eq!(out.matches(" | ").count(), 4, "{out}");
    }

    #[test]
    fn batch_flash_write_and_verify() {
        let mut s = server();
        let out = s
            .execute("batch flash write_image fs 48656c6c6f; flash verify_image fs 48656c6c6f")
            .unwrap();
        assert_eq!(out, "wrote 5 bytes to fs | verified OK");
        let out = s.execute("batch flash verify_image fs 42414421").unwrap();
        assert!(out.contains("MISMATCH"), "{out}");
    }

    #[test]
    fn batch_is_cheaper_than_scalar_sequence() {
        let mut scalar = server();
        let start = scalar.transport().now();
        scalar.execute("halt").unwrap();
        scalar.execute("mww 0x20000010 0xdeadbeef").unwrap();
        scalar.execute("mdw 0x20000010").unwrap();
        scalar.execute("resume").unwrap();
        let scalar_cost = scalar.transport().now() - start;

        let mut vectored = server();
        let start = vectored.transport().now();
        vectored
            .execute("batch halt; mww 0x20000010 0xdeadbeef; mdw 0x20000010; resume")
            .unwrap();
        let vectored_cost = vectored.transport().now() - start;
        assert!(
            vectored_cost < scalar_cost,
            "vectored {vectored_cost} !< scalar {scalar_cost}"
        );
    }

    #[test]
    fn batch_snapshot_restore_subcommands() {
        let mut s = server();
        s.execute("batch halt; mww 0x20000010 0xdeadbeef").unwrap();
        let out = s
            .execute("batch write_pages 0x20000010:00000000,0x20000020:cafebabe; restore_core")
            .unwrap();
        assert_eq!(out, "restored 2 pages (8 bytes) | core restored");
        let out = s.execute("mdw 0x20000010").unwrap();
        assert!(out.contains("0x00000000"), "{out}");
        assert!(s.execute("batch write_pages 0x20000010-junk").is_err());
    }

    #[test]
    fn batch_drain_ring_reads_and_resets() {
        let mut s = server();
        // Ring at 0x20000100: count=1, cap=2, overflow=0, one 8-byte record.
        s.execute("batch halt; mww 0x20000100 1; mww 0x20000104 2; mww 0x20000108 0")
            .unwrap();
        s.execute("mww 0x2000010c 0xdeadbeef").unwrap();
        let out = s.execute("batch drain_ring 0x20000100 2 8").unwrap();
        assert!(out.starts_with("ring: 01000000"), "{out}");
        // Count and overflow zeroed, arming word kept.
        let out = s.execute("mdw 0x20000100 3").unwrap();
        assert!(out.contains("0x00000000 0x00000002 0x00000000"), "{out}");
    }

    #[test]
    fn batch_drain_trace_reads_and_resets() {
        let mut s = server();
        let bus = s.transport.machine_mut().bus_mut();
        bus.trace.set_enabled(true);
        bus.trace.emit(0x42, false);
        let out = s.execute("batch halt; drain_trace").unwrap();
        // 10-byte SYNC packet: used=0x0a, then the packet bytes.
        assert!(out.contains("trace: 0a000000"), "{out}");
        assert!(out.contains("00a54200000000000000"), "{out}");
        // FIFO reset: a second drain returns an empty stream.
        let out = s.execute("batch drain_trace").unwrap();
        assert!(out.contains("trace: 00000000"), "{out}");
    }

    #[test]
    fn batch_rejects_unknown_subcommand() {
        let mut s = server();
        assert!(matches!(
            s.execute("batch halt; explode").unwrap_err(),
            DapError::Protocol(_)
        ));
    }
}
