//! JTAG TAP controller state machine (IEEE 1149.1).
//!
//! OpenOCD drives the target's Test Access Port through the standard
//! 16-state machine; every halt/memory/flash operation ultimately becomes
//! TMS/TDI sequences walking this graph. The reproduction models the
//! controller faithfully so the JTAG-interfaced boards exercise a real
//! protocol layer (and so link-level statistics like TCK cycles per
//! operation are available to the cost model).

/// The sixteen TAP controller states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapState {
    /// Test-Logic-Reset: TAP held in reset.
    TestLogicReset,
    /// Run-Test/Idle.
    RunTestIdle,
    /// Select-DR-Scan.
    SelectDrScan,
    /// Capture-DR.
    CaptureDr,
    /// Shift-DR.
    ShiftDr,
    /// Exit1-DR.
    Exit1Dr,
    /// Pause-DR.
    PauseDr,
    /// Exit2-DR.
    Exit2Dr,
    /// Update-DR.
    UpdateDr,
    /// Select-IR-Scan.
    SelectIrScan,
    /// Capture-IR.
    CaptureIr,
    /// Shift-IR.
    ShiftIr,
    /// Exit1-IR.
    Exit1Ir,
    /// Pause-IR.
    PauseIr,
    /// Exit2-IR.
    Exit2Ir,
    /// Update-IR.
    UpdateIr,
}

/// A TAP controller tracking state and TCK statistics.
#[derive(Debug, Clone)]
pub struct TapController {
    state: TapState,
    tck_cycles: u64,
}

impl Default for TapController {
    fn default() -> Self {
        Self::new()
    }
}

impl TapController {
    /// A controller in Test-Logic-Reset (the power-on state).
    pub fn new() -> Self {
        TapController {
            state: TapState::TestLogicReset,
            tck_cycles: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TapState {
        self.state
    }

    /// Total TCK clock cycles applied.
    pub fn tck_cycles(&self) -> u64 {
        self.tck_cycles
    }

    /// Clock one TCK with the given TMS level (the IEEE 1149.1 table).
    pub fn clock(&mut self, tms: bool) -> TapState {
        use TapState::*;
        self.tck_cycles += 1;
        self.state = match (self.state, tms) {
            (TestLogicReset, false) => RunTestIdle,
            (TestLogicReset, true) => TestLogicReset,
            (RunTestIdle, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (SelectDrScan, false) => CaptureDr,
            (SelectDrScan, true) => SelectIrScan,
            (CaptureDr, false) => ShiftDr,
            (CaptureDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (Exit1Dr, false) => PauseDr,
            (Exit1Dr, true) => UpdateDr,
            (PauseDr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (Exit2Dr, false) => ShiftDr,
            (Exit2Dr, true) => UpdateDr,
            (UpdateDr, false) => RunTestIdle,
            (UpdateDr, true) => SelectDrScan,
            (SelectIrScan, false) => CaptureIr,
            (SelectIrScan, true) => TestLogicReset,
            (CaptureIr, false) => ShiftIr,
            (CaptureIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (Exit1Ir, false) => PauseIr,
            (Exit1Ir, true) => UpdateIr,
            (PauseIr, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (Exit2Ir, false) => ShiftIr,
            (Exit2Ir, true) => UpdateIr,
            (UpdateIr, false) => RunTestIdle,
            (UpdateIr, true) => SelectDrScan,
        };
        self.state
    }

    /// Five TMS-high clocks reach Test-Logic-Reset from any state.
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.clock(true);
        }
        debug_assert_eq!(self.state, TapState::TestLogicReset);
    }

    /// Walk to Shift-DR from Run-Test/Idle and shift `bits` data bits,
    /// returning to Run-Test/Idle. Returns TCK cycles used. This is the
    /// skeleton of every DR scan (memory access, register access).
    ///
    /// The Shift-DR self-loop is applied arithmetically — clocking a
    /// megabit scan one edge at a time would only exercise the same
    /// self-transition `bits` times.
    pub fn scan_dr(&mut self, bits: u32) -> u64 {
        let start = self.tck_cycles;
        // Fresh or just-reset controllers sit in Test-Logic-Reset; one
        // TMS-low edge steps into Run-Test/Idle, where DR scans start.
        if self.state == TapState::TestLogicReset {
            self.clock(false);
        }
        // From RunTestIdle: TMS 1,0,0 → SelectDR, CaptureDR, ShiftDR.
        self.clock(true);
        self.clock(false);
        self.clock(false);
        debug_assert_eq!(self.state, TapState::ShiftDr);
        // bits-1 TMS-low edges stay in Shift-DR; account them directly.
        self.tck_cycles += (bits.saturating_sub(1)) as u64;
        // Last bit with TMS high → Exit1-DR.
        self.clock(true);
        // Update-DR, back to Run-Test/Idle.
        self.clock(true);
        self.clock(false);
        self.tck_cycles - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_state() {
        assert_eq!(TapController::new().state(), TapState::TestLogicReset);
    }

    #[test]
    fn tms_low_leaves_reset() {
        let mut t = TapController::new();
        assert_eq!(t.clock(false), TapState::RunTestIdle);
    }

    #[test]
    fn five_tms_high_resets_from_anywhere() {
        let mut t = TapController::new();
        // Wander somewhere deep.
        t.clock(false);
        t.clock(true);
        t.clock(false);
        t.clock(false);
        assert_eq!(t.state(), TapState::ShiftDr);
        t.reset();
        assert_eq!(t.state(), TapState::TestLogicReset);
    }

    #[test]
    fn dr_scan_path() {
        let mut t = TapController::new();
        t.clock(false); // RunTestIdle
        let cycles = t.scan_dr(32);
        assert_eq!(t.state(), TapState::RunTestIdle);
        // 3 entry clocks + 32 shift clocks + 2 exit clocks.
        assert_eq!(cycles, 3 + 32 + 2);
    }

    #[test]
    fn ir_path_reachable() {
        let mut t = TapController::new();
        t.clock(false); // idle
        t.clock(true); // select-dr
        t.clock(true); // select-ir
        assert_eq!(t.state(), TapState::SelectIrScan);
        t.clock(false); // capture-ir
        t.clock(false); // shift-ir
        assert_eq!(t.state(), TapState::ShiftIr);
        t.clock(true); // exit1-ir
        t.clock(true); // update-ir
        t.clock(false); // idle
        assert_eq!(t.state(), TapState::RunTestIdle);
    }

    #[test]
    fn pause_and_resume_shift() {
        let mut t = TapController::new();
        t.clock(false); // idle
        t.clock(true);
        t.clock(false);
        t.clock(false); // shift-dr
        t.clock(true); // exit1-dr
        t.clock(false); // pause-dr
        assert_eq!(t.state(), TapState::PauseDr);
        t.clock(true); // exit2-dr
        t.clock(false); // back to shift-dr
        assert_eq!(t.state(), TapState::ShiftDr);
    }

    #[test]
    fn tck_counter_accumulates() {
        let mut t = TapController::new();
        t.reset();
        assert_eq!(t.tck_cycles(), 5);
    }
}
