//! Transient-error retry at the link layer.
//!
//! µAFL (PAPERS.md) reports debug-link flakiness as a first-order
//! operational cost of on-hardware feedback: a dropped SWD transaction is
//! *not* a dead target, and treating it as one converts a millisecond
//! glitch into a multi-second reflash. [`RetryPolicy`] wraps a transport
//! operation and retries connection-loss errors ([`DapError::LinkDown`],
//! [`DapError::ConnectionTimeout`]) with exponential backoff in simulated
//! cycles, so retry cost genuinely eats campaign budget. Anything that is
//! not a connection loss — a target-side `HalError`, a protocol error —
//! is returned immediately; those are the supervisor's problem, not ours.

use crate::error::DapError;
use crate::transport::DebugTransport;
use crate::txn::{Txn, TxnResult};
use eof_telemetry as tel;

/// Retry budget and backoff shape for transient link errors.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, in cycles.
    pub base_backoff: u64,
    /// Backoff cap: doubling stops here.
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 4 attempts with 256 → 512 → 1024-cycle backoffs rides out a
        // flaky-link burst but gives up (total < 2ms of simulated time)
        // well before the supervisor's cheapest rung would.
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 256,
            max_backoff: 8_192,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (behaviour-preserving passthrough).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: 0,
            max_backoff: 0,
        }
    }

    /// Run `op` against `pipe`, retrying connection losses with
    /// exponential backoff. Accounting lands in `stats`.
    pub fn run<T>(
        &self,
        stats: &mut RetryStats,
        pipe: &mut DebugTransport,
        mut op: impl FnMut(&mut DebugTransport) -> Result<T, DapError>,
    ) -> Result<T, DapError> {
        let mut backoff = self.base_backoff;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            stats.attempts += 1;
            tel::count("dap.retry.attempts", 1);
            match op(pipe) {
                Ok(v) => {
                    if attempt > 1 {
                        stats.recovered += 1;
                        tel::count("dap.retry.recovered", 1);
                    }
                    return Ok(v);
                }
                Err(e) if e.is_connection_loss() && attempt < self.max_attempts.max(1) => {
                    stats.retries += 1;
                    tel::count("dap.retry.retries", 1);
                    if backoff > 0 {
                        pipe.sleep(backoff);
                        stats.backoff_cycles += backoff;
                        tel::count("dap.retry.backoff_cycles", backoff);
                    }
                    backoff = (backoff.saturating_mul(2)).min(self.max_backoff).max(1);
                }
                Err(e) => {
                    if e.is_connection_loss() {
                        stats.exhausted += 1;
                        tel::count("dap.retry.exhausted", 1);
                        tel::event("dap.retry.exhausted", pipe.now(), || {
                            format!("attempts={attempt} error={e:?}")
                        });
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Submit a vectored transaction with all-or-nothing replay.
    ///
    /// A scalar retry loop re-issues one operation; replaying a *batch*
    /// is only sound because `DebugTransport::run_txn` guarantees a
    /// connection loss precedes application — the batch submit is the
    /// single fault-injection point, so a dropped transaction applied
    /// nothing and the retry replays it whole. Partial application
    /// (some ops landed, then the link died, then the replay re-applies
    /// them) is impossible by construction, which is exactly the hazard
    /// that makes naive batch retries corrupt coverage buffers.
    pub fn run_txn(
        &self,
        stats: &mut RetryStats,
        pipe: &mut DebugTransport,
        txn: &Txn,
    ) -> Result<Vec<TxnResult>, DapError> {
        self.run(stats, pipe, |p| p.run_txn(txn))
    }
}

/// Counters for link-layer retry activity, summed into the campaign's
/// `ResilienceStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Individual operation attempts (including first tries).
    pub attempts: u64,
    /// Retries issued after a connection loss.
    pub retries: u64,
    /// Operations that succeeded only after at least one retry.
    pub recovered: u64,
    /// Operations abandoned with the retry budget spent.
    pub exhausted: u64,
    /// Simulated cycles spent sleeping between retries.
    pub backoff_cycles: u64,
}

impl RetryStats {
    /// Fold another counter set into this one (per-op stats → campaign).
    pub fn absorb(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.exhausted += other.exhausted;
        self.backoff_cycles += other.backoff_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_retry_policy_is_single_shot() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        // Pure arithmetic check on the doubling sequence.
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: 100,
            max_backoff: 350,
        };
        let mut b = p.base_backoff;
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(b);
            b = (b.saturating_mul(2)).min(p.max_backoff).max(1);
        }
        assert_eq!(seen, vec![100, 200, 350, 350]);
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let mut a = RetryStats {
            attempts: 1,
            retries: 2,
            recovered: 3,
            exhausted: 4,
            backoff_cycles: 5,
        };
        let b = RetryStats {
            attempts: 10,
            retries: 20,
            recovered: 30,
            exhausted: 40,
            backoff_cycles: 50,
        };
        a.absorb(&b);
        assert_eq!(a.attempts, 11);
        assert_eq!(a.retries, 22);
        assert_eq!(a.recovered, 33);
        assert_eq!(a.exhausted, 44);
        assert_eq!(a.backoff_cycles, 55);
    }
}
