//! `eof-dap` — the hardware debug access port and its protocol stack.
//!
//! EOF's core design decision is to use the hardware debug interface as
//! the *single* channel for control and observation (paper §4.2): test
//! cases go down over direct memory writes, execution is synchronised with
//! hardware breakpoints, coverage and crash state come back over memory
//! reads, and recovery is a reflash through the same port. This crate
//! provides that channel for the simulated boards:
//!
//! * [`transport`] — [`DebugTransport`]: the probe session itself, with
//!   per-operation latency, timeout semantics against a dead target, and
//!   injectable link outages (the raw material of Algorithm 1's
//!   `ConnectionTimeout` check);
//! * [`tap`] — a JTAG TAP controller state machine, driven underneath
//!   JTAG-interfaced boards for protocol fidelity;
//! * [`ocd`] — an OpenOCD-style text command server (`halt`, `mdw`,
//!   `flash write_image`, …) layered on the transport;
//! * [`rsp`] — a GDB Remote Serial Protocol codec and server (`$m…#cs`
//!   packets), the path the paper's GDB/MI commands travel;
//! * [`retry`] — [`RetryPolicy`]: exponential-backoff retry of transient
//!   connection losses, so a flaky probe is ridden out at the link layer
//!   instead of escalating to a full state restoration;
//! * [`txn`] — [`Txn`]: vectored transactions batching the per-exec hot
//!   path into single link round trips with all-or-nothing semantics
//!   (`EOF_VECTORED=0` falls back to the scalar path).

pub mod error;
pub mod ocd;
pub mod retry;
pub mod rsp;
pub mod tap;
pub mod transport;
pub mod txn;

pub use error::DapError;
pub use ocd::OcdServer;
pub use retry::{RetryPolicy, RetryStats};
pub use rsp::{
    checksum, decode_txn, decode_txn_reply, encode_txn, encode_txn_reply, frame_packet,
    parse_packet, RspServer,
};
pub use tap::{TapController, TapState};
pub use transport::{DebugTransport, LinkConfig, LinkEvent};
pub use txn::{cmplog_default, snapshot_default, vectored_default, Txn, TxnOp, TxnResult};
