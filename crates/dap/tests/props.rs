//! Property tests of the debug-protocol layers.

use eof_dap::{
    checksum, decode_txn, decode_txn_reply, encode_txn, encode_txn_reply, frame_packet,
    parse_packet, DebugTransport, LinkConfig, RetryPolicy, RetryStats, TapController, TapState,
    Txn, TxnOp, TxnResult,
};
use eof_hal::{BoardCatalog, FirmwareLoader, HalError, Machine};
use proptest::prelude::*;

/// Any wire-encodable operation, unconstrained by any particular target.
fn arb_txn_op() -> impl Strategy<Value = TxnOp> {
    prop_oneof![
        Just(TxnOp::Halt),
        Just(TxnOp::Resume),
        Just(TxnOp::ReadPc),
        Just(TxnOp::ResetTarget),
        (any::<u32>(), 1u32..4096).prop_map(|(addr, len)| TxnOp::ReadMem { addr, len }),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 1..128))
            .prop_map(|(addr, data)| TxnOp::WriteMem { addr, data }),
        any::<u32>().prop_map(|addr| TxnOp::SetBreakpoint { addr }),
        any::<u32>().prop_map(|addr| TxnOp::ClearBreakpoint { addr }),
        "[a-z0-9_]{1,16}".prop_map(|partition| TxnOp::FlashChecksum { partition }),
        (
            "[a-z0-9_]{1,16}",
            proptest::collection::vec(any::<u8>(), 0..96)
        )
            .prop_map(|(partition, image)| TxnOp::FlashWrite { partition, image }),
        Just(TxnOp::RestoreCore),
        proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..4
        )
        .prop_map(|pages| TxnOp::WritePages { pages }),
        ("[a-z0-9_]{1,16}", any::<u32>())
            .prop_map(|(partition, sectors)| TxnOp::FlashSectorChecksums { partition, sectors }),
        (
            "[a-z0-9_]{1,16}",
            proptest::collection::vec(
                (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64)),
                0..4
            )
        )
            .prop_map(|(partition, sectors)| TxnOp::FlashWriteSectors { partition, sectors }),
        (any::<u32>(), 1u32..4096, 1u32..64).prop_map(|(base, capacity, record_bytes)| {
            TxnOp::DrainRing {
                base,
                capacity,
                record_bytes,
            }
        }),
        Just(TxnOp::DrainTrace),
    ]
}

/// Operations that are valid against the `props_transport()` target, so a
/// replayed batch can actually apply. Breakpoints come from a 4-address
/// pool (board budget is 8) and memory ops stay inside a scratch window.
fn arb_applicable_op() -> impl Strategy<Value = TxnOp> {
    const RAM_BASE: u32 = 0x3ffb_0000; // esp32_devkit
    prop_oneof![
        Just(TxnOp::Halt),
        Just(TxnOp::ReadPc),
        (0u32..4096, 1u32..64).prop_map(|(off, len)| TxnOp::ReadMem {
            addr: RAM_BASE + off,
            len
        }),
        (0u32..4096, proptest::collection::vec(any::<u8>(), 1..64)).prop_map(|(off, data)| {
            TxnOp::WriteMem {
                addr: RAM_BASE + off,
                data,
            }
        }),
        (0u32..4).prop_map(|i| TxnOp::SetBreakpoint {
            addr: 0x0800_0000 + i * 4
        }),
        (0u32..4).prop_map(|i| TxnOp::ClearBreakpoint {
            addr: 0x0800_0000 + i * 4
        }),
        Just(TxnOp::FlashChecksum {
            partition: "kernel".into()
        }),
        Just(TxnOp::FlashSectorChecksums {
            partition: "kernel".into(),
            sectors: 1,
        }),
        Just(TxnOp::RestoreCore),
        proptest::collection::vec(
            (0u32..4096, proptest::collection::vec(any::<u8>(), 1..64)),
            0..4
        )
        .prop_map(|pages| TxnOp::WritePages {
            pages: pages
                .into_iter()
                .map(|(off, data)| (RAM_BASE + off, data))
                .collect(),
        }),
        Just(TxnOp::DrainTrace),
    ]
}

fn props_transport() -> DebugTransport {
    struct Idle {
        symbols: eof_hal::SymbolTable,
    }
    impl eof_hal::Firmware for Idle {
        fn name(&self) -> &str {
            "idle"
        }
        fn symbols(&self) -> &eof_hal::SymbolTable {
            &self.symbols
        }
        fn step(&mut self, bus: &mut eof_hal::Bus) -> eof_hal::StepResult {
            eof_hal::StepResult::Running {
                pc: 0x0800_0000 + (bus.now() % 64) as u32,
                cycles: 1,
            }
        }
        fn on_reset(&mut self, _bus: &mut eof_hal::Bus) {}
        fn freeze(&mut self) {}
    }
    let loader: FirmwareLoader = Box::new(|flash, _| {
        let kernel = flash.read_partition("kernel")?;
        if &kernel[..4] != b"IMG!" {
            return Err(HalError::BootFailure("bad magic".into()));
        }
        Ok(Box::new(Idle {
            symbols: eof_hal::SymbolTable::new(),
        }))
    });
    let mut m = Machine::new(BoardCatalog::esp32_devkit(), loader);
    m.reflash_partition("kernel", b"IMG!fw").unwrap();
    m.reset();
    DebugTransport::attach(m, LinkConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn rsp_framing_roundtrips(data in "[ -~&&[^$#]]{0,128}") {
        let framed = frame_packet(&data);
        prop_assert_eq!(parse_packet(&framed).unwrap(), data.as_str());
    }

    #[test]
    fn rsp_checksum_detects_single_byte_corruption(
        data in "[a-zA-Z0-9,:]{4,64}",
        pos in 0usize..64,
        delta in 1u8..255
    ) {
        let mut framed = frame_packet(&data).into_bytes();
        // Corrupt one payload byte (inside $...#).
        let idx = 1 + pos % data.len();
        let orig = framed[idx];
        // Keep the corruption printable ASCII and off the delimiters so
        // the packet stays structurally a packet — only the checksum can
        // catch it.
        let corrupted = 0x20 + (orig.wrapping_add(delta) % 0x5f);
        if corrupted == b'#' || corrupted == b'$' || corrupted == orig {
            return Ok(());
        }
        framed[idx] = corrupted;
        let framed = String::from_utf8(framed).unwrap();
        prop_assert!(parse_packet(&framed).is_err());
    }

    #[test]
    fn checksum_is_sum_mod_256(data in proptest::collection::vec(0x20u8..0x7f, 0..64)) {
        let s: String = data.iter().map(|&b| b as char).collect();
        let expect = data.iter().fold(0u8, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(checksum(&s), expect);
    }

    #[test]
    fn tap_reset_from_any_walk(walk in proptest::collection::vec(any::<bool>(), 0..64)) {
        let mut tap = TapController::new();
        for tms in walk {
            tap.clock(tms);
        }
        // Five TMS-high clocks must reach Test-Logic-Reset from anywhere.
        for _ in 0..5 {
            tap.clock(true);
        }
        prop_assert_eq!(tap.state(), TapState::TestLogicReset);
    }

    #[test]
    fn tap_dr_scan_always_returns_to_idle(bits in 1u32..256) {
        let mut tap = TapController::new();
        tap.clock(false); // to Run-Test/Idle
        tap.scan_dr(bits);
        prop_assert_eq!(tap.state(), TapState::RunTestIdle);
    }

    #[test]
    fn txn_wire_codec_roundtrips(ops in proptest::collection::vec(arb_txn_op(), 0..24)) {
        let mut txn = Txn::new();
        for op in ops {
            txn.push(op);
        }
        let wire = encode_txn(&txn).unwrap();
        prop_assert_eq!(decode_txn(&wire).unwrap(), txn.clone());
        // The packet must also survive RSP framing (checksum envelope).
        let framed = frame_packet(&wire);
        prop_assert_eq!(decode_txn(parse_packet(&framed).unwrap()).unwrap(), txn);
    }

    #[test]
    fn txn_reply_codec_roundtrips(
        replies in proptest::collection::vec(
            prop_oneof![
                Just(TxnResult::Done),
                proptest::collection::vec(any::<u8>(), 0..64).prop_map(TxnResult::Bytes),
                any::<u32>().prop_map(TxnResult::Pc),
                any::<u64>().prop_map(TxnResult::Checksum),
                proptest::collection::vec(any::<u64>(), 0..8).prop_map(TxnResult::Checksums),
            ],
            0..24,
        )
    ) {
        let wire = encode_txn_reply(&replies);
        prop_assert_eq!(decode_txn_reply(&wire).unwrap(), replies);
    }

}

proptest! {
    // Each case boots three simulated targets; keep the case count down.
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn txn_replay_after_drop_matches_fault_free(
        ops in proptest::collection::vec(arb_applicable_op(), 1..16),
        delta in 0u64..255,
    ) {
        let mut txn = Txn::new();
        // A trace drain consumes its FIFO: a second one in the same
        // batch is refused by validation (stale-header guard), so keep
        // at most one per generated batch.
        let mut trace_drains = 0usize;
        for op in ops {
            if matches!(op, TxnOp::DrainTrace) {
                trace_drains += 1;
                if trace_drains > 1 {
                    continue;
                }
            }
            txn.push(op);
        }

        // Give the trace FIFO real content so a drained batch carries
        // stream bytes; identical on every transport instance.
        let prime_trace = |t: &mut DebugTransport| {
            let bus = t.machine_mut().bus_mut();
            bus.trace.set_enabled(true);
            for i in 0..5u64 {
                bus.trace.emit(0x1000 + i * 7, i % 2 == 0);
            }
        };

        // Fault-free reference application.
        let mut clean = props_transport();
        prime_trace(&mut clean);
        let clean_results = clean.run_txn(&txn).unwrap();

        // The batch charges its TAP scan *before* the single link check,
        // so a fixed outage length races the scan duration. Measure when
        // the check actually fires (a never-ending outage fails exactly
        // there), then size the real outage to cover the first check but
        // expire within the retry backoff (256 cycles): exactly one
        // dropped submit, guaranteed replay.
        let mut probe = props_transport();
        prime_trace(&mut probe);
        let t0 = probe.now();
        probe.schedule_outage(t0, u64::MAX / 2);
        probe.run_txn(&txn).unwrap_err();
        let check_at = probe.now() - t0;

        let mut faulty = props_transport();
        prime_trace(&mut faulty);
        let now = faulty.now();
        faulty.schedule_outage(now, check_at + 1 + delta);
        let mut stats = RetryStats::default();
        let replayed = RetryPolicy::default()
            .run_txn(&mut stats, &mut faulty, &txn)
            .unwrap();
        prop_assert!(stats.recovered >= 1, "outage never tripped the submit");

        // Identical results, and identical target state: the dropped
        // attempt applied nothing.
        prop_assert_eq!(replayed, clean_results);
        prop_assert_eq!(faulty.txn_partials(), 0);
        prop_assert_eq!(
            faulty.machine().breakpoints(),
            clean.machine().breakpoints()
        );
        let base = clean.machine().board().ram_base;
        let mut clean_ram = vec![0u8; 8192];
        let mut faulty_ram = vec![0u8; 8192];
        clean.machine_mut().debug_read_batched(base, &mut clean_ram).unwrap();
        faulty.machine_mut().debug_read_batched(base, &mut faulty_ram).unwrap();
        prop_assert_eq!(clean_ram, faulty_ram);
    }
}
