//! Property tests of the debug-protocol layers.

use eof_dap::{checksum, frame_packet, parse_packet, TapController, TapState};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn rsp_framing_roundtrips(data in "[ -~&&[^$#]]{0,128}") {
        let framed = frame_packet(&data);
        prop_assert_eq!(parse_packet(&framed).unwrap(), data.as_str());
    }

    #[test]
    fn rsp_checksum_detects_single_byte_corruption(
        data in "[a-zA-Z0-9,:]{4,64}",
        pos in 0usize..64,
        delta in 1u8..255
    ) {
        let mut framed = frame_packet(&data).into_bytes();
        // Corrupt one payload byte (inside $...#).
        let idx = 1 + pos % data.len();
        let orig = framed[idx];
        // Keep the corruption printable ASCII and off the delimiters so
        // the packet stays structurally a packet — only the checksum can
        // catch it.
        let corrupted = 0x20 + (orig.wrapping_add(delta) % 0x5f);
        if corrupted == b'#' || corrupted == b'$' || corrupted == orig {
            return Ok(());
        }
        framed[idx] = corrupted;
        let framed = String::from_utf8(framed).unwrap();
        prop_assert!(parse_packet(&framed).is_err());
    }

    #[test]
    fn checksum_is_sum_mod_256(data in proptest::collection::vec(0x20u8..0x7f, 0..64)) {
        let s: String = data.iter().map(|&b| b as char).collect();
        let expect = data.iter().fold(0u8, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(checksum(&s), expect);
    }

    #[test]
    fn tap_reset_from_any_walk(walk in proptest::collection::vec(any::<bool>(), 0..64)) {
        let mut tap = TapController::new();
        for tms in walk {
            tap.clock(tms);
        }
        // Five TMS-high clocks must reach Test-Logic-Reset from anywhere.
        for _ in 0..5 {
            tap.clock(true);
        }
        prop_assert_eq!(tap.state(), TapState::TestLogicReset);
    }

    #[test]
    fn tap_dr_scan_always_returns_to_idle(bits in 1u32..256) {
        let mut tap = TapController::new();
        tap.clock(false); // to Run-Test/Idle
        tap.scan_dr(bits);
        prop_assert_eq!(tap.state(), TapState::RunTestIdle);
    }
}
