//! Fabric benchmark: the fault-tolerant distributed campaign fabric
//! end to end — serial reference vs N-worker fabric (the determinism
//! gate), a seeded worker-fault chaos schedule (kills, stalls, torn
//! writes), and a *real multi-process* mode in which this binary
//! re-executes itself as worker processes, one of which dies after its
//! checkpoint and one of which hangs until the coordinator kills it.
//!
//! Writes `BENCH_fabric.json` (repo root) plus the usual `results/`
//! outputs. Scale knobs: `EOF_FABRIC_HOURS` (default 0.06 simulated
//! hours per cell), `EOF_FABRIC_WORKERS` (default 4, clamped to host
//! cores), `EOF_FABRIC_FAULTS` (default 4 chaos faults) and
//! `EOF_FABRIC_SEED` (default 23, the chaos schedule seed).

use eof_core::fabric::{advance_cell, slice_target_hours};
use eof_core::{
    diff_against_serial, fabric_chaos_plan, fabric_grid, run_fabric, run_serial, FabricConfig,
    FabricFault,
};
use eof_rtos::OsKind;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const OSES: [OsKind; 4] = [
    OsKind::FreeRtos,
    OsKind::RtThread,
    OsKind::NuttX,
    OsKind::Zephyr,
];

/// The cells the multi-process demonstration drives (derived the same
/// way the in-process grid derives its cells, so the results are
/// directly comparable): one cell whose worker crashes, one whose
/// worker hangs.
const PROCESS_OSES: [OsKind; 2] = [OsKind::FreeRtos, OsKind::Zephyr];

// ---------------------------------------------------------------------------
// Child mode: one checkpoint slice in its own OS process
// ---------------------------------------------------------------------------

/// `EOF_FABRIC_CHILD=os:seed:hours:target_hours:dir` turns an
/// invocation of this binary into a fabric worker process: advance the
/// cell's checkpoint store to `target_hours` and write a `slice.report`
/// file the coordinator parses. `EOF_FABRIC_CHILD_ABORT=1` makes the
/// child die (abort) right after its checkpoint lands — a crash the
/// coordinator must survive; `EOF_FABRIC_CHILD_HANG=1` makes it hang
/// without dying — a worker the coordinator must detect and kill.
fn child_main(spec: &str) -> ! {
    let parts: Vec<&str> = spec.split(':').collect();
    assert_eq!(parts.len(), 5, "bad child spec {spec:?}");
    let os = OsKind::ALL
        .into_iter()
        .find(|o| o.short() == parts[0])
        .unwrap_or_else(|| panic!("unknown os {:?}", parts[0]));
    let seed: u64 = parts[1].parse().expect("child seed");
    let hours: f64 = parts[2].parse().expect("child hours");
    let target: f64 = parts[3].parse().expect("child target");
    let dir = PathBuf::from(parts[4]);

    let config = fabric_grid(&[os], &[seed], hours, false).remove(0);
    let report = advance_cell(&config, &dir, target);

    if std::env::var("EOF_FABRIC_CHILD_ABORT").is_ok() {
        // Die *after* the checkpoint landed, *before* reporting — the
        // worst ordinary crash: work persisted, coordinator unnotified.
        std::process::abort();
    }
    if std::env::var("EOF_FABRIC_CHILD_HANG").is_ok() {
        // Hang without dying; the coordinator's timeout must kill us.
        std::thread::sleep(Duration::from_secs(600));
    }

    let mut lines = vec![
        format!("consumed_hours = {}", report.consumed_hours),
        format!("edges = {}", report.coverage_edges.len()),
        format!("bugs = {:?}", report.bugs),
        format!("checkpoint_skips = {}", report.checkpoint_skips),
        format!("checkpoints_discarded = {}", report.checkpoints_discarded),
        format!("prefix_verified = {}", report.prefix_verified),
        format!("finished = {}", report.finished.is_some()),
    ];
    if let Some(done) = &report.finished {
        lines.push(format!("branches = {}", done.branches));
        lines.push(format!("execs = {}", done.execs));
        if let Some(summary) = &done.telemetry {
            lines.push(format!("telemetry = {}", summary.to_json()));
        }
    }
    std::fs::write(dir.join("slice.report"), lines.join("\n") + "\n")
        .expect("child writes slice.report");
    std::process::exit(0);
}

/// One parsed child report.
#[derive(Default)]
struct ChildReport {
    bugs_debug: String,
    prefix_verified: usize,
    finished: bool,
    branches: usize,
    execs: u64,
    telemetry_json: Option<String>,
}

fn parse_child_report(dir: &Path) -> ChildReport {
    let text = std::fs::read_to_string(dir.join("slice.report")).expect("child report exists");
    let mut report = ChildReport::default();
    for line in text.lines() {
        let Some((key, value)) = line.split_once(" = ") else {
            continue;
        };
        match key {
            "bugs" => report.bugs_debug = value.to_string(),
            "prefix_verified" => report.prefix_verified = value.parse().unwrap_or(0),
            "finished" => report.finished = value == "true",
            "branches" => report.branches = value.parse().unwrap_or(0),
            "execs" => report.execs = value.parse().unwrap_or(0),
            "telemetry" => report.telemetry_json = Some(value.to_string()),
            _ => {}
        }
    }
    report
}

/// What the multi-process demonstration observed.
struct ProcessMode {
    children_spawned: usize,
    deaths_observed: usize,
    hangs_killed: usize,
    resumes_prefix_verified: usize,
    final_matches_serial: bool,
    telemetry_parts: usize,
    telemetry_json: Option<String>,
    secs: f64,
}

/// Drive the demonstration cells across real worker processes. Each
/// cell runs a 2-slice checkpoint ladder; the first attempt at the
/// cell's faulted slice either aborts right after checkpointing
/// (crash: work persisted, coordinator unnotified) or hangs until the
/// coordinator's timeout kills it. Every replacement is a *fresh
/// process* resuming from the on-disk checkpoint, and each cell's
/// final state must match the serial in-process run of that cell.
fn run_process_mode(hours: f64, root: &Path) -> ProcessMode {
    let start = Instant::now();
    let exe = std::env::current_exe().expect("current_exe");
    let slices = 2usize;
    let mut mode = ProcessMode {
        children_spawned: 0,
        deaths_observed: 0,
        hangs_killed: 0,
        resumes_prefix_verified: 0,
        final_matches_serial: true,
        telemetry_parts: 0,
        telemetry_json: None,
        secs: 0.0,
    };
    let mut merged_telemetry: Option<eof_telemetry::TelemetrySummary> = None;

    for (cell_idx, os) in PROCESS_OSES.into_iter().enumerate() {
        let config = fabric_grid(&[os], &[7], hours, false).remove(0);
        let dir = root.join(format!("process-cell-{}", os.short()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create process-mode dir");
        let spec = |slice: usize| {
            format!(
                "{}:{}:{}:{}:{}",
                os.short(),
                7,
                hours,
                slice_target_hours(hours, slices, slice),
                dir.display()
            )
        };
        let spawn = |slice: usize, fault: Option<&str>| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.env("EOF_FABRIC_CHILD", spec(slice))
                .env("EOF_TRACE", "1")
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null());
            if let Some(var) = fault {
                cmd.env(var, "1");
            }
            cmd.spawn().expect("spawn fabric worker process")
        };
        // Cell 0's worker crashes after its first checkpoint; cell 1's
        // worker hangs during its final slice.
        let (fault_slice, fault_var) = match cell_idx {
            0 => (0usize, "EOF_FABRIC_CHILD_ABORT"),
            _ => (1usize, "EOF_FABRIC_CHILD_HANG"),
        };

        let mut cell_report = ChildReport::default();
        for slice in 0..slices {
            if slice == fault_slice {
                // Clear the previous slice's report first: its absence
                // is what distinguishes "hung after checkpointing" from
                // "already reported" in the poll below.
                let _ = std::fs::remove_file(dir.join("slice.report"));
                let mut child = spawn(slice, Some(fault_var));
                mode.children_spawned += 1;
                if fault_var == "EOF_FABRIC_CHILD_HANG" {
                    // Lease-expiry analogue: poll for an exit that will
                    // never come, then kill the hung worker. A report
                    // file is the heartbeat; a checkpoint with no
                    // report means the worker wedged after its work.
                    let deadline = Instant::now() + Duration::from_secs(120);
                    loop {
                        match child.try_wait().expect("try_wait") {
                            Some(_) => break,
                            None if Instant::now() >= deadline => {
                                child.kill().expect("kill hung worker");
                                let _ = child.wait();
                                break;
                            }
                            None if dir.join("manifest.eof").exists()
                                && !dir.join("slice.report").exists() =>
                            {
                                std::thread::sleep(Duration::from_millis(200));
                                child.kill().expect("kill hung worker");
                                let _ = child.wait();
                                break;
                            }
                            None => std::thread::sleep(Duration::from_millis(50)),
                        }
                    }
                    mode.hangs_killed += 1;
                } else {
                    let status = child.wait().expect("wait for worker");
                    assert!(!status.success(), "aborting child exited cleanly");
                    mode.deaths_observed += 1;
                }
                let _ = std::fs::remove_file(dir.join("slice.report"));

                // Reassignment: a fresh process resumes the checkpoint.
                let mut replacement = spawn(slice, None);
                mode.children_spawned += 1;
                let status = replacement.wait().expect("wait for replacement");
                assert!(status.success(), "replacement worker failed");
                let report = parse_child_report(&dir);
                if report.prefix_verified > 0 {
                    mode.resumes_prefix_verified += 1;
                }
                cell_report = report;
            } else {
                let mut child = spawn(slice, None);
                mode.children_spawned += 1;
                let status = child.wait().expect("wait for worker");
                assert!(status.success(), "healthy worker failed");
                cell_report = parse_child_report(&dir);
            }
        }

        if let Some(json) = &cell_report.telemetry_json {
            // The cross-process merge: each cell's summary comes back
            // as JSON over the filesystem, never as shared memory.
            let part =
                eof_telemetry::TelemetrySummary::from_json(json).expect("child telemetry parses");
            mode.telemetry_parts += 1;
            merged_telemetry = Some(match merged_telemetry.take() {
                None => part,
                Some(mut acc) => {
                    acc.absorb(&part);
                    acc
                }
            });
        }

        // The gate, across process boundaries: the surviving ladder
        // must land exactly the serial in-process campaign's results.
        assert!(cell_report.finished, "{}: cell never finished", os.short());
        let serial = run_serial(std::slice::from_ref(&config));
        let matches = cell_report.bugs_debug == format!("{:?}", serial.bugs)
            && cell_report.branches == serial.cells[0].0
            && cell_report.execs == serial.cells[0].1;
        assert!(
            matches,
            "{}: process-mode results diverged from serial: {} vs {:?}",
            os.short(),
            cell_report.bugs_debug,
            serial.bugs
        );
        mode.final_matches_serial &= matches;
    }

    assert!(
        mode.resumes_prefix_verified >= 1,
        "at least the post-crash replacement must prefix-verify its \
         predecessor's checkpoint"
    );
    mode.telemetry_json = merged_telemetry.map(|m| m.to_json());
    mode.secs = start.elapsed().as_secs_f64();
    mode
}

// ---------------------------------------------------------------------------
// Coordinator (bench) mode
// ---------------------------------------------------------------------------

fn bugs_json(bugs: &std::collections::BTreeSet<eof_rtos::BugId>) -> String {
    let names: Vec<String> = bugs.iter().map(|b| format!("\"{b:?}\"")).collect();
    format!("[{}]", names.join(", "))
}

fn main() {
    if let Ok(spec) = std::env::var("EOF_FABRIC_CHILD") {
        child_main(&spec);
    }

    let hours = env_f64("EOF_FABRIC_HOURS", 0.06);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let requested_workers = env_usize("EOF_FABRIC_WORKERS", 4);
    let workers = requested_workers.min(host_cores).max(1);
    let faults = env_usize("EOF_FABRIC_FAULTS", 4);
    let chaos_seed = env_u64("EOF_FABRIC_SEED", 23);
    let root = std::env::temp_dir().join(format!("eof-bench-fabric-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let cells = fabric_grid(&OSES, &[7], hours, false);
    eprintln!(
        "[fabric] {} cells ({} OSs × 1 seed, {hours}h each), {workers} workers \
         ({requested_workers} requested, {host_cores} cores)",
        cells.len(),
        OSES.len()
    );

    eprintln!("[fabric] serial reference...");
    let t = Instant::now();
    let serial = run_serial(&cells);
    let serial_secs = t.elapsed().as_secs_f64();

    eprintln!("[fabric] fault-free fabric ({workers} workers)...");
    let clean_config = FabricConfig::new(cells.clone(), workers, &root.join("clean"));
    let t = Instant::now();
    let clean = run_fabric(&clean_config, &eof_core::FabricChaosPlan::none());
    let clean_secs = t.elapsed().as_secs_f64();
    let clean_diffs = diff_against_serial(&clean, &serial);
    assert!(clean.violations.is_empty(), "{:?}", clean.violations);
    assert!(clean_diffs.is_empty(), "fault-free gate: {clean_diffs:?}");

    let mut chaos_config = FabricConfig::new(cells.clone(), workers, &root.join("chaos"));
    chaos_config.slices_per_cell = 2;
    // `EOF_FABRIC_FAULT_KIND` (kill | stall | torn-write) pins the
    // whole schedule to one fault class — the nightly matrix runs each
    // class separately so a regression names its killer. Unset, the
    // schedule is the seeded random mix.
    let forced_kind = std::env::var("EOF_FABRIC_FAULT_KIND").ok();
    let plan = match forced_kind.as_deref() {
        None => fabric_chaos_plan(
            chaos_seed,
            cells.len(),
            chaos_config.slices_per_cell,
            faults,
            chaos_config.max_attempts,
            chaos_config.lease_rounds,
        ),
        Some(kind) => {
            let mut plan = eof_core::FabricChaosPlan::none();
            for cell in 0..cells.len() {
                let fault = |attempt: u64| match kind {
                    "kill" => FabricFault::Kill,
                    "stall" => FabricFault::Stall {
                        rounds: chaos_config.lease_rounds + 1 + (cell as u64 + attempt) % 2,
                    },
                    "torn-write" => {
                        if (cell as u64 + attempt).is_multiple_of(2) {
                            FabricFault::TornManifest
                        } else {
                            FabricFault::TornSeed
                        }
                    }
                    other => panic!("unknown EOF_FABRIC_FAULT_KIND {other:?}"),
                };
                plan = plan.with(cell, 0, fault(0));
                // The seed picks which cells eat a second fault on
                // their reassigned attempt.
                if (cell as u64 + chaos_seed).is_multiple_of(2) {
                    plan = plan.with(cell, 1, fault(1));
                }
            }
            plan
        }
    };
    eprintln!(
        "[fabric] chaos fabric (seed {chaos_seed}, {} faults{})...",
        plan.total(),
        forced_kind
            .as_deref()
            .map(|k| format!(", all {k}"))
            .unwrap_or_default()
    );
    // The gate demands every cell recovered, so no slot may poison out
    // mid-run: on a 1-core runner every planned death lands on the same
    // slot, which the default threshold would (correctly) retire. Slot
    // poisoning itself is pinned by the fabric's unit tests.
    chaos_config.poison_kills = plan.total() as u32 + 1;
    let t = Instant::now();
    let chaos = run_fabric(&chaos_config, &plan);
    let chaos_secs = t.elapsed().as_secs_f64();
    let chaos_diffs = diff_against_serial(&chaos, &serial);
    assert!(chaos.violations.is_empty(), "{:?}", chaos.violations);
    assert!(
        chaos_diffs.is_empty(),
        "chaos gate (zero lost work): {chaos_diffs:?}"
    );

    eprintln!(
        "[fabric] multi-process mode ({} cells, crash + hang injections)...",
        PROCESS_OSES.len()
    );
    let process = run_process_mode(hours, &root);

    let fault_mix: Vec<String> = plan
        .kind_counts()
        .iter()
        .map(|(kind, count)| format!("\"{kind}\": {count}"))
        .collect();
    let a = &chaos.accounting;
    let json = format!(
        "{{\n  \"workload\": {{\"oses\": [{}], \"cells\": {}, \"hours_per_cell\": {hours}, \"slices_per_cell\": {}}},\n  \"host_cores\": {host_cores},\n  \"workers\": {{\"requested\": {requested_workers}, \"effective\": {workers}}},\n  \"serial\": {{\"secs\": {serial_secs:.3}, \"bugs\": {}, \"edges\": {}}},\n  \"fabric\": {{\"secs\": {clean_secs:.3}, \"speedup\": {:.2}, \"gate_identical\": {}, \"leases_granted\": {}, \"heartbeats\": {}}},\n  \"chaos\": {{\"seed\": {chaos_seed}, \"secs\": {chaos_secs:.3}, \"fault_mix\": {{{}}}, \"worker_deaths\": {}, \"lease_expiries\": {}, \"late_heartbeats\": {}, \"fenced_wakeups\": {}, \"torn_manifests\": {}, \"torn_seeds\": {}, \"reassignments\": {}, \"poisoned_workers\": {}, \"failures\": {}, \"gate_identical\": {}, \"zero_lost_bugs\": {}}},\n  \"process_mode\": {{\"secs\": {:.3}, \"children_spawned\": {}, \"deaths_observed\": {}, \"hangs_killed\": {}, \"resumes_prefix_verified\": {}, \"final_matches_serial\": {}, \"telemetry_parts_merged\": {}, \"telemetry\": {}}},\n  \"merged_bugs\": {}\n}}\n",
        OSES
            .iter()
            .map(|o| format!("\"{}\"", o.display()))
            .collect::<Vec<_>>()
            .join(", "),
        cells.len(),
        chaos_config.slices_per_cell,
        serial.bugs.len(),
        serial.coverage_edges.len(),
        serial_secs / clean_secs.max(1e-9),
        clean_diffs.is_empty(),
        clean.leases_granted,
        clean.heartbeats,
        fault_mix.join(", "),
        a.worker_deaths,
        chaos.lease_expiries,
        a.late_heartbeats,
        a.fenced_wakeups,
        a.torn_manifests,
        a.torn_seeds,
        chaos.reassignments.len(),
        a.poisoned_workers.len(),
        chaos.failures.len(),
        chaos_diffs.is_empty(),
        chaos.merged_bugs == serial.bugs,
        process.secs,
        process.children_spawned,
        process.deaths_observed,
        process.hangs_killed,
        process.resumes_prefix_verified,
        process.final_matches_serial,
        process.telemetry_parts,
        process
            .telemetry_json
            .clone()
            .unwrap_or_else(|| "null".to_string()),
        bugs_json(&chaos.merged_bugs),
    );
    std::fs::write("BENCH_fabric.json", &json).expect("write BENCH_fabric.json");
    println!("{json}");
    println!("[written BENCH_fabric.json]");

    let headers = ["phase", "secs", "deaths", "expiries", "reassigns", "gate"];
    let rows = vec![
        vec![
            "serial".to_string(),
            format!("{serial_secs:.3}"),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ],
        vec![
            format!("fabric x{workers}"),
            format!("{clean_secs:.3}"),
            "0".to_string(),
            "0".to_string(),
            "0".to_string(),
            "identical".to_string(),
        ],
        vec![
            format!("chaos seed {chaos_seed}"),
            format!("{chaos_secs:.3}"),
            a.worker_deaths.to_string(),
            chaos.lease_expiries.to_string(),
            chaos.reassignments.len().to_string(),
            "identical".to_string(),
        ],
        vec![
            "process mode".to_string(),
            format!("{:.3}", process.secs),
            process.deaths_observed.to_string(),
            process.hangs_killed.to_string(),
            process.resumes_prefix_verified.to_string(),
            "identical".to_string(),
        ],
    ];
    eof_bench::emit("fabric", &headers, rows);
    let _ = std::fs::remove_dir_all(&root);
}
