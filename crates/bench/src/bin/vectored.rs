//! Vectored-link throughput: the fig-7 experiment re-run as an A/B over
//! the debug-port wire mode. Same OS, same seed, same simulated time
//! budget — the only variable is whether the executor issues its hot
//! debug-port sequences (prog upload, coverage drain, breakpoint sync,
//! restore verify) as one vectored transaction or as scalar operations.
//!
//! Because target-visible time is decoupled from link traffic (timers
//! freeze on halt), both modes observe the same target per exec; the
//! batching converts the saved round-trip cycles directly into extra
//! execs and therefore extra coverage inside the fixed budget. The
//! paper's claim needs FreeRTOS (the slowest JTAG board) to improve by
//! at least 15%.

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, fmt1, run_config_set};
use eof_core::CampaignResult;
use eof_rtos::OsKind;

fn mean(results: &[CampaignResult], f: impl Fn(&CampaignResult) -> f64) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(f).sum::<f64>() / results.len() as f64
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[vectored] {hours} simulated hours × {reps} reps per cell");

    // One scalar and one vectored cell per OS, fanned out as a single
    // fleet batch so the comparison shares the worker pool.
    let mut bases = Vec::new();
    for os in OsKind::ALL {
        for vectored in [false, true] {
            let mut cfg = BaselineKind::Eof
                .full_system_config(os, 42)
                .expect("EOF runs on every OS");
            cfg.budget_hours = hours;
            cfg.vectored = vectored;
            bases.push(cfg);
        }
    }
    let mut per_base = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    let mut text =
        String::from("Vectored debug-port transactions vs scalar link, same simulated budget\n");
    for os in OsKind::ALL {
        let scalar = per_base.next().expect("scalar cell");
        let vectored = per_base.next().expect("vectored cell");
        let (se, ve) = (
            mean(&scalar, |r| r.stats.execs as f64),
            mean(&vectored, |r| r.stats.execs as f64),
        );
        let (sb, vb) = (
            mean(&scalar, |r| r.branches as f64),
            mean(&vectored, |r| r.branches as f64),
        );
        let exec_gain = if se > 0.0 {
            (ve / se - 1.0) * 100.0
        } else {
            0.0
        };
        let branch_gain = if sb > 0.0 {
            (vb / sb - 1.0) * 100.0
        } else {
            0.0
        };
        text.push_str(&format!(
            "  {:10} execs {:>7} -> {:>7} ({:+.1}%)   branches {:>6} -> {:>6} ({:+.1}%)\n",
            os.display(),
            fmt1(se),
            fmt1(ve),
            exec_gain,
            fmt1(sb),
            fmt1(vb),
            branch_gain,
        ));
        rows.push(vec![
            os.display().to_string(),
            fmt1(se),
            fmt1(ve),
            format!("{exec_gain:.1}"),
            fmt1(sb),
            fmt1(vb),
            format!("{branch_gain:.1}"),
        ]);
        eprintln!("  {} done", os.display());
    }
    let headers = [
        "os",
        "execs_scalar",
        "execs_vectored",
        "exec_gain_pct",
        "branches_scalar",
        "branches_vectored",
        "branch_gain_pct",
    ];
    eof_bench::write_outputs("vectored", &text, &headers, &rows);
}
