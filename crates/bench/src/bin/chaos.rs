//! Chaos benchmark: full campaigns under seeded randomized fault
//! schedules, exercising the recovery supervisor's whole ladder.
//!
//! Each cell runs one OS under `EOF_CHAOS_FAULTS` injected faults
//! (flaky link, outages, brownouts, flash bit flips, kill-core, frozen
//! firmware, UART noise) spread over `EOF_CHAOS_HOURS` simulated hours,
//! then re-runs the identical seeds and asserts the resilience stats
//! reproduce bit-for-bit. Writes `BENCH_chaos.json` (repo root) with
//! per-rung recovery counts and MTTR, plus the usual `results/chaos.*`.

use eof_core::chaos::{run_chaos, ChaosConfig, ChaosReport};
use eof_core::supervisor::Rung;
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Cell {
    os: OsKind,
    chaos_seed: u64,
    report: ChaosReport,
    reproducible: bool,
}

fn cell_config(os: OsKind, hours: f64, chaos_seed: u64, faults: usize) -> ChaosConfig {
    let mut base = FuzzerConfig::eof(os, 42 ^ chaos_seed);
    base.budget_hours = hours;
    base.snapshot_hours = (hours / 8.0).max(0.01);
    // `EOF_PERSIST_DIR` turns the bench into a persistence torture test:
    // each cell writes a campaign store while faults fly, and run_chaos
    // audits it for losses (the nightly job then replays these stores).
    if let Ok(dir) = std::env::var("EOF_PERSIST_DIR") {
        base.persist =
            Some(std::path::Path::new(&dir).join(format!("chaos-{}-{chaos_seed}", os.short())));
    }
    ChaosConfig {
        base,
        chaos_seed,
        faults,
    }
}

fn rungs_json(report: &ChaosReport) -> String {
    let r = report.resilience();
    let fields: Vec<String> = Rung::ALL
        .iter()
        .map(|rung| {
            format!(
                "\"{}\": {{\"attempts\": {}, \"successes\": {}}}",
                rung.name(),
                r.rung_attempts[rung.index()],
                r.rung_successes[rung.index()]
            )
        })
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn mix_json(report: &ChaosReport) -> String {
    let fields: Vec<String> = report
        .fault_counts
        .iter()
        .map(|(kind, count)| format!("\"{kind}\": {count}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn cell_json(cell: &Cell) -> String {
    let r = cell.report.resilience();
    let violations: Vec<String> = cell
        .report
        .violations
        .iter()
        .map(|v| format!("\"{}\"", v.replace('"', "'")))
        .collect();
    format!(
        "{{\"os\": \"{}\", \"chaos_seed\": {}, \"planned_faults\": {}, \"fault_mix\": {}, \"episodes\": {}, \"recovered\": {}, \"manual_interventions\": {}, \"rungs\": {}, \"backoff_cycles\": {}, \"recovery_cycles\": {}, \"max_recovery_cycles\": {}, \"mttr_secs\": {:.3}, \"failed_syncs\": {}, \"link\": {{\"attempts\": {}, \"retries\": {}, \"recovered\": {}, \"exhausted\": {}, \"backoff_cycles\": {}}}, \"branches\": {}, \"execs\": {}, \"violations\": [{}], \"reproducible\": {}}}",
        cell.os.display(),
        cell.chaos_seed,
        cell.report.planned_faults,
        mix_json(&cell.report),
        r.episodes,
        r.recovered(),
        r.manual_interventions,
        rungs_json(&cell.report),
        r.backoff_cycles,
        r.recovery_cycles,
        r.max_recovery_cycles,
        r.mttr_secs(),
        r.failed_syncs,
        r.link.attempts,
        r.link.retries,
        r.link.recovered,
        r.link.exhausted,
        r.link.backoff_cycles,
        cell.report.result.branches,
        cell.report.result.stats.execs,
        violations.join(", "),
        cell.reproducible,
    )
}

fn main() {
    let hours = env_f64("EOF_CHAOS_HOURS", 2.0);
    let faults = env_usize("EOF_CHAOS_FAULTS", 60);
    let oses = [OsKind::FreeRtos, OsKind::Zephyr, OsKind::NuttX];
    let chaos_seeds = [11u64, 23u64];

    let mut cells = Vec::new();
    for &os in &oses {
        for &chaos_seed in &chaos_seeds {
            eprintln!(
                "[chaos] {} seed {chaos_seed}: {faults} faults over {hours}h...",
                os.display()
            );
            let cfg = cell_config(os, hours, chaos_seed, faults);
            let report = run_chaos(&cfg);
            // The determinism contract: identical seeds → identical
            // schedules, campaigns, resilience stats — and, when
            // recording is on, identical telemetry summaries.
            let replay = run_chaos(&cfg);
            let telemetry_reproducible = match (&report.result.telemetry, &replay.result.telemetry)
            {
                (Some(a), Some(b)) => a.summary().to_json() == b.summary().to_json(),
                (None, None) => true,
                _ => false,
            };
            let reproducible = replay.result.resilience == report.result.resilience
                && replay.result.branches == report.result.branches
                && replay.result.stats.execs == report.result.stats.execs
                && telemetry_reproducible;
            assert!(
                report.violations.is_empty(),
                "{} seed {chaos_seed}: invariant violations: {:?}",
                os.display(),
                report.violations
            );
            assert!(
                reproducible,
                "{} seed {chaos_seed}: chaos campaign is not reproducible",
                os.display()
            );
            cells.push(Cell {
                os,
                chaos_seed,
                report,
                reproducible,
            });
        }
    }

    let total_episodes: u64 = cells.iter().map(|c| c.report.resilience().episodes).sum();
    let total_recovered: u64 = cells
        .iter()
        .map(|c| c.report.resilience().recovered())
        .sum();
    let total_manual: u64 = cells
        .iter()
        .map(|c| c.report.resilience().manual_interventions)
        .sum();
    let all_ok = cells
        .iter()
        .all(|c| c.report.violations.is_empty() && c.reproducible);

    // Merged telemetry summary across the cells, in cell order. Absent
    // (JSON null) unless `EOF_TRACE` recording was on; the summary holds
    // no wall-clock data, so the file stays byte-for-byte reproducible
    // with telemetry enabled.
    for cell in &cells {
        eof_bench::collect_telemetry(std::slice::from_ref(&cell.report.result));
    }
    let telemetry_json = eof_bench::merged_telemetry()
        .map(|m| m.summary().to_json())
        .unwrap_or_else(|| "null".to_string());

    let cell_jsons: Vec<String> = cells
        .iter()
        .map(|c| format!("    {}", cell_json(c)))
        .collect();
    let snapshot_mode = eof_dap::snapshot_default();
    let json = format!(
        "{{\n  \"config\": {{\"hours\": {hours}, \"faults_per_cell\": {faults}, \"snapshot\": {snapshot_mode}, \"chaos_seeds\": [{}], \"oses\": [{}]}},\n  \"cells\": [\n{}\n  ],\n  \"total\": {{\"episodes\": {total_episodes}, \"recovered\": {total_recovered}, \"manual_interventions\": {total_manual}}},\n  \"all_invariants_hold\": {all_ok},\n  \"telemetry\": {telemetry_json}\n}}\n",
        chaos_seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", "),
        oses.iter().map(|o| format!("\"{}\"", o.display())).collect::<Vec<_>>().join(", "),
        cell_jsons.join(",\n"),
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("{json}");
    println!("[written BENCH_chaos.json]");

    let headers = [
        "OS",
        "seed",
        "faults",
        "episodes",
        "recovered",
        "manual",
        "mttr (s)",
        "failed syncs",
        "link retries",
        "branches",
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let r = c.report.resilience();
            vec![
                c.os.display().to_string(),
                c.chaos_seed.to_string(),
                c.report.planned_faults.to_string(),
                r.episodes.to_string(),
                r.recovered().to_string(),
                r.manual_interventions.to_string(),
                format!("{:.2}", r.mttr_secs()),
                r.failed_syncs.to_string(),
                r.link.retries.to_string(),
                c.report.result.branches.to_string(),
            ]
        })
        .collect();
    eof_bench::emit("chaos", &headers, rows);
}
