//! Table 3: full-system branch coverage — EOF vs EOF-nf vs Tardis vs
//! Gustave on five embedded OSs (mean of repetitions; parentheses show
//! EOF's improvement, as the paper prints it).

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, fmt1, fmt_impr, mean_branches, run_config_set};
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[table3] {hours} simulated hours × {reps} reps per cell");

    let fuzzers = [
        BaselineKind::Eof,
        BaselineKind::EofNf,
        BaselineKind::Tardis,
        BaselineKind::Gustave,
    ];
    let oses = [
        OsKind::NuttX,
        OsKind::RtThread,
        OsKind::Zephyr,
        OsKind::FreeRtos,
        OsKind::PokOs,
    ];
    // The whole table is one fleet batch; unsupported cells stay out.
    let mut grid = Vec::new();
    let mut bases = Vec::new();
    for os in oses {
        for kind in fuzzers {
            if let Some(mut cfg) = kind.full_system_config(os, 42) {
                cfg.budget_hours = hours;
                grid.push((os, kind));
                bases.push(cfg);
            }
        }
    }
    let mut per_cell = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    for os in oses {
        let mut cells = vec![os.display().to_string()];
        let mut eof_mean = 0.0;
        for kind in fuzzers {
            if grid.contains(&(os, kind)) {
                let results = per_cell.next().expect("one result set per cell");
                let mean = mean_branches(&results);
                if kind == BaselineKind::Eof {
                    eof_mean = mean;
                    cells.push(fmt1(mean));
                } else {
                    cells.push(fmt_impr(eof_mean, mean));
                }
                eprintln!("  {} / {}: {:.1}", os.display(), kind.display(), mean);
            } else {
                cells.push("-".to_string());
            }
        }
        rows.push(cells);
    }
    let headers = ["Target OSs", "EOF", "EOF-nf", "Tardis", "Gustave"];
    eof_bench::emit("table3", &headers, rows);
}
