//! Table 3: full-system branch coverage — EOF vs EOF-nf vs Tardis vs
//! Gustave on five embedded OSs (mean of repetitions; parentheses show
//! EOF's improvement, as the paper prints it).

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, fmt1, fmt_impr, mean_branches, run_reps};
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[table3] {hours} simulated hours × {reps} reps per cell");

    let fuzzers = [
        BaselineKind::Eof,
        BaselineKind::EofNf,
        BaselineKind::Tardis,
        BaselineKind::Gustave,
    ];
    let mut rows = Vec::new();
    for os in [
        OsKind::NuttX,
        OsKind::RtThread,
        OsKind::Zephyr,
        OsKind::FreeRtos,
        OsKind::PokOs,
    ] {
        let mut cells = vec![os.display().to_string()];
        let mut eof_mean = 0.0;
        for kind in fuzzers {
            match kind.full_system_config(os, 42) {
                Some(mut cfg) => {
                    cfg.budget_hours = hours;
                    let results = run_reps(&cfg, reps);
                    let mean = mean_branches(&results);
                    if kind == BaselineKind::Eof {
                        eof_mean = mean;
                        cells.push(fmt1(mean));
                    } else {
                        cells.push(fmt_impr(eof_mean, mean));
                    }
                    eprintln!("  {} / {}: {:.1}", os.display(), kind.display(), mean);
                }
                None => cells.push("-".to_string()),
            }
        }
        rows.push(cells);
    }
    let headers = ["Target OSs", "EOF", "EOF-nf", "Tardis", "Gustave"];
    eof_bench::emit("table3", &headers, rows);
}
