//! The replay gate: load persisted campaign stores and prove their
//! contents still reproduce on the real executor stack.
//!
//! Three modes:
//!
//! * `replay [STORE_DIR ...]` — replay every store (default: the
//!   checked-in regression corpus under `tests/regression_corpus/`),
//!   write `results/replay.verdict.json`, exit non-zero if any case
//!   fails to reproduce. This is CI's `replay-gate` job.
//! * `replay --record <dir>` — regenerate the regression corpus by
//!   running the fixed corpus cells with persistence into `<dir>`.
//!   Campaigns are deterministic, so regenerating over the checked-in
//!   corpus must leave `git diff` clean.
//! * `replay --resume <dir> [total_hours]` — resume a persisted
//!   campaign to `total_hours` of simulated budget (default: double the
//!   consumed budget) and verify the store was an exact prefix of the
//!   re-derived run.
//!
//! With `EOF_TRACE=1` each store's replay is recorded and the merged
//! telemetry artifacts land in `results/replay.*` alongside the verdict.

use eof_core::persist;
use eof_core::replay::{replay_store, resume_campaign, ReplayReport};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;
use eof_telemetry as tel;
use std::path::{Path, PathBuf};

/// The fixed cells the regression corpus is built from: short,
/// deterministic campaigns that reliably admit seeds and find
/// confirmable crashes. The last field arms the MMIO peripheral plane
/// (`FuzzerConfig::eof_driver`) — that cell's store carries a
/// driver-bug reproducer, so the gate also proves the second input
/// plane round-trips through persistence.
const CORPUS_CELLS: &[(OsKind, u64, f64, bool)] = &[
    (OsKind::FreeRtos, 9, 0.1, false),
    (OsKind::RtThread, 3, 0.1, false),
    (OsKind::Zephyr, 5, 0.1, true),
];

/// Where the checked-in regression corpus lives.
const CORPUS_DIR: &str = "tests/regression_corpus";

fn corpus_stores(root: &Path) -> Vec<PathBuf> {
    let mut stores: Vec<PathBuf> = std::fs::read_dir(root)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.join("manifest.eof").is_file())
                .collect()
        })
        .unwrap_or_default();
    stores.sort();
    stores
}

fn record(dir: &Path) {
    for &(os, seed, hours, mmio) in CORPUS_CELLS {
        let suffix = if mmio { "-mmio" } else { "" };
        let store = dir.join(format!("{}-{seed}{suffix}", os.short()));
        eprintln!(
            "[replay] recording {} seed {seed} ({hours}h{}) -> {}",
            os.display(),
            if mmio { ", mmio" } else { "" },
            store.display()
        );
        let mut config = if mmio {
            FuzzerConfig::eof_driver(os, seed)
        } else {
            FuzzerConfig::eof(os, seed)
        };
        config.budget_hours = hours;
        config.snapshot_hours = hours / 4.0;
        config.persist = Some(store.clone());
        let result = eof_core::run_campaign(config);
        let audit = result.persist.expect("persisted campaign audits its store");
        assert_eq!(audit.write_errors, 0, "store writes failed");
        assert!(audit.seeds_written > 0, "cell admitted no seeds");
        assert!(
            audit.confirmed > 0,
            "{} seed {seed}: no confirmed crash — the corpus cell is useless as a gate",
            os.display()
        );
        assert!(
            !mmio || result.bugs.iter().any(|b| b.number() >= 20),
            "{} seed {seed}: MMIO cell found no driver bug — its store gates nothing new",
            os.display()
        );
        println!(
            "[replay] {}: {} seeds, {} crashes ({} confirmed, {} minimized), {} branches",
            store.display(),
            audit.seeds_written,
            audit.crashes_written,
            audit.confirmed,
            audit.minimized,
            result.branches
        );
    }
}

fn resume(dir: &Path, total_hours: Option<f64>) -> i32 {
    let loaded = match persist::open(dir) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("[replay] cannot open store {}: {e}", dir.display());
            return 2;
        }
    };
    let total = total_hours.unwrap_or(loaded.manifest.consumed_hours * 2.0);
    eprintln!(
        "[replay] resuming {} ({} seed {}, {}h consumed) to {total}h...",
        dir.display(),
        loaded.manifest.os.display(),
        loaded.manifest.seed,
        loaded.manifest.consumed_hours
    );
    match resume_campaign(dir, total) {
        Ok(outcome) => {
            println!(
                "[replay] resumed: {} -> {} branches, {} execs; prefix verified ({} seeds, {} crashes, {} edges)",
                outcome.prior.branches,
                outcome.result.branches,
                outcome.result.stats.execs,
                outcome.verified_seeds,
                outcome.verified_crashes,
                outcome.verified_edges
            );
            0
        }
        Err(e) => {
            eprintln!("[replay] resume failed: {e}");
            1
        }
    }
}

fn replay_one(dir: &Path) -> (Result<ReplayReport, String>, Option<tel::Registry>) {
    let guard = tel::enabled().then(tel::begin);
    let outcome = replay_store(dir).map_err(|e| e.to_string());
    let registry = guard.map(|g| g.finish());
    (outcome, registry)
}

fn verdict_json(reports: &[(PathBuf, Result<ReplayReport, String>)]) -> String {
    let entries: Vec<String> = reports
        .iter()
        .map(|(dir, outcome)| match outcome {
            Ok(report) => report.to_json().trim_end().to_string(),
            Err(e) => format!(
                "{{\"store\": \"{}\", \"verdict\": \"ERROR\", \"error\": \"{}\"}}",
                dir.display(),
                e.replace('"', "'")
            ),
        })
        .collect();
    let all_pass = reports.iter().all(|(_, r)| {
        r.as_ref()
            .is_ok_and(|rep| rep.all_passed() && !rep.cases.is_empty())
    });
    format!(
        "{{\n\"verdict\": \"{}\",\n\"stores\": [\n{}\n]\n}}\n",
        if all_pass { "PASS" } else { "FAIL" },
        entries.join(",\n")
    )
}

fn gate(stores: &[PathBuf]) -> i32 {
    if stores.is_empty() {
        eprintln!("[replay] no stores found (looked in {CORPUS_DIR}/)");
        return 2;
    }
    let mut reports = Vec::new();
    let mut registries = Vec::new();
    for dir in stores {
        let (outcome, registry) = replay_one(dir);
        match &outcome {
            Ok(report) => {
                println!(
                    "[replay] {}: {} — {}/{} cases reproduced ({} unconfirmed skipped, {} load skips)",
                    dir.display(),
                    if report.all_passed() { "PASS" } else { "FAIL" },
                    report.passed(),
                    report.cases.len(),
                    report.skipped_unconfirmed,
                    report.skips.total()
                );
                for case in report.cases.iter().filter(|c| !c.pass) {
                    println!("[replay]   FAIL {} {}: {}", case.kind, case.id, case.detail);
                }
            }
            Err(e) => eprintln!("[replay] {}: ERROR — {e}", dir.display()),
        }
        registries.extend(registry);
        reports.push((dir.clone(), outcome));
    }
    let json = verdict_json(&reports);
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/replay.verdict.json", &json).expect("write replay verdict");
    println!("[written results/replay.verdict.json]");
    eof_bench::collect_registries(registries);
    let _ = eof_bench::export_telemetry("replay");
    if json.starts_with("{\n\"verdict\": \"PASS\"") {
        println!("[replay] gate PASSED ({} stores)", reports.len());
        0
    } else {
        eprintln!("[replay] gate FAILED");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--record") => {
            let dir = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(CORPUS_DIR));
            record(&dir);
            0
        }
        Some("--resume") => {
            let dir = PathBuf::from(args.get(1).expect("--resume needs a store directory"));
            let hours = args.get(2).map(|h| h.parse().expect("total hours parses"));
            resume(&dir, hours)
        }
        Some("--help" | "-h") => {
            println!(
                "usage: replay [STORE_DIR ...]        replay stores (default: {CORPUS_DIR}/*)\n       \
                 replay --record [DIR]         regenerate the regression corpus\n       \
                 replay --resume DIR [HOURS]   resume a persisted campaign"
            );
            0
        }
        Some(_) => gate(&args.iter().map(PathBuf::from).collect::<Vec<_>>()),
        None => gate(&corpus_stores(Path::new(CORPUS_DIR))),
    };
    std::process::exit(code);
}
