//! Driver-workload A/B: the Table-2 driver-bug experiment. Same OS,
//! same seed schedule, same simulated budget — the only variable is the
//! MMIO peripheral plane (`FuzzerConfig::eof_driver` vs the pure-API
//! `FuzzerConfig::eof`). The pure campaign's spec omits the driver
//! modules entirely, so any driver bug (number ≥ 20) it reports is a
//! workload-separation violation and fails the bench; the driver
//! campaign must confirm at least one driver bug per seeded OS within
//! the budget, or the peripheral plane isn't earning its keep.
//!
//! Writes `results/periph.{txt,csv}` and the machine-readable verdict
//! `BENCH_periph.json`.

use eof_bench::{bench_hours, bench_reps, fmt1, run_config_set};
use eof_core::{CampaignResult, FuzzerConfig};
use eof_rtos::bugs::DRIVER_BUG_TABLE;
use eof_rtos::OsKind;
use std::collections::BTreeSet;

fn mean(results: &[CampaignResult], f: impl Fn(&CampaignResult) -> f64) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(f).sum::<f64>() / results.len() as f64
}

/// Distinct driver-bug numbers found across a cell's repetitions.
fn driver_bugs(results: &[CampaignResult]) -> BTreeSet<u8> {
    results
        .iter()
        .flat_map(|r| r.bugs.iter())
        .map(|b| b.number())
        .filter(|&n| n >= 20)
        .collect()
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[periph] {hours} simulated hours × {reps} reps per cell");

    // One pure-API and one driver cell per OS, fanned out as a single
    // fleet batch so the A/B shares the worker pool. PoK rides along:
    // its driver layer is deliberately bug-free, so it checks that the
    // MMIO plane alone does not manufacture crashes.
    let mut bases = Vec::new();
    for os in OsKind::ALL {
        let mut pure = FuzzerConfig::eof(os, 42);
        pure.budget_hours = hours;
        bases.push(pure);
        let mut driver = FuzzerConfig::eof_driver(os, 42);
        driver.budget_hours = hours;
        bases.push(driver);
    }
    let mut per_base = run_config_set(&bases, reps).into_iter();

    let seeded: BTreeSet<OsKind> = DRIVER_BUG_TABLE.iter().map(|b| b.os).collect();
    let mut rows = Vec::new();
    let mut cells_json = Vec::new();
    let mut violations = Vec::new();
    let mut text =
        String::from("Driver workload vs pure API surface, same seeds and simulated budget\n");
    for os in OsKind::ALL {
        let pure = per_base.next().expect("pure cell");
        let driver = per_base.next().expect("driver cell");
        let (pe, de) = (
            mean(&pure, |r| r.stats.execs as f64),
            mean(&driver, |r| r.stats.execs as f64),
        );
        let (pb, db) = (
            mean(&pure, |r| r.branches as f64),
            mean(&driver, |r| r.branches as f64),
        );
        let pure_driver_bugs = driver_bugs(&pure);
        let found = driver_bugs(&driver);
        if !pure_driver_bugs.is_empty() {
            violations.push(format!(
                "{}: pure-API campaign reached driver bugs {pure_driver_bugs:?}",
                os.display()
            ));
        }
        if seeded.contains(&os) && found.is_empty() {
            violations.push(format!(
                "{}: driver campaign confirmed no driver bug in {hours}h × {reps} reps",
                os.display()
            ));
        }
        if !seeded.contains(&os) && !found.is_empty() {
            violations.push(format!(
                "{}: unseeded OS reported driver bugs {found:?}",
                os.display()
            ));
        }
        let found_list: Vec<String> = found.iter().map(|n| format!("#{n}")).collect();
        text.push_str(&format!(
            "  {:10} execs {:>7} -> {:>7}   branches {:>6} -> {:>6}   driver bugs: {}\n",
            os.display(),
            fmt1(pe),
            fmt1(de),
            fmt1(pb),
            fmt1(db),
            if found_list.is_empty() {
                "none".to_string()
            } else {
                found_list.join(" ")
            },
        ));
        rows.push(vec![
            os.display().to_string(),
            fmt1(pe),
            fmt1(de),
            fmt1(pb),
            fmt1(db),
            found.len().to_string(),
            found_list.join(" "),
        ]);
        cells_json.push(format!(
            "{{\"os\": \"{}\", \"seeded\": {}, \"execs_pure\": {pe:.1}, \"execs_driver\": {de:.1}, \
             \"branches_pure\": {pb:.1}, \"branches_driver\": {db:.1}, \
             \"driver_bugs_pure\": {}, \"driver_bugs_driver\": [{}]}}",
            os.display(),
            seeded.contains(&os),
            pure_driver_bugs.len(),
            found
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        ));
        eprintln!("  {} done", os.display());
    }
    let headers = [
        "os",
        "execs_pure",
        "execs_driver",
        "branches_pure",
        "branches_driver",
        "driver_bug_count",
        "driver_bugs",
    ];
    eof_bench::write_outputs("periph", &text, &headers, &rows);

    let pass = violations.is_empty();
    let json = format!(
        "{{\n  \"workload\": {{\"reps\": {reps}, \"hours_per_campaign\": {hours}}},\n  \
         \"verdict\": \"{}\",\n  \"violations\": [{}],\n  \"cells\": [\n    {}\n  ]\n}}\n",
        if pass { "PASS" } else { "FAIL" },
        violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
        cells_json.join(",\n    "),
    );
    std::fs::write("BENCH_periph.json", &json).expect("write BENCH_periph.json");
    println!("[written BENCH_periph.json]");
    if !pass {
        for v in &violations {
            eprintln!("[periph] VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    println!("[periph] driver-workload gate PASSED");
}
