//! Fleet benchmark: wall-clock of a Figure-7-shaped workload run
//! serially (1 job) vs across the fleet, with per-phase artifact-cache
//! hit rates and a byte-level identity check between the two phases.
//!
//! Writes the measurement to `BENCH_fleet.json` (repo root, i.e. the
//! working directory) plus the usual `results/` outputs. Scale knobs:
//! `EOF_FLEET_HOURS` (default 0.25 simulated hours per campaign) and
//! `EOF_FLEET_REPS` (default 3 repetitions per cell).

use eof_baselines::BaselineKind;
use eof_bench::rep_configs;
use eof_core::{
    artifacts, cache_stats, run_campaign, CacheStats, CampaignResult, FleetRunner, FleetStats,
    FuzzerConfig,
};
use eof_rtos::OsKind;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Figure-7-shaped batch: four OS × fuzzer cells, several repetitions
/// each — the workload every table in the harness generalises.
fn workload(hours: f64, reps: usize) -> (Vec<(OsKind, BaselineKind)>, Vec<FuzzerConfig>) {
    // Two fuzzers share NuttX so the batch also exercises cross-cell
    // spec/image reuse, exactly like the real Figure-7 grid does.
    let cells = vec![
        (OsKind::NuttX, BaselineKind::Eof),
        (OsKind::NuttX, BaselineKind::EofNf),
        (OsKind::Zephyr, BaselineKind::Eof),
        (OsKind::FreeRtos, BaselineKind::Eof),
        (OsKind::RtThread, BaselineKind::Tardis),
    ];
    let configs = cells
        .iter()
        .flat_map(|&(os, kind)| {
            let mut cfg = kind.full_system_config(os, 42).expect("fleet cell");
            cfg.budget_hours = hours;
            rep_configs(&cfg, reps)
        })
        .collect();
    (cells, configs)
}

/// Run one phase from cold caches; returns wall seconds, the results in
/// submission order, the phase's cache counters and the fleet's
/// scheduling accounting.
fn run_phase(
    jobs: usize,
    configs: Vec<FuzzerConfig>,
) -> (f64, Vec<CampaignResult>, CacheStats, FleetStats) {
    artifacts::clear_caches();
    eof_core::reset_cache_stats();
    let start = Instant::now();
    let (out, fleet_stats) =
        FleetRunner::new(jobs).map_with_stats(configs, |_, config| run_campaign(config));
    let results: Vec<CampaignResult> = out
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect();
    (
        start.elapsed().as_secs_f64(),
        results,
        cache_stats(),
        fleet_stats,
    )
}

/// Order-sensitive fingerprint of everything a campaign reports.
fn fingerprint(results: &[CampaignResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "branches={} execs={} bugs={:?} crashes={:?} stats={:?};",
                r.branches, r.stats.execs, r.bugs, r.crashes, r.stats
            )
        })
        .collect()
}

fn cache_json(s: &CacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"image_hits\": {}, \"image_misses\": {}, \"spec_hits\": {}, \"spec_misses\": {}, \"lock_wait_nanos\": {}}}",
        s.hits(), s.misses(), s.hit_rate(), s.image_hits, s.image_misses, s.spec_hits, s.spec_misses, s.lock_wait_nanos
    )
}

/// Merged telemetry summary of one phase, campaigns in submission
/// order. `None` unless `EOF_TRACE` recording was on.
fn phase_summary(results: &[CampaignResult]) -> Option<eof_telemetry::TelemetrySummary> {
    let parts: Vec<eof_telemetry::Registry> =
        results.iter().filter_map(|r| r.telemetry.clone()).collect();
    (!parts.is_empty()).then(|| eof_telemetry::Merged::from_parts(parts).summary())
}

fn main() {
    let hours = env_f64("EOF_FLEET_HOURS", 0.25);
    let reps = env_usize("EOF_FLEET_REPS", 3);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // What the environment asked for vs what the host can actually run
    // in parallel: oversubscribing cores never measures scaling, so the
    // parallel phase is clamped to the hardware and both figures land
    // in BENCH_fleet.json.
    let requested_jobs = FleetRunner::from_env().jobs().max(4);
    let parallel_jobs = requested_jobs.min(host_cores).max(1);

    let (cells, configs) = workload(hours, reps);
    eprintln!(
        "[fleet] {} configs ({} cells × {reps} reps, {hours}h each); host has {host_cores} cores",
        configs.len(),
        cells.len()
    );
    if parallel_jobs < requested_jobs {
        eprintln!(
            "[fleet] clamped parallel phase from {requested_jobs} requested jobs \
             to {parallel_jobs} (host has {host_cores} core(s))"
        );
    }

    eprintln!("[fleet] serial phase (1 job)...");
    let (serial_secs, serial_results, serial_cache, serial_fleet) = run_phase(1, configs.clone());
    eprintln!("[fleet] parallel phase ({parallel_jobs} jobs)...");
    let (parallel_secs, parallel_results, parallel_cache, parallel_fleet) =
        run_phase(parallel_jobs, configs);

    let identical = fingerprint(&serial_results) == fingerprint(&parallel_results);
    let speedup = serial_secs / parallel_secs.max(1e-9);
    // Honest scaling requires a phase that was actually parallel: on a
    // 1-core runner the clamped "parallel" phase is the serial phase
    // again, and its speedup (~1.0) is not a scaling result.
    let speedup_valid = parallel_jobs > 1 && parallel_jobs <= host_cores;
    if !speedup_valid {
        eprintln!(
            "[fleet] WARNING: parallel phase ran {parallel_jobs} job(s) on {host_cores} \
             host core(s) — the measured speedup is not a valid scaling number \
             (speedup_valid=false in BENCH_fleet.json)"
        );
    }
    assert!(
        identical,
        "fleet determinism violated: serial and parallel phases disagree"
    );

    // Telemetry half of the determinism contract: the merged summary of
    // the 1-job phase must be byte-identical to the N-job phase's — the
    // fleet merges registries in submission order, so scheduling must
    // not leak into the observability data either.
    let serial_summary = phase_summary(&serial_results);
    let parallel_summary = phase_summary(&parallel_results);
    let telemetry_identical = match (&serial_summary, &parallel_summary) {
        (Some(a), Some(b)) => a.to_json() == b.to_json(),
        (None, None) => true,
        _ => false,
    };
    assert!(
        telemetry_identical,
        "fleet determinism violated: serial and parallel telemetry summaries disagree"
    );
    eof_bench::collect_telemetry(&serial_results);

    // Bin-level telemetry: how long fleet jobs queued on the artifact-
    // cache registry lock. Recorded into a bench-scoped registry, not a
    // campaign's — lock contention is wall-clock-dependent, and campaign
    // registries must stay deterministic across job counts.
    if eof_telemetry::enabled() {
        let guard = eof_telemetry::begin();
        eof_telemetry::count(
            "fleet.cache.lock_wait_cycles",
            serial_cache.lock_wait_nanos + parallel_cache.lock_wait_nanos,
        );
        eof_bench::collect_registries(vec![guard.finish()]);
    }

    let cell_names: Vec<String> = cells
        .iter()
        .map(|(os, kind)| format!("\"{}/{}\"", os.display(), kind.display()))
        .collect();
    let telemetry_json = match (&serial_summary, &parallel_summary) {
        (Some(s), Some(p)) => format!(
            "{{\"identical\": {telemetry_identical}, \"serial\": {}, \"parallel\": {}}}",
            s.to_json(),
            p.to_json()
        ),
        _ => "null".to_string(),
    };
    // Scheduler-acquisition wait, serial vs parallel. Under the old
    // per-item-mutex work list this was lock wait; the lock-free
    // cursor keeps it near zero, and the delta records what parallel
    // claiming costs over serial claiming on this host.
    let sched_delta_nanos =
        parallel_fleet.sched_wait_nanos as i64 - serial_fleet.sched_wait_nanos as i64;
    let json = format!(
        "{{\n  \"workload\": {{\"cells\": [{}], \"reps\": {reps}, \"hours_per_campaign\": {hours}}},\n  \"host_cores\": {host_cores},\n  \"jobs\": {{\"requested\": {requested_jobs}, \"effective\": {parallel_jobs}}},\n  \"serial\": {{\"jobs\": 1, \"secs\": {serial_secs:.3}, \"lock_wait_nanos\": {}, \"cache\": {}}},\n  \"parallel\": {{\"jobs\": {parallel_jobs}, \"jobs_requested\": {requested_jobs}, \"secs\": {parallel_secs:.3}, \"lock_wait_nanos\": {}, \"cache\": {}}},\n  \"lock_wait_delta_nanos\": {sched_delta_nanos},\n  \"speedup\": {speedup:.2},\n  \"speedup_valid\": {speedup_valid},\n  \"identical_results\": {identical},\n  \"telemetry\": {telemetry_json}\n}}\n",
        cell_names.join(", "),
        serial_fleet.sched_wait_nanos,
        cache_json(&serial_cache),
        parallel_fleet.sched_wait_nanos,
        cache_json(&parallel_cache),
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("{json}");
    println!("[written BENCH_fleet.json]");

    let headers = [
        "phase",
        "jobs",
        "secs",
        "cache hits",
        "cache misses",
        "hit rate",
    ];
    let rows = vec![
        vec![
            "serial".to_string(),
            "1".to_string(),
            format!("{serial_secs:.3}"),
            serial_cache.hits().to_string(),
            serial_cache.misses().to_string(),
            format!("{:.0}%", serial_cache.hit_rate() * 100.0),
        ],
        vec![
            "parallel".to_string(),
            parallel_jobs.to_string(),
            format!("{parallel_secs:.3}"),
            parallel_cache.hits().to_string(),
            parallel_cache.misses().to_string(),
            format!("{:.0}%", parallel_cache.hit_rate() * 100.0),
        ],
        vec![
            "speedup".to_string(),
            String::new(),
            format!("{speedup:.2}x"),
            String::new(),
            String::new(),
            String::new(),
        ],
    ];
    eof_bench::emit("fleet", &headers, rows);
}
