//! Ablation: the specification validation gate on vs off, under heavy
//! LLM noise — how many APIs survive, and what that does to coverage.

use eof_bench::{bench_hours, bench_reps, mean_branches, run_reps};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;
use eof_specgen::{generate_validated, NoiseConfig};

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    let mut rows = Vec::new();
    for os in OsKind::ALL {
        // Static view: what the gate does to a heavily-noised spec.
        let noise = NoiseConfig { seed: 7, defect_rate: 0.6 };
        let (_, gated) = generate_validated(os, &noise, true);
        let (_, raw) = generate_validated(os, &noise, false);

        // Dynamic view: campaign coverage with and without the gate.
        let mut on_cfg = FuzzerConfig::eof(os, 42);
        on_cfg.budget_hours = hours;
        on_cfg.spec_noise = Some(7);
        let mut off_cfg = on_cfg.clone();
        off_cfg.spec_validation = false;
        let on = mean_branches(&run_reps(&on_cfg, reps));
        let off = mean_branches(&run_reps(&off_cfg, reps));
        eprintln!("  {}: gated {on:.1} vs ungated {off:.1}", os.display());
        rows.push(vec![
            os.display().to_string(),
            format!("{} evicted, {} regenerated", gated.rejected_apis, gated.regenerated_apis),
            raw.admitted_apis.to_string(),
            format!("{on:.1}"),
            format!("{off:.1}"),
        ]);
    }
    let headers = [
        "Target OS",
        "Gate action (defect rate 0.6)",
        "Ungated APIs",
        "Branches (gated)",
        "Branches (ungated)",
    ];
    eof_bench::emit("ablate_validation", &headers, rows);
}
