//! Ablation: the specification validation gate on vs off, under heavy
//! LLM noise — how many APIs survive, and what that does to coverage.

use eof_bench::{bench_hours, bench_reps, mean_branches, run_config_set};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;
use eof_specgen::NoiseConfig;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    // Dynamic view first: gated and ungated campaigns for all five OSs
    // go out as one fleet batch.
    let bases: Vec<FuzzerConfig> = OsKind::ALL
        .into_iter()
        .flat_map(|os| {
            let mut on_cfg = FuzzerConfig::eof(os, 42);
            on_cfg.budget_hours = hours;
            on_cfg.spec_noise = Some(7);
            let mut off_cfg = on_cfg.clone();
            off_cfg.spec_validation = false;
            [on_cfg, off_cfg]
        })
        .collect();
    let mut per_arm = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    for os in OsKind::ALL {
        // Static view: what the gate does to a heavily-noised spec (the
        // artifact cache serves repeated asks for the same noised spec).
        let noise = NoiseConfig {
            seed: 7,
            defect_rate: 0.6,
        };
        let gated = eof_core::cached_spec(os, &noise, true).1.clone();
        let raw = eof_core::cached_spec(os, &noise, false).1.clone();

        let on = mean_branches(&per_arm.next().expect("gated arm"));
        let off = mean_branches(&per_arm.next().expect("ungated arm"));
        eprintln!("  {}: gated {on:.1} vs ungated {off:.1}", os.display());
        rows.push(vec![
            os.display().to_string(),
            format!(
                "{} evicted, {} regenerated",
                gated.rejected_apis, gated.regenerated_apis
            ),
            raw.admitted_apis.to_string(),
            format!("{on:.1}"),
            format!("{off:.1}"),
        ]);
    }
    let headers = [
        "Target OS",
        "Gate action (defect rate 0.6)",
        "Ungated APIs",
        "Branches (gated)",
        "Branches (ungated)",
    ];
    eof_bench::emit("ablate_validation", &headers, rows);
}
