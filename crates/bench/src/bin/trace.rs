//! Coverage-acquisition three-way A/B: what does *observing* the target
//! cost? Same OS, same seed schedule, same simulated budget — the only
//! variable is the acquisition channel:
//!
//! * `none`  — plain build, no coverage read back at all: the raw
//!   execs-per-budget ceiling of the harness;
//! * `ring`  — the instrumented build with the on-device ring and its
//!   `_kcmp_buf_full` drain protocol (the paper's software channel);
//! * `trace` — the plain build again, with edges recovered from the
//!   hardware trace unit over `DrainTrace` (non-intrusive channel).
//!
//! Each arm runs under both wire modes, because the trace FIFO drain is
//! exactly the kind of hot-path operation the vectored link batches:
//! the gate below requires the vectored trace campaign to complete
//! strictly more execs than the scalar one on every OS. The equivalence
//! claim (trace observes the *same campaign* as ring) is enforced by
//! `tests/trace_equiv.rs`; this bin quantifies what each channel costs.
//!
//! Writes `results/trace.{txt,csv}` and the machine-readable verdict
//! `BENCH_trace.json`.

use eof_bench::{bench_hours, bench_reps, fmt1, run_config_set};
use eof_core::{CampaignResult, FuzzerConfig};
use eof_coverage::{CoverageKind, InstrumentMode};
use eof_rtos::OsKind;

/// The three acquisition arms, in fixed batch order.
const ARMS: &[&str] = &["none", "ring", "trace"];

fn mean(results: &[CampaignResult], f: impl Fn(&CampaignResult) -> f64) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(f).sum::<f64>() / results.len() as f64
}

fn arm_config(os: OsKind, arm: &str, vectored: bool, hours: f64) -> FuzzerConfig {
    let mut cfg = FuzzerConfig::eof(os, 42);
    cfg.budget_hours = hours;
    cfg.vectored = vectored;
    match arm {
        "none" => cfg.instrument = InstrumentMode::None,
        "ring" => {}
        "trace" => cfg.coverage_backend = CoverageKind::Trace,
        other => unreachable!("unknown arm {other}"),
    }
    cfg
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[trace] {hours} simulated hours × {reps} reps per cell");

    // Full cross: OS × arm × wire, one fleet batch sharing the pool.
    let mut bases = Vec::new();
    for os in OsKind::ALL {
        for arm in ARMS {
            for vectored in [false, true] {
                bases.push(arm_config(os, arm, vectored, hours));
            }
        }
    }
    let mut per_base = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    let mut cells_json = Vec::new();
    let mut violations = Vec::new();
    let mut text = String::from(
        "Coverage acquisition three-way: none vs instrumented ring vs hardware trace,\n\
         same seeds and simulated budget, both wire modes\n",
    );
    for os in OsKind::ALL {
        // execs[arm][wire], branches[arm][wire]
        let mut execs = [[0.0f64; 2]; 3];
        let mut branches = [[0.0f64; 2]; 3];
        for (ai, _) in ARMS.iter().enumerate() {
            for wi in 0..2 {
                let cell = per_base.next().expect("cell result");
                execs[ai][wi] = mean(&cell, |r| r.stats.execs as f64);
                branches[ai][wi] = mean(&cell, |r| r.branches as f64);
            }
        }
        for (ai, arm) in ARMS.iter().enumerate() {
            for (wi, wire) in ["scalar", "vectored"].iter().enumerate() {
                rows.push(vec![
                    os.display().to_string(),
                    arm.to_string(),
                    wire.to_string(),
                    fmt1(execs[ai][wi]),
                    fmt1(branches[ai][wi]),
                ]);
                cells_json.push(format!(
                    "{{\"os\": \"{}\", \"arm\": \"{arm}\", \"wire\": \"{wire}\", \
                     \"execs\": {:.1}, \"branches\": {:.1}}}",
                    os.display(),
                    execs[ai][wi],
                    branches[ai][wi],
                ));
            }
        }
        // The vectored DrainTrace must be strictly cheaper than scalar:
        // one wire op per drain instead of an op per 96-byte chunk.
        let (ts, tv) = (execs[2][0], execs[2][1]);
        if tv <= ts {
            violations.push(format!(
                "{}: vectored trace campaign not faster than scalar ({tv:.1} <= {ts:.1} execs)",
                os.display()
            ));
        }
        // Overhead summary against the no-acquisition ceiling (vectored).
        let ceiling = execs[0][1];
        let pct = |e: f64| {
            if ceiling > 0.0 {
                (ceiling - e) / ceiling * 100.0
            } else {
                0.0
            }
        };
        text.push_str(&format!(
            "  {:10} execs/budget  none {:>8}  ring {:>8} ({:+.1}%)  trace {:>8} ({:+.1}%)   \
             [trace wire: scalar {:>8} -> vectored {:>8}]\n",
            os.display(),
            fmt1(ceiling),
            fmt1(execs[1][1]),
            -pct(execs[1][1]),
            fmt1(execs[2][1]),
            -pct(execs[2][1]),
            fmt1(ts),
            fmt1(tv),
        ));
        eprintln!("  {} done", os.display());
    }
    let headers = ["os", "arm", "wire", "execs", "branches"];
    eof_bench::write_outputs("trace", &text, &headers, &rows);

    let pass = violations.is_empty();
    let json = format!(
        "{{\n  \"workload\": {{\"reps\": {reps}, \"hours_per_campaign\": {hours}}},\n  \
         \"verdict\": \"{}\",\n  \"violations\": [{}],\n  \"cells\": [\n    {}\n  ]\n}}\n",
        if pass { "PASS" } else { "FAIL" },
        violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
        cells_json.join(",\n    "),
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("[written BENCH_trace.json]");
    if !pass {
        for v in &violations {
            eprintln!("[trace] VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    println!("[trace] acquisition-overhead gate PASSED");
}
