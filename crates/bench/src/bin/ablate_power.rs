//! Ablation of the §6 extension: power-rail liveness vs the PC-stall
//! watchdog vs a bare 15-second timeout, on the stall-heavy targets.
//! Measures stalls recovered, throughput retained and coverage reached.

use eof_bench::{bench_hours, bench_reps, run_config_set};
use eof_core::config::{DetectionConfig, RecoveryConfig};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    let oses = [OsKind::Zephyr, OsKind::NuttX];
    let labels = ["pc-stall", "power-rail", "timeout-15s"];
    // Three liveness channels × two OSs, submitted as one fleet batch.
    let bases: Vec<FuzzerConfig> = oses
        .into_iter()
        .flat_map(|os| {
            let mut pc_cfg = FuzzerConfig::eof(os, 42);
            pc_cfg.budget_hours = hours;
            let mut pw_cfg = pc_cfg.clone();
            pw_cfg.recovery = RecoveryConfig::power_based();
            let mut to_cfg = pc_cfg.clone();
            to_cfg.detection = DetectionConfig {
                exception_breakpoints: true,
                log_monitor: true,
                timeout_only_secs: Some(15),
            };
            to_cfg.recovery = RecoveryConfig {
                stall_watchdog: false,
                reflash: true,
                power_liveness: false,
            };
            [pc_cfg, pw_cfg, to_cfg]
        })
        .collect();
    let mut per_channel = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    for os in oses {
        for label in labels {
            let rs = per_channel.next().expect("one result set per channel");
            let execs: u64 = rs.iter().map(|r| r.stats.execs).sum::<u64>() / reps as u64;
            let stalls: u64 = rs.iter().map(|r| r.stats.stalls).sum::<u64>() / reps as u64;
            let branches = eof_bench::mean_branches(&rs);
            eprintln!(
                "  {} / {label}: {execs} execs, {stalls} stalls, {branches:.1} branches",
                os.display()
            );
            rows.push(vec![
                os.display().to_string(),
                label.to_string(),
                execs.to_string(),
                stalls.to_string(),
                format!("{branches:.1}"),
            ]);
        }
    }
    let headers = [
        "Target OS",
        "Liveness channel",
        "Execs",
        "Stalls recovered",
        "Branches",
    ];
    eof_bench::emit("ablate_power", &headers, rows);
}
