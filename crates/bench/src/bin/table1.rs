//! Table 1: comparison of supported targets between EOF, GDBFuzz, Tardis
//! and SHIFT.
//!
//! The matrix is validated, not just printed: every EOF ✓ on an OS row is
//! backed by a live smoke boot of that OS on a catalogued board of that
//! architecture.

use eof_agent::boot_machine;
use eof_baselines::{table1_matrix, TargetClass, Tool};
use eof_core::FleetRunner;
use eof_coverage::InstrumentMode;
use eof_rtos::image::ImageProfile;
use std::collections::HashMap;

fn main() {
    let matrix = table1_matrix();
    // Every EOF OS cell needs a live smoke boot; fan them all out across
    // the fleet instead of booting row by row.
    let boots: Vec<_> = matrix
        .iter()
        .enumerate()
        .filter_map(|(i, row)| {
            let TargetClass::Os(os) = row.target else {
                return None;
            };
            if !row.cells[0] {
                return None;
            }
            let board = eof_rtos::registry::supported_boards(os)
                .into_iter()
                .find(|b| b.arch == row.arch)
                .expect("registry board for supported arch");
            Some((i, board, os))
        })
        .collect();
    let booted: HashMap<usize, bool> = FleetRunner::from_env()
        .map(boots, |_, (i, board, os)| {
            let m = boot_machine(board, os, ImageProfile::FullSystem, &InstrumentMode::None);
            (i, matches!(m.state(), eof_hal::BootState::Running))
        })
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect();

    let mut rows = Vec::new();
    for (i, row) in matrix.into_iter().enumerate() {
        let validated = match booted.get(&i) {
            Some(true) => " (booted)".to_string(),
            Some(false) => " (BOOT FAILED)".to_string(),
            None => String::new(),
        };
        let cell = |b: bool| if b { "Y" } else { "-" }.to_string();
        rows.push(vec![
            row.target.display().to_string(),
            row.arch.to_string(),
            cell(row.cells[0]) + &validated,
            cell(row.cells[1]),
            cell(row.cells[2]),
            cell(row.cells[3]),
        ]);
    }
    let headers = [
        "Target Systems",
        "Arch",
        Tool::Eof.display(),
        Tool::GdbFuzz.display(),
        Tool::Tardis.display(),
        Tool::Shift.display(),
    ];
    eof_bench::emit("table1", &headers, rows);
}
