//! Table 1: comparison of supported targets between EOF, GDBFuzz, Tardis
//! and SHIFT.
//!
//! The matrix is validated, not just printed: every EOF ✓ on an OS row is
//! backed by a live smoke boot of that OS on a catalogued board of that
//! architecture.

use eof_agent::boot_machine;
use eof_baselines::{table1_matrix, TargetClass, Tool};
use eof_coverage::InstrumentMode;
use eof_rtos::image::ImageProfile;

fn main() {
    let mut rows = Vec::new();
    for row in table1_matrix() {
        // Smoke-boot validation for EOF's OS cells.
        let mut validated = String::new();
        if let TargetClass::Os(os) = row.target {
            if row.cells[0] {
                let board = eof_rtos::registry::supported_boards(os)
                    .into_iter()
                    .find(|b| b.arch == row.arch)
                    .expect("registry board for supported arch");
                let m = boot_machine(board, os, ImageProfile::FullSystem, &InstrumentMode::None);
                validated = if matches!(m.state(), eof_hal::BootState::Running) {
                    " (booted)".to_string()
                } else {
                    " (BOOT FAILED)".to_string()
                };
            }
        }
        let cell = |b: bool| if b { "Y" } else { "-" }.to_string();
        rows.push(vec![
            row.target.display().to_string(),
            row.arch.to_string(),
            cell(row.cells[0]) + &validated,
            cell(row.cells[1]),
            cell(row.cells[2]),
            cell(row.cells[3]),
        ]);
    }
    let headers = [
        "Target Systems",
        "Arch",
        Tool::Eof.display(),
        Tool::GdbFuzz.display(),
        Tool::Tardis.display(),
        Tool::Shift.display(),
    ];
    eof_bench::emit("table1", &headers, rows);
}
