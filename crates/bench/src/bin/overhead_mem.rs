//! §5.5.1: instrumentation memory overhead — image sizes with and
//! without SanCov-style instrumentation, per OS, with the paper's
//! reported percentages alongside.

use eof_core::cached_image;
use eof_coverage::InstrumentMode;
use eof_rtos::image::ImageProfile;
use eof_rtos::OsKind;

fn main() {
    let paper: &[(OsKind, f64)] = &[
        (OsKind::NuttX, 4.76),
        (OsKind::RtThread, 7.11),
        (OsKind::Zephyr, 9.58),
        (OsKind::FreeRtos, 4.32),
        (OsKind::PokOs, f64::NAN),
    ];
    let mut rows = Vec::new();
    let mut sum = 0.0;
    let mut n = 0;
    for &(os, paper_pct) in paper {
        // Served from the shared artifact cache — campaigns that already
        // built these images make the size audit free.
        let plain = cached_image(os, ImageProfile::FullSystem, &InstrumentMode::None).len();
        let inst = cached_image(os, ImageProfile::FullSystem, &InstrumentMode::Full).len();
        let pct = (inst - plain) as f64 / plain as f64 * 100.0;
        if !paper_pct.is_nan() {
            sum += pct;
            n += 1;
        }
        rows.push(vec![
            os.display().to_string(),
            format!("{:.3} MB", plain as f64 / 1_000_000.0),
            format!("{:.3} MB", inst as f64 / 1_000_000.0),
            format!("{pct:.2}%"),
            if paper_pct.is_nan() {
                "-".to_string()
            } else {
                format!("{paper_pct:.2}%")
            },
        ]);
    }
    rows.push(vec![
        "Average (4 reported OSs)".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}%", sum / n as f64),
        "6.44%".to_string(),
    ]);
    let headers = [
        "Target OS",
        "Uninstrumented",
        "Instrumented",
        "Overhead",
        "Paper",
    ];
    eof_bench::emit("overhead_mem", &headers, rows);
}
