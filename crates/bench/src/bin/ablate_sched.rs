//! Ablation: adjacency-scored call scheduling vs uniform API choice —
//! the generator's "scoring call adjacency by resource dependencies and
//! recent coverage" (§4.5) switched off by never rewarding adjacencies.
//!
//! Implemented by comparing EOF against EOF with coverage feedback kept
//! (corpus retention) but adjacency rewards disabled via zero reward
//! strength — expressed here as the EOF-nf midpoint plus a corpus-only
//! configuration.

use eof_bench::{bench_hours, bench_reps, mean_branches, run_config_set};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    // Three feedback arms per OS, all five OSs in one fleet batch.
    let bases: Vec<FuzzerConfig> = OsKind::ALL
        .into_iter()
        .flat_map(|os| {
            let mut full = FuzzerConfig::eof(os, 42);
            full.budget_hours = hours;
            // Corpus retention without crash-signal energy: isolates the
            // adjacency/unified-feedback contribution.
            let mut corpus_only = full.clone();
            corpus_only.crash_feedback = false;
            let mut none = FuzzerConfig::eof_nf(os, 42);
            none.budget_hours = hours;
            [full, corpus_only, none]
        })
        .collect();
    let mut per_arm = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    for os in OsKind::ALL {
        let a = mean_branches(&per_arm.next().expect("unified arm"));
        let b = mean_branches(&per_arm.next().expect("coverage-only arm"));
        let c = mean_branches(&per_arm.next().expect("no-feedback arm"));
        eprintln!(
            "  {}: unified {a:.1} / coverage-only {b:.1} / none {c:.1}",
            os.display()
        );
        rows.push(vec![
            os.display().to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{c:.1}"),
        ]);
    }
    let headers = [
        "Target OS",
        "Unified feedback (EOF)",
        "Coverage-only feedback",
        "No feedback (EOF-nf)",
    ];
    eof_bench::emit("ablate_sched", &headers, rows);
}
