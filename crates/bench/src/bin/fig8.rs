//! Figure 8: application-level coverage growth (HTTP server + JSON on
//! hardware) for EOF, GDBFuzz and SHIFT, with the early-saturation
//! behaviour the paper notes ("both EOF and EOF-nf stop growing after the
//! first four hours").

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, curve_rows, run_config_set};

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[fig8] {hours} simulated hours × {reps} reps per curve");

    // One fleet batch for all three curves.
    let kinds = [
        BaselineKind::Eof,
        BaselineKind::GdbFuzz,
        BaselineKind::Shift,
    ];
    let bases: Vec<_> = kinds
        .iter()
        .map(|kind| {
            let mut cfg = kind.app_level_config(42).expect("participant");
            cfg.budget_hours = hours;
            cfg.snapshot_hours = (hours / 24.0).max(0.25);
            cfg
        })
        .collect();
    let per_kind = run_config_set(&bases, reps);

    let mut rows = Vec::new();
    let mut summary = String::from("Figure 8: application-level coverage growth\n");
    for (kind, results) in kinds.iter().zip(per_kind) {
        let labelled = curve_rows(kind.display(), &results);
        // Saturation check: coverage at 1/6 of budget vs at the end.
        if let (Some(first_quarter), Some(end)) =
            (labelled.get(labelled.len() / 6), labelled.last())
        {
            summary.push_str(&format!(
                "  {:8}: {} branches at {}h, {} at {}h\n",
                kind.display(),
                first_quarter[2],
                first_quarter[1],
                end[2],
                end[1]
            ));
        }
        rows.extend(labelled);
        eprintln!("  {} done", kind.display());
    }
    let headers = ["fuzzer", "hours", "mean", "min", "max"];
    eof_bench::write_outputs("fig8", &summary, &headers, &rows);
}
