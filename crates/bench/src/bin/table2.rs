//! Table 2: previously-unknown bugs detected by EOF.
//!
//! Runs EOF's full-system campaigns on all five OSs (the paper's 5
//! repetitions, unioned — crash counts in the paper are per-evaluation,
//! not per-run) and prints the found bugs in Table 2's layout, plus the
//! comparison rows of §5.4.1 (EOF-nf's and Tardis's bug sets).

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, run_config_set};
use eof_rtos::bugs::{BugId, DetectionClass, BUG_TABLE};
use eof_rtos::OsKind;
use std::collections::BTreeSet;

fn bug_union(kind: BaselineKind, hours: f64, reps: usize) -> BTreeSet<BugId> {
    // All five OS campaigns of this fuzzer go out as one fleet batch.
    let bases: Vec<_> = OsKind::ALL
        .into_iter()
        .filter_map(|os| {
            let mut cfg = kind.full_system_config(os, 42)?;
            cfg.budget_hours = hours;
            Some(cfg)
        })
        .collect();
    run_config_set(&bases, reps)
        .into_iter()
        .flatten()
        .flat_map(|r| r.bugs)
        .collect()
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[table2] {hours} simulated hours × {reps} reps per OS per fuzzer");

    let eof_found = bug_union(BaselineKind::Eof, hours, reps);
    let nf_found = bug_union(BaselineKind::EofNf, hours, reps);
    let tardis_found = bug_union(BaselineKind::Tardis, hours, reps);

    let mut rows = Vec::new();
    for info in BUG_TABLE {
        if !eof_found.contains(&info.id) {
            continue;
        }
        rows.push(vec![
            info.number.to_string(),
            info.os.display().to_string(),
            info.scope.to_string(),
            info.bug_type.to_string(),
            info.operation.to_string(),
            if info.confirmed { "confirmed" } else { "" }.to_string(),
            match info.detection {
                DetectionClass::LogMonitor => "log monitor",
                DetectionClass::ExceptionMonitor => "exception monitor",
            }
            .to_string(),
        ]);
    }
    let headers = [
        "#",
        "Target OSs",
        "Scope",
        "Bug Types",
        "Operations",
        "Status",
        "Detected by",
    ];
    let mut text = eof_core::report::text_table(&headers, &rows);
    text.push_str(&format!(
        "\nEOF found {} of 19 seeded bugs.\n",
        eof_found.len()
    ));
    text.push_str(&format!(
        "EOF-nf found {} bugs: {:?} (paper: 11 — #1-5, 8-9, 13, 15, 18-19)\n",
        nf_found.len(),
        nf_found.iter().map(|b| b.number()).collect::<Vec<_>>()
    ));
    text.push_str(&format!(
        "Tardis found {} bugs: {:?} (paper: 6 — #3-5, 8, 15, 18)\n",
        tardis_found.len(),
        tardis_found.iter().map(|b| b.number()).collect::<Vec<_>>()
    ));
    // Subset structure the paper reports: Tardis ⊆ EOF-nf ⊆ EOF.
    let tardis_sub = tardis_found.is_subset(&nf_found);
    let nf_sub = nf_found.is_subset(&eof_found);
    text.push_str(&format!(
        "Subset structure: Tardis ⊆ EOF-nf: {tardis_sub}; EOF-nf ⊆ EOF: {nf_sub}\n"
    ));
    eof_bench::write_outputs("table2", &text, &headers, &rows);
}
