//! Figure 7: 24-hour coverage growth curves on the five embedded OSs,
//! with the min/max band over repetitions (the figure's shaded area).
//!
//! Output: one CSV row per (OS, fuzzer, hour) with mean/min/max branch
//! counts — the series a plotting script recreates the figure from — and
//! an ASCII rendering of each sub-figure.

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, curve_rows, run_config_set};
use eof_rtos::OsKind;

fn ascii_plot(title: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = format!("\n{title}\n");
    let max_y = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
        .fold(1.0f64, f64::max);
    for (label, pts) in series {
        out.push_str(&format!("  {label:8} |"));
        for (_, y) in pts {
            let level = (y / max_y * 8.0).round() as usize;
            out.push(match level {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => '-',
                4 => '=',
                5 => '+',
                6 => '*',
                7 => '#',
                _ => '@',
            });
        }
        out.push_str(&format!(
            "| {:.0}\n",
            pts.last().map(|p| p.1).unwrap_or(0.0)
        ));
    }
    out
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[fig7] {hours} simulated hours × {reps} reps per curve");

    let fuzzers = [
        BaselineKind::Eof,
        BaselineKind::EofNf,
        BaselineKind::Tardis,
        BaselineKind::Gustave,
    ];
    // Assemble the full OS × fuzzer grid up front and fan the whole
    // figure out as one fleet batch: with EOF_JOBS workers the slowest
    // cell bounds the wall clock, not the sum of all cells.
    let mut cells = Vec::new();
    let mut bases = Vec::new();
    for os in OsKind::ALL {
        for kind in fuzzers {
            let Some(mut cfg) = kind.full_system_config(os, 42) else {
                continue;
            };
            cfg.budget_hours = hours;
            cells.push((os, kind));
            bases.push(cfg);
        }
    }
    let mut per_base = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    let mut text = String::new();
    for os in OsKind::ALL {
        let mut series = Vec::new();
        for kind in fuzzers {
            if !cells.contains(&(os, kind)) {
                continue;
            }
            let results = per_base.next().expect("one result set per cell");
            let mut labelled = curve_rows(kind.display(), &results);
            // Extract (hours, mean) for the ASCII plot.
            let pts: Vec<(f64, f64)> = labelled
                .iter()
                .map(|r| (r[1].parse().unwrap_or(0.0), r[2].parse().unwrap_or(0.0)))
                .collect();
            series.push((kind.display().to_string(), pts));
            for r in &mut labelled {
                r.insert(0, os.display().to_string());
            }
            rows.extend(labelled);
            eprintln!("  {} / {} done", os.display(), kind.display());
        }
        text.push_str(&ascii_plot(
            &format!(
                "Figure 7 ({}): branch coverage over {hours} simulated hours",
                os.display()
            ),
            &series,
        ));
    }
    let headers = ["os", "fuzzer", "hours", "mean", "min", "max"];
    eof_bench::write_outputs("fig7", &text, &headers, &rows);
}
