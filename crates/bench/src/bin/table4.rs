//! Table 4: application-level coverage of EOF vs GDBFuzz vs SHIFT on the
//! HTTP server and JSON modules, running on hardware with instrumentation
//! strictly confined to those two modules.

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, fmt1, fmt_impr, run_reps};
use eof_core::CampaignResult;

/// Mean branches within one module across runs, using the edge totals of
/// module-confined instrumentation (the whole map IS the two modules;
/// the per-module split is recovered from each campaign's history by
/// running the two single-module configurations).
fn mean_for_module(kind: BaselineKind, module: &str, hours: f64, reps: usize) -> f64 {
    let mut cfg = kind.app_level_config(42).expect("app-level participant");
    cfg.budget_hours = hours;
    cfg.instrument = eof_coverage::InstrumentMode::Modules(vec![module.to_string()]);
    cfg.module_filter = Some(vec![module.to_string()]);
    let results: Vec<CampaignResult> = run_reps(&cfg, reps);
    eof_bench::mean_branches(&results)
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[table4] {hours} simulated hours × {reps} reps per cell");

    let fuzzers = [BaselineKind::Eof, BaselineKind::GdbFuzz, BaselineKind::Shift];
    let mut means = Vec::new();
    for kind in fuzzers {
        let http = mean_for_module(kind, "http", hours, reps);
        let json = mean_for_module(kind, "json", hours, reps);
        eprintln!("  {}: http {http:.1}, json {json:.1}", kind.display());
        means.push((kind, http, json));
    }
    let (_, eof_http, eof_json) = means[0];
    let eof_avg = (eof_http + eof_json) / 2.0;
    let mut rows = Vec::new();
    for (kind, http, json) in &means {
        let avg = (http + json) / 2.0;
        if *kind == BaselineKind::Eof {
            rows.push(vec![
                kind.display().to_string(),
                fmt1(*http),
                fmt1(*json),
                fmt1(avg),
            ]);
        } else {
            rows.push(vec![
                kind.display().to_string(),
                fmt_impr(eof_http, *http),
                fmt_impr(eof_json, *json),
                fmt_impr(eof_avg, avg),
            ]);
        }
    }
    let headers = ["Fuzzers", "HTTP Server", "JSON", "Average"];
    eof_bench::emit("table4", &headers, rows);
}
