//! Table 4: application-level coverage of EOF vs GDBFuzz vs SHIFT on the
//! HTTP server and JSON modules, running on hardware with instrumentation
//! strictly confined to those two modules.

use eof_baselines::BaselineKind;
use eof_bench::{bench_hours, bench_reps, fmt1, fmt_impr, run_config_set};
use eof_core::FuzzerConfig;

/// Configuration for one (fuzzer, module) cell: instrumentation strictly
/// confined to the module, matching the paper's hardware setup (the whole
/// map IS the module; the per-module split is recovered by running the
/// two single-module configurations).
fn module_config(kind: BaselineKind, module: &str, hours: f64) -> FuzzerConfig {
    let mut cfg = kind.app_level_config(42).expect("app-level participant");
    cfg.budget_hours = hours;
    cfg.instrument = eof_coverage::InstrumentMode::Modules(vec![module.to_string()]);
    cfg.module_filter = Some(vec![module.to_string()]);
    cfg
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[table4] {hours} simulated hours × {reps} reps per cell");

    // 3 fuzzers × 2 modules = 6 cells, submitted as one fleet batch.
    let fuzzers = [
        BaselineKind::Eof,
        BaselineKind::GdbFuzz,
        BaselineKind::Shift,
    ];
    let bases: Vec<FuzzerConfig> = fuzzers
        .iter()
        .flat_map(|&kind| ["http", "json"].map(|module| module_config(kind, module, hours)))
        .collect();
    let mut per_cell = run_config_set(&bases, reps).into_iter();

    let mut means = Vec::new();
    for kind in fuzzers {
        let http = eof_bench::mean_branches(&per_cell.next().expect("http cell"));
        let json = eof_bench::mean_branches(&per_cell.next().expect("json cell"));
        eprintln!("  {}: http {http:.1}, json {json:.1}", kind.display());
        means.push((kind, http, json));
    }
    let (_, eof_http, eof_json) = means[0];
    let eof_avg = (eof_http + eof_json) / 2.0;
    let mut rows = Vec::new();
    for (kind, http, json) in &means {
        let avg = (http + json) / 2.0;
        if *kind == BaselineKind::Eof {
            rows.push(vec![
                kind.display().to_string(),
                fmt1(*http),
                fmt1(*json),
                fmt1(avg),
            ]);
        } else {
            rows.push(vec![
                kind.display().to_string(),
                fmt_impr(eof_http, *http),
                fmt_impr(eof_json, *json),
                fmt_impr(eof_avg, avg),
            ]);
        }
    }
    let headers = ["Fuzzers", "HTTP Server", "JSON", "Average"];
    eof_bench::emit("table4", &headers, rows);
}
