//! §5.5.2: instrumentation execution overhead — payloads executed within
//! 10 simulated minutes, with and without instrumentation, per OS.

use eof_core::FuzzerConfig;
use eof_coverage::InstrumentMode;
use eof_rtos::OsKind;

/// Simulated minutes per measurement window (the paper uses 10).
const WINDOW_MIN: f64 = 10.0;

fn window_config(os: OsKind, instrument: InstrumentMode, seed: u64) -> FuzzerConfig {
    let mut cfg = FuzzerConfig::eof(os, seed);
    cfg.instrument = instrument;
    cfg.budget_hours = WINDOW_MIN / 60.0;
    cfg.snapshot_hours = cfg.budget_hours;
    cfg
}

fn main() {
    let reps = eof_bench::bench_reps() as u64;
    let paper: &[(OsKind, f64)] = &[
        (OsKind::NuttX, 30.82),
        (OsKind::RtThread, 15.99),
        (OsKind::Zephyr, 24.32),
        (OsKind::FreeRtos, 24.44),
    ];
    // This measurement keeps its historical `42 + rep` seed schedule, so
    // the batch is laid out explicitly rather than via `rep_configs`: per
    // OS, `reps` plain windows followed by `reps` instrumented ones — all
    // submitted as one fleet batch.
    let mut configs = Vec::new();
    for &(os, _) in paper {
        for rep in 0..reps {
            configs.push(window_config(os, InstrumentMode::None, 42 + rep));
        }
        for rep in 0..reps {
            configs.push(window_config(os, InstrumentMode::Full, 42 + rep));
        }
    }
    let mut results = eof_bench::run_fleet(configs).into_iter();

    let mut rows = Vec::new();
    let mut sum = 0.0;
    for &(os, paper_pct) in paper {
        let plain: u64 = results
            .by_ref()
            .take(reps as usize)
            .map(|r| r.stats.execs)
            .sum();
        let inst: u64 = results
            .by_ref()
            .take(reps as usize)
            .map(|r| r.stats.execs)
            .sum();
        let plain = plain as f64 / reps as f64;
        let inst = inst as f64 / reps as f64;
        let pct = (plain - inst) / plain * 100.0;
        sum += pct;
        eprintln!("  {}: {plain:.1} -> {inst:.1}", os.display());
        rows.push(vec![
            os.display().to_string(),
            format!("{plain:.1}"),
            format!("{inst:.1}"),
            format!("{pct:.2}%"),
            format!("{paper_pct:.2}%"),
        ]);
    }
    rows.push(vec![
        "Average".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}%", sum / paper.len() as f64),
        "23.39%".to_string(),
    ]);
    let headers = [
        "Target OS",
        "Payloads/10min (plain)",
        "Payloads/10min (instrumented)",
        "Slowdown",
        "Paper",
    ];
    eof_bench::emit("overhead_exec", &headers, rows);
}
