//! Ablation: API-aware generation vs random byte buffers, inside EOF
//! (same transport, monitors and recovery — only the input model moves).

use eof_bench::{bench_hours, bench_reps, mean_branches, run_config_set};
use eof_core::config::GenerationMode;
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    // Both arms of all five OSs fan out as one fleet batch.
    let bases: Vec<FuzzerConfig> = OsKind::ALL
        .into_iter()
        .flat_map(|os| {
            let mut api_cfg = FuzzerConfig::eof(os, 42);
            api_cfg.budget_hours = hours;
            let mut rnd_cfg = api_cfg.clone();
            rnd_cfg.gen_mode = GenerationMode::RandomBytes;
            [api_cfg, rnd_cfg]
        })
        .collect();
    let mut per_arm = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    for os in OsKind::ALL {
        let api = mean_branches(&per_arm.next().expect("api arm"));
        let rnd = mean_branches(&per_arm.next().expect("random arm"));
        eprintln!("  {}: api {api:.1} vs random {rnd:.1}", os.display());
        rows.push(vec![
            os.display().to_string(),
            format!("{api:.1}"),
            format!("{rnd:.1}"),
            format!("{:+.1}%", (api - rnd) / rnd.max(1.0) * 100.0),
        ]);
    }
    let headers = ["Target OS", "API-aware", "Random bytes", "API-aware gain"];
    eof_bench::emit("ablate_inputs", &headers, rows);
}
