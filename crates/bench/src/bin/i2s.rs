//! Redqueen/I2S A/B: the cmplog time-to-bug experiment. Same OS, same
//! seed schedule, same MMIO plane, same simulated budget — the only
//! variable is the comparison channel (`FuzzerConfig::eof_cmplog` vs
//! the plain driver `FuzzerConfig::eof_driver`). The magic-guarded
//! bugs sit behind exact 16/32-bit equality checks that random
//! mutation cannot thread at any realistic budget, so:
//!
//! * the pure arm reporting a magic bug is an A/B-control violation;
//! * the cmplog arm missing a magic bug on its seeded OS means the
//!   observed-operand splice isn't earning its keep;
//! * both arms run on every OS, so unseeded OSs double as the check
//!   that the channel doesn't manufacture crashes.
//!
//! Writes `results/i2s.{txt,csv}` and the machine-readable verdict
//! `BENCH_i2s.json`. Wire mode follows `EOF_VECTORED`, so the nightly
//! matrix covers pure/cmplog × scalar/vectored with this one binary.
//!
//! Inspired by the Fig-7-style growth comparison: alongside the
//! verdicts, the mean time-to-bug (simulated hours at first attributed
//! crash) quantifies *how much faster* the channel gets there.

use eof_bench::{bench_hours, bench_reps, fmt1, run_config_set};
use eof_core::{CampaignResult, FuzzerConfig, MutOp};
use eof_rtos::bugs::magic_guarded_bugs;
use eof_rtos::OsKind;
use std::collections::BTreeSet;

fn mean(results: &[CampaignResult], f: impl Fn(&CampaignResult) -> f64) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(f).sum::<f64>() / results.len() as f64
}

/// Distinct magic-bug numbers found across a cell's repetitions.
fn magic_found(results: &[CampaignResult], magic: &BTreeSet<u8>) -> BTreeSet<u8> {
    results
        .iter()
        .flat_map(|r| r.bugs.iter())
        .map(|b| b.number())
        .filter(|n| magic.contains(n))
        .collect()
}

/// Mean simulated hours to the first crash attributed to `bug`, over
/// the repetitions that found it (`None` when none did).
fn time_to_bug(results: &[CampaignResult], bug: u8) -> Option<f64> {
    let hits: Vec<f64> = results
        .iter()
        .filter_map(|r| {
            r.crashes
                .iter()
                .filter(|c| c.bug.map(|b| b.number()) == Some(bug))
                .map(|c| c.at_hours)
                .fold(None, |best: Option<f64>, h| {
                    Some(best.map_or(h, |b| b.min(h)))
                })
        })
        .collect();
    (!hits.is_empty()).then(|| hits.iter().sum::<f64>() / hits.len() as f64)
}

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    eprintln!("[i2s] {hours} simulated hours × {reps} reps per cell");

    // One pure-driver and one cmplog cell per OS, fanned out as a
    // single fleet batch so the A/B shares the worker pool.
    let mut bases = Vec::new();
    for os in OsKind::ALL {
        let mut pure = FuzzerConfig::eof_driver(os, 42);
        pure.budget_hours = hours;
        bases.push(pure);
        let mut cmplog = FuzzerConfig::eof_cmplog(os, 42);
        cmplog.budget_hours = hours;
        bases.push(cmplog);
    }
    let mut per_base = run_config_set(&bases, reps).into_iter();

    let magic: BTreeSet<u8> = magic_guarded_bugs().iter().map(|b| b.number()).collect();
    let seeded: BTreeSet<OsKind> = magic_guarded_bugs().iter().map(|b| b.info().os).collect();
    let mut rows = Vec::new();
    let mut cells_json = Vec::new();
    let mut violations = Vec::new();
    let mut text = String::from(
        "Cmplog (I2S operand splice) vs pure driver mutation, same seeds and simulated budget\n",
    );
    for os in OsKind::ALL {
        let pure = per_base.next().expect("pure cell");
        let cmplog = per_base.next().expect("cmplog cell");
        let (pe, ce) = (
            mean(&pure, |r| r.stats.execs as f64),
            mean(&cmplog, |r| r.stats.execs as f64),
        );
        let (pb, cb) = (
            mean(&pure, |r| r.branches as f64),
            mean(&cmplog, |r| r.branches as f64),
        );
        let pure_magic = magic_found(&pure, &magic);
        let found = magic_found(&cmplog, &magic);
        let expected: BTreeSet<u8> = magic_guarded_bugs()
            .iter()
            .filter(|b| b.info().os == os)
            .map(|b| b.number())
            .collect();
        if !pure_magic.is_empty() {
            violations.push(format!(
                "{}: pure driver campaign reached magic bugs {pure_magic:?} — \
                 the A/B control is broken",
                os.display()
            ));
        }
        for &bug in &expected {
            if !found.contains(&bug) {
                violations.push(format!(
                    "{}: cmplog campaign missed magic bug #{bug} in {hours}h × {reps} reps",
                    os.display()
                ));
            }
        }
        if !seeded.contains(&os) && !found.is_empty() {
            violations.push(format!(
                "{}: unseeded OS reported magic bugs {found:?}",
                os.display()
            ));
        }
        let ttb: Vec<String> = found
            .iter()
            .filter_map(|&bug| time_to_bug(&cmplog, bug).map(|h| format!("#{bug}@{h:.3}h")))
            .collect();
        let scheduled = mean(&cmplog, |r| r.stats.op_execs.iter().sum::<u64>() as f64);
        let i2s_share = mean(&cmplog, |r| {
            let total: u64 = r.stats.op_execs.iter().sum();
            if total == 0 {
                return 0.0;
            }
            let i2s = total - r.stats.op_execs[MutOp::Baseline.index()];
            i2s as f64 / total as f64
        });
        text.push_str(&format!(
            "  {:10} execs {:>7} -> {:>7}   branches {:>6} -> {:>6}   magic bugs: {}\n",
            os.display(),
            fmt1(pe),
            fmt1(ce),
            fmt1(pb),
            fmt1(cb),
            if ttb.is_empty() {
                "none".to_string()
            } else {
                ttb.join(" ")
            },
        ));
        rows.push(vec![
            os.display().to_string(),
            fmt1(pe),
            fmt1(ce),
            fmt1(pb),
            fmt1(cb),
            found.len().to_string(),
            ttb.join(" "),
        ]);
        let ttb_json: Vec<String> = found
            .iter()
            .filter_map(|&bug| {
                time_to_bug(&cmplog, bug).map(|h| format!("{{\"bug\": {bug}, \"hours\": {h:.4}}}"))
            })
            .collect();
        cells_json.push(format!(
            "{{\"os\": \"{}\", \"seeded\": {}, \"execs_pure\": {pe:.1}, \"execs_cmplog\": {ce:.1}, \
             \"branches_pure\": {pb:.1}, \"branches_cmplog\": {cb:.1}, \
             \"magic_bugs_pure\": {}, \"magic_bugs_cmplog\": [{}], \
             \"scheduled_mutants\": {scheduled:.1}, \"i2s_share\": {i2s_share:.3}, \
             \"time_to_bug\": [{}]}}",
            os.display(),
            seeded.contains(&os),
            pure_magic.len(),
            found
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            ttb_json.join(", "),
        ));
        eprintln!("  {} done", os.display());
    }
    let headers = [
        "os",
        "execs_pure",
        "execs_cmplog",
        "branches_pure",
        "branches_cmplog",
        "magic_bug_count",
        "time_to_bug",
    ];
    eof_bench::write_outputs("i2s", &text, &headers, &rows);

    let pass = violations.is_empty();
    let json = format!(
        "{{\n  \"workload\": {{\"reps\": {reps}, \"hours_per_campaign\": {hours}}},\n  \
         \"verdict\": \"{}\",\n  \"violations\": [{}],\n  \"cells\": [\n    {}\n  ]\n}}\n",
        if pass { "PASS" } else { "FAIL" },
        violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
        cells_json.join(",\n    "),
    );
    std::fs::write("BENCH_i2s.json", &json).expect("write BENCH_i2s.json");
    println!("[written BENCH_i2s.json]");
    if !pass {
        for v in &violations {
            eprintln!("[i2s] VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    println!("[i2s] cmplog time-to-bug gate PASSED");
}
