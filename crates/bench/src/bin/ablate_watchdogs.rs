//! Ablation: EOF's watchdog set (connection timeout + PC stall) vs a
//! Tardis-style timeout-only liveness check — measuring stalls recovered
//! and throughput retained on the stall-heavy targets.

use eof_bench::{bench_hours, bench_reps, run_config_set};
use eof_core::config::{DetectionConfig, RecoveryConfig};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    let oses = [OsKind::Zephyr, OsKind::NuttX, OsKind::RtThread];
    let labels = ["watchdogs", "timeout-15s"];
    // Both liveness arms of all three OSs fan out as one fleet batch.
    let bases: Vec<FuzzerConfig> = oses
        .into_iter()
        .flat_map(|os| {
            let mut wd_cfg = FuzzerConfig::eof(os, 42);
            wd_cfg.budget_hours = hours;
            let mut to_cfg = wd_cfg.clone();
            to_cfg.detection = DetectionConfig {
                exception_breakpoints: true,
                log_monitor: true,
                timeout_only_secs: Some(15),
            };
            to_cfg.recovery = RecoveryConfig {
                stall_watchdog: false,
                reflash: true,
                power_liveness: false,
            };
            [wd_cfg, to_cfg]
        })
        .collect();
    let mut per_arm = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    for os in oses {
        for label in labels {
            let rs = per_arm.next().expect("one result set per arm");
            let execs: u64 = rs.iter().map(|r| r.stats.execs).sum::<u64>() / reps as u64;
            let stalls: u64 = rs.iter().map(|r| r.stats.stalls).sum::<u64>() / reps as u64;
            let branches = eof_bench::mean_branches(&rs);
            eprintln!(
                "  {} / {label}: {execs} execs, {stalls} stalls",
                os.display()
            );
            rows.push(vec![
                os.display().to_string(),
                label.to_string(),
                execs.to_string(),
                stalls.to_string(),
                format!("{branches:.1}"),
            ]);
        }
    }
    let headers = [
        "Target OS",
        "Liveness",
        "Execs",
        "Stalls handled",
        "Branches",
    ];
    eof_bench::emit("ablate_watchdogs", &headers, rows);
}
