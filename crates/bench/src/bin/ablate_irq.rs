//! Ablation of the §6 extension: peripheral-event injection (GPIO edges,
//! serial RX, auxiliary ticks) driving interrupt paths the headline EOF
//! configuration cannot reach.

use eof_bench::{bench_hours, bench_reps, mean_branches, run_reps};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    let mut rows = Vec::new();
    for os in [OsKind::FreeRtos, OsKind::Zephyr] {
        let mut off_cfg = FuzzerConfig::eof(os, 42);
        off_cfg.budget_hours = hours;
        let mut on_cfg = off_cfg.clone();
        on_cfg.peripheral_events = true;
        let off = mean_branches(&run_reps(&off_cfg, reps));
        let on = mean_branches(&run_reps(&on_cfg, reps));
        eprintln!("  {}: {off:.1} -> {on:.1}", os.display());
        rows.push(vec![
            os.display().to_string(),
            format!("{off:.1}"),
            format!("{on:.1}"),
            format!("{:+.1}%", (on - off) / off.max(1.0) * 100.0),
        ]);
    }
    let headers = [
        "Target OS",
        "Branches (no events)",
        "Branches (events injected)",
        "ISR-path gain",
    ];
    eof_bench::emit("ablate_irq", &headers, rows);
}
