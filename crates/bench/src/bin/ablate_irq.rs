//! Ablation of the §6 extension: peripheral-event injection (GPIO edges,
//! serial RX, auxiliary ticks) driving interrupt paths the headline EOF
//! configuration cannot reach.

use eof_bench::{bench_hours, bench_reps, mean_branches, run_config_set};
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn main() {
    let hours = bench_hours();
    let reps = bench_reps();
    let oses = [OsKind::FreeRtos, OsKind::Zephyr];
    // Both arms of both OSs fan out as one fleet batch.
    let bases: Vec<FuzzerConfig> = oses
        .into_iter()
        .flat_map(|os| {
            let mut off_cfg = FuzzerConfig::eof(os, 42);
            off_cfg.budget_hours = hours;
            let mut on_cfg = off_cfg.clone();
            on_cfg.peripheral_events = true;
            [off_cfg, on_cfg]
        })
        .collect();
    let mut per_arm = run_config_set(&bases, reps).into_iter();

    let mut rows = Vec::new();
    for os in oses {
        let off = mean_branches(&per_arm.next().expect("events-off arm"));
        let on = mean_branches(&per_arm.next().expect("events-on arm"));
        eprintln!("  {}: {off:.1} -> {on:.1}", os.display());
        rows.push(vec![
            os.display().to_string(),
            format!("{off:.1}"),
            format!("{on:.1}"),
            format!("{:+.1}%", (on - off) / off.max(1.0) * 100.0),
        ]);
    }
    let headers = [
        "Target OS",
        "Branches (no events)",
        "Branches (events injected)",
        "ISR-path gain",
    ];
    eof_bench::emit("ablate_irq", &headers, rows);
}
