//! Calibration probe: per-exec cost, throughput and discovery rates.
//!
//! Not one of the paper's artefacts — a tuning aid that prints what a
//! campaign of the given length does, so the time model can be checked
//! against the paper's §5.5.2 throughput numbers.

use eof_baselines::BaselineKind;
use eof_core::FuzzerConfig;
use eof_rtos::OsKind;

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    for os in OsKind::ALL {
        let mut cfg = FuzzerConfig::eof(os, 42);
        cfg.budget_hours = hours;
        let wall = std::time::Instant::now();
        let r = eof_core::run_campaign(cfg);
        let wall = wall.elapsed();
        eof_bench::collect_telemetry(std::slice::from_ref(&r));
        let execs_per_10min = r.stats.execs as f64 / (hours * 6.0);
        let bug_nums: Vec<u8> = r.bugs.iter().map(|b| b.number()).collect();
        println!(
            "{:9} {:4.1}h | execs {:7} ({:7.1}/10min) | branches {:5} | bugs {:?} | stalls {:4} | restores {:4} | wall {:5.2}s",
            os.display(),
            hours,
            r.stats.execs,
            execs_per_10min,
            r.branches,
            bug_nums,
            r.stats.stalls,
            r.stats.restorations,
            wall.as_secs_f64(),
        );
    }
    // One baseline for contrast.
    let mut cfg = BaselineKind::Tardis
        .full_system_config(OsKind::Zephyr, 42)
        .unwrap();
    cfg.budget_hours = hours;
    let r = eof_core::run_campaign(cfg);
    eof_bench::collect_telemetry(std::slice::from_ref(&r));
    println!(
        "Tardis/Zephyr {hours:.1}h | execs {} | branches {} | bugs {}",
        r.stats.execs,
        r.branches,
        r.bugs.len()
    );
    let _ = eof_bench::export_telemetry("calibrate");
}
