//! `eof-bench` — the evaluation harness.
//!
//! One binary per table and figure of the paper (run them with
//! `cargo run --release -p eof-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — supported-target matrix |
//! | `table2` | Table 2 — previously-unknown bugs found |
//! | `table3` | Table 3 — full-system coverage comparison |
//! | `table4` | Table 4 — application-level coverage comparison |
//! | `fig7` | Figure 7 — full-system coverage growth curves |
//! | `fig8` | Figure 8 — application-level coverage growth curves |
//! | `overhead_mem` | §5.5.1 — instrumentation memory overhead |
//! | `overhead_exec` | §5.5.2 — instrumentation execution overhead |
//! | `ablate_inputs` | ablation: API-aware vs random-byte generation |
//! | `ablate_watchdogs` | ablation: watchdog set vs timeout-only |
//! | `ablate_validation` | ablation: spec validation gate on/off |
//! | `ablate_sched` | ablation: adjacency scheduling vs uniform |
//!
//! Every binary prints the paper-shaped table to stdout and writes
//! machine-readable CSV into `results/`. Campaign scale is controlled by
//! the `EOF_BENCH_HOURS` and `EOF_BENCH_REPS` environment variables
//! (defaults: the paper's 24 simulated hours × 5 repetitions); campaign
//! *parallelism* by `EOF_JOBS` (default: the host's available cores —
//! every campaign batch fans out over [`eof_core::FleetRunner`]).

use eof_core::report::{csv, curve_points_from_runs, text_table};
use eof_core::{CampaignResult, FleetRunner, FuzzerConfig};
use eof_telemetry as tel;
use std::path::Path;
use std::sync::Mutex;

/// Simulated hours per campaign (default: the paper's 24).
pub fn bench_hours() -> f64 {
    std::env::var("EOF_BENCH_HOURS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24.0)
}

/// Repetitions per configuration (default: the paper's 5).
pub fn bench_reps() -> usize {
    std::env::var("EOF_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// The `rep`'th variation of a base configuration. The seed schedule is
/// part of the reproduction's determinism contract — identical inputs
/// must reproduce identical campaigns across serial and fleet runs.
pub fn rep_config(base: &FuzzerConfig, rep: usize) -> FuzzerConfig {
    let mut cfg = base.clone();
    cfg.seed = base.seed.wrapping_add(rep as u64 * 0x9e37);
    cfg.spec_noise = cfg.spec_noise.map(|n| n.wrapping_add(rep as u64));
    cfg
}

/// All `reps` variations of a base configuration, in repetition order.
pub fn rep_configs(base: &FuzzerConfig, reps: usize) -> Vec<FuzzerConfig> {
    (0..reps).map(|rep| rep_config(base, rep)).collect()
}

/// Run a batch of campaigns across the fleet (`EOF_JOBS` workers),
/// results in submission order. A panicking campaign aborts the bench —
/// the tables must never silently drop cells.
pub fn run_fleet(configs: Vec<FuzzerConfig>) -> Vec<CampaignResult> {
    let results: Vec<CampaignResult> = FleetRunner::from_env()
        .run(configs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect();
    collect_telemetry(&results);
    results
}

/// Per-campaign telemetry registries collected from every batch the
/// bench helpers ran in this process, in submission order (batches in
/// call order). Empty unless `EOF_TRACE` recording is on, so the
/// accumulator costs nothing at default verbosity.
static TELEMETRY_PARTS: Mutex<Vec<tel::Registry>> = Mutex::new(Vec::new());

/// Fold a finished batch's telemetry (submission order) into the
/// process-wide accumulator behind [`export_telemetry`]. Called by
/// [`run_fleet`]; binaries that run campaigns outside the fleet helpers
/// (chaos, calibrate) call it themselves.
pub fn collect_telemetry(results: &[CampaignResult]) {
    let registries: Vec<tel::Registry> =
        results.iter().filter_map(|r| r.telemetry.clone()).collect();
    if !registries.is_empty() {
        TELEMETRY_PARTS.lock().unwrap().extend(registries);
    }
}

/// Fold registries recorded outside a campaign — e.g. the replay gate's
/// per-store recorders — into the accumulator behind
/// [`export_telemetry`].
pub fn collect_registries(registries: Vec<tel::Registry>) {
    if !registries.is_empty() {
        TELEMETRY_PARTS.lock().unwrap().extend(registries);
    }
}

/// Everything collected so far, merged in collection order. `None` when
/// no campaign recorded telemetry (`EOF_TRACE` off).
pub fn merged_telemetry() -> Option<tel::Merged> {
    let parts = TELEMETRY_PARTS.lock().unwrap();
    (!parts.is_empty()).then(|| tel::Merged::from_parts(parts.clone()))
}

/// Write the bench's telemetry artifact set into `results/` — the
/// Chrome/Perfetto trace, the JSONL event journal, the Prometheus text
/// summary, and the deterministic summary JSON — and return the
/// [`tel::TelemetrySummary`] for embedding in `BENCH_*.json` files.
/// No-op returning `None` when nothing was recorded.
pub fn export_telemetry(name: &str) -> Option<tel::TelemetrySummary> {
    let merged = merged_telemetry()?;
    let dir = Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(
        dir.join(format!("{name}.trace.json")),
        tel::chrome_trace(&merged),
    );
    let _ = std::fs::write(
        dir.join(format!("{name}.telemetry.jsonl")),
        tel::jsonl_journal(&merged),
    );
    let _ = std::fs::write(
        dir.join(format!("{name}.telemetry.prom")),
        tel::prometheus_text(&merged),
    );
    let summary = merged.summary();
    let _ = std::fs::write(
        dir.join(format!("{name}.telemetry.json")),
        summary.to_json(),
    );
    eprintln!(
        "[{name}] telemetry: {} campaign(s) merged -> results/{name}.trace.json + .telemetry.{{json,jsonl,prom}}",
        merged.parts.len()
    );
    Some(summary)
}

/// Run `reps` repetitions of a configuration with distinct seeds.
pub fn run_reps(base: &FuzzerConfig, reps: usize) -> Vec<CampaignResult> {
    run_fleet(rep_configs(base, reps))
}

/// Run several bases × `reps` as ONE fleet batch — the whole table fans
/// out at once instead of filling cell by cell — and chunk the results
/// back per base, each in repetition order.
pub fn run_config_set(bases: &[FuzzerConfig], reps: usize) -> Vec<Vec<CampaignResult>> {
    let all: Vec<FuzzerConfig> = bases.iter().flat_map(|b| rep_configs(b, reps)).collect();
    let mut flat = run_fleet(all).into_iter();
    bases
        .iter()
        .map(|_| flat.by_ref().take(reps).collect())
        .collect()
}

/// One-line artifact-cache summary for bench logs.
pub fn cache_report() -> String {
    let s = eof_core::cache_stats();
    format!(
        "artifact cache: {} hits / {} misses ({:.0}% hit rate; images {}h/{}m, specs {}h/{}m)",
        s.hits(),
        s.misses(),
        s.hit_rate() * 100.0,
        s.image_hits,
        s.image_misses,
        s.spec_hits,
        s.spec_misses,
    )
}

/// Mean branches across repetitions.
pub fn mean_branches(results: &[CampaignResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.branches as f64).sum::<f64>() / results.len() as f64
}

/// Write a text report and its CSV twin into `results/`, plus the
/// telemetry artifact set when `EOF_TRACE` recording was on.
pub fn write_outputs(name: &str, text: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join(format!("{name}.txt")), text);
    let _ = std::fs::write(dir.join(format!("{name}.csv")), csv(headers, rows));
    println!("{text}");
    println!("[written results/{name}.txt and results/{name}.csv]");
    eprintln!("[{name}] {}", cache_report());
    let _ = export_telemetry(name);
}

/// Format a mean with the paper's one-decimal style.
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format an improvement percentage the way the paper parenthesises it.
pub fn fmt_impr(eof: f64, other: f64) -> String {
    if other == 0.0 {
        return "-".to_string();
    }
    format!("{:.1} (+{:.2}%)", other, (eof - other) / other * 100.0)
}

/// Curve rows (hours, mean, min, max) for a set of runs of one fuzzer.
pub fn curve_rows(label: &str, runs: &[CampaignResult]) -> Vec<Vec<String>> {
    let histories: Vec<&[eof_coverage::Snapshot]> =
        runs.iter().map(|r| r.history.as_slice()).collect();
    curve_points_from_runs(&histories)
        .into_iter()
        .map(|p| {
            vec![
                label.to_string(),
                format!("{:.2}", p.hours),
                format!("{:.1}", p.mean),
                p.min.to_string(),
                p.max.to_string(),
            ]
        })
        .collect()
}

/// Convenience re-export for binaries.
pub use eof_core::report::text_table as table;

/// Assemble and print a named report (helper shared by binaries).
pub fn emit(name: &str, headers: &[&str], rows: Vec<Vec<String>>) {
    let text = text_table(headers, &rows);
    write_outputs(name, &text, headers, &rows);
}
