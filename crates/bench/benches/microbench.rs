//! Criterion micro-benchmarks of the per-component hot paths: prog
//! encoding, generation/mutation, kernel API dispatch, the JSON/HTTP
//! parsers, debug-port memory traffic, coverage drains, one full
//! fuzzing iteration, and the fleet runner (serial vs parallel batch).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eof_core::config::GenerationMode;
use eof_core::{FuzzerConfig, Generator};
use eof_coverage::{CovRegion, InstrumentMode};
use eof_dap::{DebugTransport, LinkConfig, Txn};
use eof_hal::{BoardCatalog, Bus, Endianness};
use eof_rtos::api::KArg;
use eof_rtos::ctx::{CovState, ExecCtx};
use eof_rtos::image::ImageProfile;
use eof_rtos::registry::make_kernel;
use eof_rtos::OsKind;
use eof_specgen::extract_spec_text;
use eof_speclang::parser::parse_spec;
use eof_speclang::wire::{decode_prog, encode_prog, WireOrder};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let spec = parse_spec(&extract_spec_text(OsKind::RtThread)).unwrap();
    let mut g = Generator::new(spec, 1, GenerationMode::ApiAware, 8);
    let table = eof_agent::api_table_of(OsKind::RtThread);
    let prog = g.generate();
    let bytes = encode_prog(&prog, &table, WireOrder::Little).unwrap();
    c.bench_function("wire/encode_prog", |b| {
        b.iter(|| encode_prog(black_box(&prog), &table, WireOrder::Little).unwrap())
    });
    c.bench_function("wire/decode_prog", |b| {
        b.iter(|| decode_prog(black_box(&bytes), &table, WireOrder::Little).unwrap())
    });
}

fn bench_generator(c: &mut Criterion) {
    let spec = parse_spec(&extract_spec_text(OsKind::NuttX)).unwrap();
    let mut g = Generator::new(spec.clone(), 2, GenerationMode::ApiAware, 8);
    c.bench_function("gen/generate", |b| b.iter(|| black_box(g.generate())));
    let seed_prog = g.generate();
    c.bench_function("gen/mutate", |b| b.iter(|| black_box(g.mutate(&seed_prog))));
}

fn bench_kernel_dispatch(c: &mut Criterion) {
    let mut kernel = make_kernel(OsKind::Zephyr);
    let mut bus = Bus::new(0x4000_0000, 0x2_0000, Endianness::Little);
    let mut cov = CovState::uninstrumented();
    c.bench_function("kernel/invoke_sem_cycle", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&mut bus, &mut cov);
            let s = match kernel.invoke(&mut ctx, 14, &[KArg::Int(1), KArg::Int(2)]) {
                eof_rtos::api::InvokeResult::Ok(v) => v,
                _ => 0,
            };
            kernel.invoke(&mut ctx, 15, &[KArg::Int(s)]);
            kernel.invoke(&mut ctx, 16, &[KArg::Int(s)]);
            let mut ctx2 = ExecCtx::new(&mut bus, &mut cov);
            kernel.reset(&mut ctx2);
        })
    });
}

fn bench_parsers(c: &mut Criterion) {
    let mut bus = Bus::new(0x2000_0000, 0x1000, Endianness::Little);
    let mut cov = CovState::uninstrumented();
    let json = br#"{"a":[1,2,3],"b":{"c":"deep","d":[true,null]},"e":1.5e3}"#;
    c.bench_function("subsys/json_parse", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&mut bus, &mut cov);
            let _ = eof_rtos::subsys::json::parse(&mut ctx, "b::json::p", black_box(json));
        })
    });
    let http = b"POST /api/sensors?id=3 HTTP/1.1\r\nHost: dev\r\nContent-Length: 12\r\n\r\n";
    c.bench_function("subsys/http_parse", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&mut bus, &mut cov);
            let _ = eof_rtos::subsys::http::parse_request(&mut ctx, "b::http::p", black_box(http));
        })
    });
}

fn bench_debug_port(c: &mut Criterion) {
    let machine = eof_agent::boot_machine(
        BoardCatalog::qemu_virt_arm(),
        OsKind::Zephyr,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let mut t = DebugTransport::attach(machine, LinkConfig::default());
    let base = t.machine().board().ram_base;
    let buf = vec![0xa5u8; 256];
    c.bench_function("dap/write_mem_256B", |b| {
        b.iter(|| t.write_mem(base + 0x8000, black_box(&buf)).unwrap())
    });
    let mut out = vec![0u8; 256];
    c.bench_function("dap/read_mem_256B", |b| {
        b.iter(|| t.read_mem(base + 0x8000, &mut out).unwrap())
    });
    c.bench_function("dap/read_pc", |b| b.iter(|| t.read_pc().unwrap()));
}

fn bench_dap_txn(c: &mut Criterion) {
    // Vectored transaction layer vs the same ops issued scalar: one
    // breakpoint arm/disarm plus a coverage-header-sized read and two
    // counter resets — the executor's sync + drain shape.
    let machine = eof_agent::boot_machine(
        BoardCatalog::qemu_virt_arm(),
        OsKind::Zephyr,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let mut t = DebugTransport::attach(machine, LinkConfig::default());
    let base = t.machine().board().ram_base + 0x8000;
    let zero = [0u8; 4];
    c.bench_function("dap_txn/drain_shape_vectored", |b| {
        b.iter(|| {
            let mut txn = Txn::new();
            txn.read_mem(base, 12)
                .write_mem(base, &zero)
                .write_mem(base + 8, &zero);
            black_box(t.run_txn(&txn).unwrap())
        })
    });
    c.bench_function("dap_txn/drain_shape_scalar", |b| {
        b.iter(|| {
            let mut hdr = [0u8; 12];
            t.read_mem(base, &mut hdr).unwrap();
            t.write_mem(base, &zero).unwrap();
            t.write_mem(base + 8, &zero).unwrap();
            black_box(hdr)
        })
    });
    let ops: Vec<u32> = (0..8).map(|i| base + 0x100 + i * 16).collect();
    c.bench_function("dap_txn/breakpoints_8_vectored", |b| {
        b.iter(|| {
            let mut txn = Txn::new();
            for &addr in &ops {
                txn.set_breakpoint(addr);
            }
            for &addr in &ops {
                txn.clear_breakpoint(addr);
            }
            black_box(t.run_txn(&txn).unwrap())
        })
    });
    c.bench_function("dap_txn/breakpoints_8_scalar", |b| {
        b.iter(|| {
            for &addr in &ops {
                t.set_breakpoint(addr).unwrap();
            }
            for &addr in &ops {
                t.clear_breakpoint(addr).unwrap();
            }
        })
    });
}

fn bench_snapshot_restore(c: &mut Criterion) {
    // The recovery fast path against the rungs it displaces: snapshot
    // capture, dirty-page delta restore at varying dirty counts, and
    // the verify-reflash / full-reflash ladder rungs.
    let machine = eof_agent::boot_machine(
        BoardCatalog::qemu_virt_arm(),
        OsKind::Zephyr,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let image = eof_rtos::image::build_image(
        OsKind::Zephyr,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let kconfig = eof_monitors::parse_kconfig(&eof_monitors::render_kconfig(
        "arm",
        machine.flash().table(),
    ))
    .unwrap();
    let mut resto = eof_monitors::StateRestoration::from_kconfig(
        &kconfig,
        machine.board().flash_size,
        vec![("kernel".into(), image)],
    )
    .unwrap();
    let mut t = DebugTransport::attach(machine, LinkConfig::default());
    let _ = t.continue_until_halt(200);
    c.bench_function("snapshot_restore/capture", |b| {
        b.iter(|| black_box(resto.capture_snapshot(&mut t).unwrap()))
    });
    let base = t.machine().board().ram_base;
    for pages in [1usize, 16, 64] {
        resto.capture_snapshot(&mut t).unwrap();
        c.bench_function(&format!("snapshot_restore/delta_{pages}_pages"), |b| {
            b.iter(|| {
                for i in 0..pages {
                    t.write_mem(base + 0x4000 + (i * eof_hal::PAGE_SIZE) as u32, &[0xa5; 4])
                        .unwrap();
                }
                resto.snapshot_restore(&mut t).unwrap();
            })
        });
    }
    c.bench_function("snapshot_restore/verify_reflash", |b| {
        b.iter(|| resto.restore(&mut t).unwrap())
    });
    c.bench_function("snapshot_restore/full_reflash", |b| {
        b.iter(|| resto.restore_full(&mut t).unwrap())
    });
}

fn bench_coverage(c: &mut Criterion) {
    let mut bus = Bus::new(0x2000_0000, 0x1_0000, Endianness::Little);
    let region = CovRegion::new(0x2000_4000, 1024);
    region.init(&mut bus.ram, Endianness::Little).unwrap();
    let mut cov = CovState::instrumented(InstrumentMode::Full, region);
    c.bench_function("cov/hook_hit", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(&mut bus, &mut cov);
            ctx.cov_var("b::kernel::site", black_box(7));
            // Keep the ring from filling across iterations.
            ctx.cov.buffer_full = false;
            region.reset(&mut bus.ram, Endianness::Little).unwrap();
        })
    });
    let mut map = eof_coverage::CoverageMap::new();
    let edges: Vec<u64> = (0..64).map(|i| i * 7919).collect();
    c.bench_function("cov/map_merge_64", |b| {
        b.iter(|| black_box(map.merge(&edges)))
    });
}

fn bench_fuzz_iteration(c: &mut Criterion) {
    c.bench_function("fuzzer/one_iteration", |b| {
        b.iter_batched(
            || {
                let mut cfg = FuzzerConfig::eof(OsKind::Zephyr, 5);
                cfg.budget_hours = 100.0;
                let image = eof_rtos::image::build_image(cfg.os, cfg.profile, &cfg.instrument);
                let machine = eof_agent::boot_machine(
                    cfg.board.clone(),
                    cfg.os,
                    cfg.profile,
                    &cfg.instrument,
                );
                let kconfig = eof_monitors::parse_kconfig(&eof_monitors::render_kconfig(
                    "arm",
                    machine.flash().table(),
                ))
                .unwrap();
                let resto = eof_monitors::StateRestoration::from_kconfig(
                    &kconfig,
                    cfg.board.flash_size,
                    vec![("kernel".into(), image)],
                )
                .unwrap();
                let transport = DebugTransport::attach(machine, LinkConfig::default());
                let executor = eof_core::Executor::new(
                    transport,
                    cfg.clone(),
                    eof_agent::api_table_of(cfg.os),
                    resto,
                )
                .unwrap();
                let spec = parse_spec(&extract_spec_text(cfg.os)).unwrap();
                let generator = Generator::new(spec, cfg.seed, cfg.gen_mode, cfg.max_calls);
                eof_core::Fuzzer::new(cfg, generator, executor)
            },
            |mut fuzzer| {
                for _ in 0..16 {
                    fuzzer.step();
                }
                black_box(fuzzer.stats().execs)
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_fleet(c: &mut Criterion) {
    // Four short campaigns — the smallest batch where fan-out matters.
    let configs: Vec<FuzzerConfig> = [
        OsKind::NuttX,
        OsKind::Zephyr,
        OsKind::FreeRtos,
        OsKind::RtThread,
    ]
    .into_iter()
    .map(|os| {
        let mut cfg = FuzzerConfig::eof(os, 5);
        cfg.budget_hours = 0.02;
        cfg
    })
    .collect();
    let jobs = std::thread::available_parallelism().map_or(4, |n| n.get().min(4));
    c.bench_function("fleet/serial_4_campaigns", |b| {
        b.iter(|| black_box(eof_core::FleetRunner::new(1).run(configs.clone())))
    });
    c.bench_function("fleet/parallel_4_campaigns", |b| {
        b.iter(|| black_box(eof_core::FleetRunner::new(jobs).run(configs.clone())))
    });
}

criterion_group!(
    benches,
    bench_wire,
    bench_generator,
    bench_kernel_dispatch,
    bench_parsers,
    bench_debug_port,
    bench_dap_txn,
    bench_snapshot_restore,
    bench_coverage,
    bench_fuzz_iteration,
    bench_fleet
);
criterion_main!(benches);
