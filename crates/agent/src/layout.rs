//! The agent's memory and symbol layout.
//!
//! On real hardware these addresses come from the linker map; EOF's
//! adaptation step "analyzes the target embedded OS's memory layout"
//! (paper workflow step ①). Here the layout is derived from the board's
//! RAM window, and the code symbols sit in the flash-mapped region.

use eof_coverage::{CmpRegion, CovRegion};
use eof_hal::{BoardSpec, SymbolTable};

/// Where the agent's buffers and sync symbols live for one board.
#[derive(Debug, Clone)]
pub struct AgentLayout {
    /// Address of the u32 prog length, immediately followed by the prog
    /// bytes.
    pub prog_addr: u32,
    /// Maximum prog bytes the buffer accepts.
    pub prog_max: u32,
    /// The coverage buffer region.
    pub cov: CovRegion,
    /// The comparison-operand ring (cmplog channel). Always laid out —
    /// it boots disarmed (capacity word 0) and only a host that wants
    /// the channel arms it, so its presence costs nothing.
    pub cmp: CmpRegion,
    /// Code base for the agent's sync symbols.
    pub code_base: u32,
}

/// Symbol offsets from `code_base`.
const SYM_RESET: u32 = 0x0000;
const SYM_EXECUTOR_MAIN: u32 = 0x0100;
const SYM_READ_PROG: u32 = 0x0200;
const SYM_EXECUTE_ONE: u32 = 0x0300;
const SYM_KCMP_BUF_FULL: u32 = 0x0400;
const SYM_IDLE: u32 = 0x0500;
const SYM_ASSERT: u32 = 0x0e00;
const SYM_EXCEPTION: u32 = 0x0f00;

impl AgentLayout {
    /// Derive the layout for a board. Tiny-RAM parts (MSP430 class) get
    /// a compact layout with a smaller prog buffer and coverage ring.
    pub fn for_board(board: &BoardSpec) -> Self {
        let code_base = 0x0800_0000;
        if board.ram_size < 0x8000 {
            AgentLayout {
                prog_addr: board.ram_base + 0x200,
                prog_max: 1024,
                cov: CovRegion::new(board.ram_base + 0x800, 128),
                // Cov ends at +0xc0c; 16 records keep the tiny parts
                // under their RAM ceiling.
                cmp: CmpRegion::new(board.ram_base + 0xc80, 16),
                code_base,
            }
        } else {
            AgentLayout {
                prog_addr: board.ram_base + 0x1000,
                prog_max: 4096,
                cov: CovRegion::new(board.ram_base + 0x3000, 1024),
                // Cov ends at +0x500c.
                cmp: CmpRegion::new(board.ram_base + 0x5100, 128),
                code_base,
            }
        }
    }

    /// Build the symbol table for the agent plus the OS's fault symbols.
    pub fn symbols(&self, exception_symbol: &str, assert_symbol: &str) -> SymbolTable {
        let mut t = SymbolTable::new();
        t.insert("reset_vector", self.code_base + SYM_RESET);
        t.insert("executor_main", self.code_base + SYM_EXECUTOR_MAIN);
        t.insert("read_prog", self.code_base + SYM_READ_PROG);
        t.insert("execute_one", self.code_base + SYM_EXECUTE_ONE);
        t.insert("_kcmp_buf_full", self.code_base + SYM_KCMP_BUF_FULL);
        t.insert("idle_loop", self.code_base + SYM_IDLE);
        t.insert(assert_symbol, self.code_base + SYM_ASSERT);
        t.insert(exception_symbol, self.code_base + SYM_EXCEPTION);
        t
    }

    /// PC value of a named agent phase (used by the firmware stepper).
    pub fn pc_executor_main(&self) -> u32 {
        self.code_base + SYM_EXECUTOR_MAIN
    }

    /// PC at the prog decoder.
    pub fn pc_read_prog(&self) -> u32 {
        self.code_base + SYM_READ_PROG
    }

    /// PC at the per-call executor.
    pub fn pc_execute_one(&self) -> u32 {
        self.code_base + SYM_EXECUTE_ONE
    }

    /// PC at the coverage-buffer-full trap.
    pub fn pc_buf_full(&self) -> u32 {
        self.code_base + SYM_KCMP_BUF_FULL
    }

    /// PC in the idle loop.
    pub fn pc_idle(&self) -> u32 {
        self.code_base + SYM_IDLE
    }

    /// PC at the assertion reporter.
    pub fn pc_assert(&self) -> u32 {
        self.code_base + SYM_ASSERT
    }

    /// PC at the exception handler.
    pub fn pc_exception(&self) -> u32 {
        self.code_base + SYM_EXCEPTION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_hal::BoardCatalog;

    #[test]
    fn layout_fits_in_ram() {
        for board in BoardCatalog::all() {
            let l = AgentLayout::for_board(&board);
            let cov_end = l.cov.base + l.cov.footprint();
            assert!(
                l.cmp.base >= cov_end,
                "{}: cmp ring {:#x} overlaps coverage buffer ending {cov_end:#x}",
                board.name,
                l.cmp.base
            );
            let end = l.cmp.base + l.cmp.footprint();
            assert!(
                (end - board.ram_base) as usize <= board.ram_size,
                "{}: layout end {end:#x} past RAM",
                board.name
            );
            assert!(l.prog_addr + l.prog_max <= l.cov.base);
        }
    }

    #[test]
    fn symbols_cover_sync_points() {
        let l = AgentLayout::for_board(&BoardCatalog::esp32_devkit());
        let t = l.symbols("panic_handler", "vAssertCalled");
        for s in [
            "reset_vector",
            "executor_main",
            "read_prog",
            "execute_one",
            "_kcmp_buf_full",
            "panic_handler",
            "vAssertCalled",
        ] {
            assert!(t.lookup(s).is_some(), "{s}");
        }
        assert_eq!(t.lookup("executor_main"), Some(l.pc_executor_main()));
        assert_eq!(t.lookup("panic_handler"), Some(l.pc_exception()));
    }
}
