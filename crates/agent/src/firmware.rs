//! The agent's execution phase machine, implementing [`Firmware`].
//!
//! Each [`Firmware::step`] performs one bounded unit of agent work and
//! reports the resulting PC, so hardware breakpoints at the sync points
//! observe exactly the workflow of the paper's Figure 4: boot pauses at
//! `executor_main()`, the host writes a test case, `read_prog()`
//! deserialises it from RAM, `execute_one()` runs call after call, and
//! crashes surface at `handle_exception()` while a full coverage buffer
//! traps at `_kcmp_buf_full()` until the host drains it.

use crate::layout::AgentLayout;
use eof_hal::{Bus, FaultKind, Firmware, StepResult, SymbolTable};
use eof_rtos::api::{InvokeResult, KArg, KernelFault};
use eof_rtos::ctx::{CovState, ExecCtx};
use eof_rtos::kernel::Kernel;
use eof_speclang::prog::{ArgValue, Prog};
use eof_speclang::wire::{decode_prog, ApiTable, WireOrder};

/// Where the agent currently is in its loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Printing the boot banner (one line per step).
    Boot {
        /// Next banner line index.
        line: usize,
    },
    /// At the top of the fuzzing loop, waiting for a test case.
    ExecutorMain,
    /// Deserialising the prog from RAM.
    ReadProg,
    /// Executing call `call_idx` of the current prog.
    ExecuteOne {
        /// Index of the next call to run.
        call_idx: usize,
    },
    /// Trapped: coverage buffer full, waiting for the host to drain.
    CovBufFull {
        /// Call index to resume at.
        resume_at: usize,
    },
    /// In the exception/assert handler, emitting the crash report.
    HandleException {
        /// Banner lines still to print before parking.
        lines_left: usize,
    },
    /// Parked after a recoverable fault; counts down to recovery.
    FaultPark {
        /// Steps remaining before returning to the executor loop.
        steps: u32,
    },
    /// Stalled forever (hanging fault, blocked call, or frozen core).
    Hung,
}

/// Counters the agent keeps (host reads them for reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentStats {
    /// Progs fully executed.
    pub execs: u64,
    /// Individual calls executed.
    pub calls: u64,
    /// Faults raised.
    pub faults: u64,
    /// Progs that failed to decode.
    pub decode_failures: u64,
}

/// The agent firmware: kernel model + phase machine.
pub struct AgentFirmware {
    kernel: Box<dyn Kernel>,
    cov: CovState,
    layout: AgentLayout,
    symbols: SymbolTable,
    api_table: ApiTable,
    order: WireOrder,
    phase: Phase,
    prog: Option<Prog>,
    results: Vec<u64>,
    fault: Option<KernelFault>,
    stats: AgentStats,
    name: String,
    frozen: bool,
    /// Crash-banner lines queued for the exception handler to print.
    pending_banner: Vec<String>,
    /// PC the core is stuck at while [`Phase::Hung`].
    hung_pc: u32,
    /// Cycle of the last ambient peripheral interrupt.
    last_ambient: u64,
    /// Ambient timer firings since boot. Drives the GPIO glitch cadence
    /// (every third tick) — a count, not an absolute-time rule, so the
    /// ambient schedule depends only on elapsed time since boot and is
    /// unchanged by how the host restored the board into that boot.
    ambient_ticks: u64,
}

impl AgentFirmware {
    /// Assemble the agent around a kernel model.
    pub fn new(
        kernel: Box<dyn Kernel>,
        cov: CovState,
        layout: AgentLayout,
        order: WireOrder,
    ) -> Self {
        let symbols = layout.symbols(kernel.exception_symbol(), kernel.assert_symbol());
        let api_table =
            ApiTable::new(
                kernel
                    .api_table()
                    .iter()
                    .map(|d| eof_speclang::wire::ApiBinding {
                        id: d.id,
                        name: d.name.to_string(),
                    }),
            );
        let name = format!("{}-{}+agent", kernel.os().short(), kernel.os().version());
        AgentFirmware {
            kernel,
            cov,
            layout,
            symbols,
            api_table,
            order,
            phase: Phase::Boot { line: 0 },
            prog: None,
            results: Vec::new(),
            fault: None,
            stats: AgentStats::default(),
            name,
            frozen: false,
            pending_banner: Vec::new(),
            hung_pc: 0,
            last_ambient: 0,
            ambient_ticks: 0,
        }
    }

    /// Current phase (tests & diagnostics).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Execution statistics.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// The most recent kernel fault.
    pub fn last_fault(&self) -> Option<&KernelFault> {
        self.fault.as_ref()
    }

    /// Coverage state (host-side tests).
    pub fn cov(&self) -> &CovState {
        &self.cov
    }

    /// The agent's layout.
    pub fn layout(&self) -> &AgentLayout {
        &self.layout
    }

    /// Read the prog buffer from target RAM and decode it.
    fn read_prog_from_ram(&mut self, bus: &mut Bus) -> Option<Prog> {
        let len = bus
            .ram
            .read_u32(self.layout.prog_addr, bus.endianness)
            .ok()?;
        if len == 0 || len > self.layout.prog_max {
            return None;
        }
        let bytes = bus
            .ram
            .slice(self.layout.prog_addr + 4, len as usize)
            .ok()?
            .to_vec();
        decode_prog(&bytes, &self.api_table, self.order).ok()
    }

    /// Resolve prog-level argument values into kernel arguments.
    fn resolve_args(&self, call: &eof_speclang::prog::Call) -> Vec<KArg> {
        call.args
            .iter()
            .map(|a| match a {
                ArgValue::Int(v) => KArg::Int(*v),
                ArgValue::ResourceRef(r) => {
                    KArg::Int(self.results.get(*r as usize).copied().unwrap_or(u64::MAX))
                }
                ArgValue::Buffer(b) => KArg::Bytes(b.clone()),
                ArgValue::CString(s) => KArg::Str(s.clone()),
            })
            .collect()
    }

    /// Emit the crash banner for a fault, Figure-6 style.
    fn crash_banner(fault: &KernelFault) -> Vec<String> {
        let mut lines = Vec::with_capacity(fault.frames.len() + 2);
        lines.push(fault.message.clone());
        lines.push("Stack frames at BUG: unexpected stop:".to_string());
        for (i, frame) in fault.frames.iter().enumerate() {
            lines.push(format!("Level: {}: {}", i + 1, frame));
        }
        lines
    }
}

impl Firmware for AgentFirmware {
    fn name(&self) -> &str {
        &self.name
    }

    fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    fn on_reset(&mut self, bus: &mut Bus) {
        let mut ctx = ExecCtx::new(bus, &mut self.cov);
        self.kernel.reset(&mut ctx);
        if let Some(region) = self.cov.region {
            let _ = region.init(&mut bus.ram, bus.endianness);
        }
        // The cmp ring re-initialises DISARMED on every reset: the image
        // never arms itself, only a cmplog host does (per exec).
        if let Some(region) = self.cov.cmp_region {
            let _ = region.init(&mut bus.ram, bus.endianness);
        }
        self.cov.buffer_full = false;
        self.phase = Phase::Boot { line: 0 };
        self.prog = None;
        self.results.clear();
        self.fault = None;
        self.frozen = false;
        self.last_ambient = 0;
        self.ambient_ticks = 0;
    }

    fn freeze(&mut self) {
        self.frozen = true;
    }

    fn step(&mut self, bus: &mut Bus) -> StepResult {
        if self.frozen {
            return StepResult::Stalled {
                pc: self.layout.pc_idle(),
                cycles: 1,
            };
        }
        match self.phase {
            Phase::Boot { line } => {
                let banner = self.kernel.boot_banner();
                if let Some(text) = banner.get(line) {
                    bus.uart.tx_line(text);
                    self.phase = Phase::Boot { line: line + 1 };
                    StepResult::Running {
                        pc: self.layout.code_base + 0x10 + line as u32 * 4,
                        cycles: 20,
                    }
                } else {
                    self.phase = Phase::ExecutorMain;
                    StepResult::Running {
                        pc: self.layout.pc_executor_main(),
                        cycles: 5,
                    }
                }
            }
            Phase::ExecutorMain => {
                // On silicon, peripherals are alive: the board's timer
                // ticks and pins glitch whether or not a test case is
                // running. An emulator without peripheral models raises
                // nothing — the gap the paper's motivation is built on.
                if bus.silicon {
                    let now = bus.core_now();
                    if now.saturating_sub(self.last_ambient) > 2_000 {
                        self.last_ambient = now;
                        self.ambient_ticks += 1;
                        bus.pending_irqs.push_back(eof_hal::IrqRequest {
                            line: eof_hal::irq::TIMER,
                            payload: Vec::new(),
                        });
                        if self.ambient_ticks.is_multiple_of(3) {
                            bus.pending_irqs.push_back(eof_hal::IrqRequest {
                                line: eof_hal::irq::GPIO,
                                payload: Vec::new(),
                            });
                        }
                    }
                }
                // Service pending interrupts first — ISRs preempt the
                // executor loop exactly as they preempt application code.
                if let Some(req) = bus.pending_irqs.pop_front() {
                    let result = {
                        let mut ctx = ExecCtx::new(bus, &mut self.cov);
                        self.kernel.on_interrupt(&mut ctx, req.line, &req.payload)
                    };
                    if let InvokeResult::Fault(fault) = result {
                        self.stats.faults += 1;
                        let banner = Self::crash_banner(&fault);
                        let is_assert = fault.kind == FaultKind::Assertion;
                        self.fault = Some(fault);
                        self.phase = Phase::HandleException {
                            lines_left: banner.len(),
                        };
                        self.pending_banner = banner;
                        let pc = if is_assert {
                            self.layout.pc_assert()
                        } else {
                            self.layout.pc_exception()
                        };
                        return StepResult::Running { pc, cycles: 12 };
                    }
                    return StepResult::Running {
                        pc: self.layout.code_base + 0x600,
                        cycles: 6,
                    };
                }
                // Move on to read the next prog; if none is present,
                // read_prog will bounce back here (a busy poll).
                self.phase = Phase::ReadProg;
                StepResult::Running {
                    pc: self.layout.pc_read_prog(),
                    cycles: 3,
                }
            }
            Phase::ReadProg => {
                match self.read_prog_from_ram(bus) {
                    Some(prog) if !prog.is_empty() => {
                        // Consume the buffer: zero the length word so the
                        // same prog is not re-executed.
                        let _ = bus.ram.write_u32(self.layout.prog_addr, 0, bus.endianness);
                        // Reinitialise OS services so test cases run
                        // against fresh kernel state — the embedded
                        // analogue of syzkaller's per-program executor
                        // processes. Without this, resource tables
                        // saturate after a few hundred cases and the rest
                        // of the campaign exercises nothing but -ENOMEM
                        // paths.
                        {
                            let mut ctx = ExecCtx::new(bus, &mut self.cov);
                            ctx.charge(25);
                            self.kernel.reset(&mut ctx);
                        }
                        // Arm the model-free peripheral region with the
                        // prog's MMIO response stream (second input
                        // plane); empty for pure-API progs, which leaves
                        // the region in its reset state.
                        bus.mmio.load_stream(&prog.mmio);
                        self.results.clear();
                        self.prog = Some(prog);
                        self.phase = Phase::ExecuteOne { call_idx: 0 };
                        StepResult::Running {
                            pc: self.layout.pc_execute_one(),
                            cycles: 10,
                        }
                    }
                    Some(_) | None => {
                        // Nothing valid waiting: poll again from the top.
                        let had_bytes = bus
                            .ram
                            .read_u32(self.layout.prog_addr, bus.endianness)
                            .map(|l| l != 0)
                            .unwrap_or(false);
                        if had_bytes {
                            self.stats.decode_failures += 1;
                            let _ = bus.ram.write_u32(self.layout.prog_addr, 0, bus.endianness);
                        }
                        self.phase = Phase::ExecutorMain;
                        StepResult::Running {
                            pc: self.layout.pc_executor_main(),
                            cycles: 4,
                        }
                    }
                }
            }
            Phase::ExecuteOne { call_idx } => {
                let Some(prog) = self.prog.as_ref() else {
                    self.phase = Phase::ExecutorMain;
                    return StepResult::Running {
                        pc: self.layout.pc_executor_main(),
                        cycles: 2,
                    };
                };
                if call_idx >= prog.calls.len() {
                    // Prog complete.
                    self.stats.execs += 1;
                    self.prog = None;
                    self.phase = Phase::ExecutorMain;
                    return StepResult::Running {
                        pc: self.layout.pc_executor_main(),
                        cycles: 3,
                    };
                }
                let call = prog.calls[call_idx].clone();
                let args = self.resolve_args(&call);
                let api_id = self.api_table.id_of(&call.api).unwrap_or(u16::MAX);
                let result = {
                    let mut ctx = ExecCtx::new(bus, &mut self.cov);
                    self.kernel.invoke(&mut ctx, api_id, &args)
                };
                self.stats.calls += 1;
                match result {
                    InvokeResult::Ok(v) => {
                        self.results.push(v);
                    }
                    InvokeResult::Err(_) => {
                        self.results.push(u64::MAX);
                    }
                    InvokeResult::Hang => {
                        self.phase = Phase::Hung;
                        self.hung_pc = self.layout.pc_execute_one() + 0x10;
                        return StepResult::Stalled {
                            pc: self.hung_pc,
                            cycles: 4,
                        };
                    }
                    InvokeResult::Fault(fault) => {
                        self.stats.faults += 1;
                        let banner = Self::crash_banner(&fault);
                        let is_assert = fault.kind == FaultKind::Assertion;
                        self.fault = Some(fault);
                        self.phase = Phase::HandleException {
                            lines_left: banner.len(),
                        };
                        // The banner is buffered; HandleException steps
                        // print it line by line.
                        self.pending_banner = banner;
                        let pc = if is_assert {
                            self.layout.pc_assert()
                        } else {
                            self.layout.pc_exception()
                        };
                        return StepResult::Running { pc, cycles: 12 };
                    }
                }
                // Coverage buffer full? Trap for the host. The trap only
                // exists because instrumentation does, so its cost goes on
                // the instrumentation clock: the core-cycle history stays
                // identical to the uninstrumented build's.
                if self.cov.buffer_full {
                    self.phase = Phase::CovBufFull {
                        resume_at: call_idx + 1,
                    };
                    bus.charge_instr(4);
                    return StepResult::Running {
                        pc: self.layout.pc_buf_full(),
                        cycles: 0,
                    };
                }
                self.phase = Phase::ExecuteOne {
                    call_idx: call_idx + 1,
                };
                StepResult::Running {
                    pc: self.layout.pc_execute_one(),
                    cycles: 6,
                }
            }
            Phase::CovBufFull { resume_at } => {
                // Wait until the host has drained and reset the buffer.
                let drained = self
                    .cov
                    .region
                    .map(|r| {
                        r.count(&bus.ram, bus.endianness)
                            .map(|c| c < r.capacity)
                            .unwrap_or(true)
                    })
                    .unwrap_or(true);
                if drained {
                    self.cov.buffer_full = false;
                    self.phase = Phase::ExecuteOne {
                        call_idx: resume_at,
                    };
                    bus.charge_instr(4);
                    StepResult::Running {
                        pc: self.layout.pc_execute_one(),
                        cycles: 0,
                    }
                } else {
                    bus.charge_instr(2);
                    StepResult::Stalled {
                        pc: self.layout.pc_buf_full(),
                        cycles: 0,
                    }
                }
            }
            Phase::HandleException { lines_left } => {
                let total = self.pending_banner.len();
                if lines_left > 0 {
                    let line = &self.pending_banner[total - lines_left];
                    bus.uart.tx_line(line);
                    self.phase = Phase::HandleException {
                        lines_left: lines_left - 1,
                    };
                    let fault = self.fault.as_ref().expect("fault set with banner");
                    let pc = if fault.kind == FaultKind::Assertion {
                        self.layout.pc_assert()
                    } else {
                        self.layout.pc_exception()
                    };
                    // Report the machine-level fault record exactly once,
                    // on the first handler step.
                    if lines_left == total {
                        return StepResult::fault(
                            fault.kind,
                            pc,
                            bus.core_now(),
                            fault.message.clone(),
                            fault.frames.iter().map(|f| f.to_string()).collect(),
                        );
                    }
                    return StepResult::Running { pc, cycles: 8 };
                }
                let hangs = self.fault.as_ref().map(|f| f.hangs_after).unwrap_or(false);
                if hangs {
                    self.phase = Phase::Hung;
                    // A hanging fault wedges the core inside the handler
                    // it crashed into (exception or assertion).
                    self.hung_pc = match self.fault.as_ref().map(|f| f.kind) {
                        Some(FaultKind::Assertion) => self.layout.pc_assert(),
                        _ => self.layout.pc_exception(),
                    };
                    StepResult::Stalled {
                        pc: self.hung_pc,
                        cycles: 2,
                    }
                } else {
                    self.phase = Phase::FaultPark { steps: 3 };
                    StepResult::Running {
                        pc: self.layout.pc_exception() + 0x20,
                        cycles: 4,
                    }
                }
            }
            Phase::FaultPark { steps } => {
                if steps > 0 {
                    self.phase = Phase::FaultPark { steps: steps - 1 };
                    StepResult::Running {
                        pc: self.layout.pc_exception() + 0x20 + steps,
                        cycles: 4,
                    }
                } else {
                    // Recovered: drop the rest of the prog, back to top.
                    self.prog = None;
                    self.phase = Phase::ExecutorMain;
                    StepResult::Running {
                        pc: self.layout.pc_executor_main(),
                        cycles: 4,
                    }
                }
            }
            Phase::Hung => StepResult::Stalled {
                pc: self.hung_pc,
                cycles: 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_coverage::InstrumentMode;
    use eof_hal::Endianness;
    use eof_rtos::registry::make_kernel;
    use eof_rtos::OsKind;
    use eof_speclang::prog::Call;
    use eof_speclang::wire::encode_prog;

    fn setup(os: OsKind) -> (AgentFirmware, Bus) {
        let board = eof_hal::BoardCatalog::qemu_virt_arm();
        let layout = AgentLayout::for_board(&board);
        let kernel = make_kernel(os);
        let cov = CovState::instrumented(InstrumentMode::Full, layout.cov);
        let mut bus = Bus::new(board.ram_base, board.ram_size, Endianness::Little);
        let mut fw = AgentFirmware::new(kernel, cov, layout, WireOrder::Little);
        fw.on_reset(&mut bus);
        (fw, bus)
    }

    fn write_prog(fw: &AgentFirmware, bus: &mut Bus, prog: &Prog) {
        let bytes = encode_prog(prog, &fw.api_table, WireOrder::Little).unwrap();
        bus.ram
            .write_u32(fw.layout.prog_addr, bytes.len() as u32, bus.endianness)
            .unwrap();
        bus.ram.write(fw.layout.prog_addr + 4, &bytes).unwrap();
    }

    fn run_steps(fw: &mut AgentFirmware, bus: &mut Bus, n: usize) -> Vec<StepResult> {
        (0..n).map(|_| fw.step(bus)).collect()
    }

    #[test]
    fn boot_prints_banner_then_waits() {
        let (mut fw, mut bus) = setup(OsKind::FreeRtos);
        run_steps(&mut fw, &mut bus, 10);
        let log = String::from_utf8(bus.uart.drain()).unwrap();
        assert!(log.contains("FreeRTOS v5.4 booting"), "{log}");
        // With no prog, the agent busy-polls between main and read_prog.
        assert!(matches!(fw.phase(), Phase::ExecutorMain | Phase::ReadProg));
    }

    #[test]
    fn executes_a_prog_end_to_end() {
        let (mut fw, mut bus) = setup(OsKind::FreeRtos);
        run_steps(&mut fw, &mut bus, 6);
        let prog = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "xQueueCreate".into(),
                    args: vec![ArgValue::Int(4), ArgValue::Int(16)],
                },
                Call {
                    api: "xQueueSend".into(),
                    args: vec![ArgValue::ResourceRef(0), ArgValue::Buffer(vec![1, 2])],
                },
                Call {
                    api: "xQueueReceive".into(),
                    args: vec![ArgValue::ResourceRef(0)],
                },
            ],
        };
        write_prog(&fw, &mut bus, &prog);
        run_steps(&mut fw, &mut bus, 20);
        assert_eq!(fw.stats().execs, 1);
        assert_eq!(fw.stats().calls, 3);
        assert_eq!(fw.stats().faults, 0);
        // Coverage was recorded on the device.
        assert!(fw.cov().hits > 0);
    }

    #[test]
    fn fault_routes_to_exception_symbol_and_prints_backtrace() {
        let (mut fw, mut bus) = setup(OsKind::FreeRtos);
        run_steps(&mut fw, &mut bus, 6);
        let prog = Prog {
            mmio: vec![],
            calls: vec![Call {
                api: "load_partitions".into(),
                args: vec![ArgValue::Int(3), ArgValue::Int(0x10)],
            }],
        };
        write_prog(&fw, &mut bus, &prog);
        let steps = run_steps(&mut fw, &mut bus, 20);
        let fault_step = steps.iter().find(|s| matches!(s, StepResult::Fault(_)));
        assert!(fault_step.is_some(), "no fault step observed");
        if let Some(StepResult::Fault(rec)) = fault_step {
            assert_eq!(rec.pc, fw.layout().pc_exception());
        }
        let log = String::from_utf8(bus.uart.drain()).unwrap();
        assert!(log.contains("Level: 1: load_partitions"), "{log}");
        // The fault is recoverable: agent returns to the executor loop.
        run_steps(&mut fw, &mut bus, 10);
        assert!(matches!(fw.phase(), Phase::ExecutorMain | Phase::ReadProg));
    }

    #[test]
    fn hanging_fault_stalls_pc() {
        let (mut fw, mut bus) = setup(OsKind::Zephyr);
        run_steps(&mut fw, &mut bus, 6);
        let prog = Prog {
            mmio: vec![],
            calls: vec![Call {
                api: "json_obj_encode".into(),
                args: vec![ArgValue::Int(13), ArgValue::Int(3)],
            }],
        };
        write_prog(&fw, &mut bus, &prog);
        run_steps(&mut fw, &mut bus, 30);
        assert_eq!(fw.phase(), Phase::Hung);
        let s1 = fw.step(&mut bus);
        let s2 = fw.step(&mut bus);
        assert_eq!(s1.pc(), s2.pc());
        assert!(matches!(s1, StepResult::Stalled { .. }));
    }

    #[test]
    fn assertion_fault_routes_to_assert_symbol() {
        let (mut fw, mut bus) = setup(OsKind::RtThread);
        run_steps(&mut fw, &mut bus, 8);
        let prog = Prog {
            mmio: vec![],
            calls: vec![Call {
                api: "rt_object_init".into(),
                args: vec![ArgValue::Int(6), ArgValue::CString(String::new())],
            }],
        };
        write_prog(&fw, &mut bus, &prog);
        let steps = run_steps(&mut fw, &mut bus, 20);
        let fault = steps.iter().find_map(|s| match s {
            StepResult::Fault(rec) => Some(rec.clone()),
            _ => None,
        });
        let rec = fault.expect("assert fault observed");
        assert_eq!(rec.pc, fw.layout().pc_assert());
        assert_eq!(rec.kind, FaultKind::Assertion);
    }

    #[test]
    fn resource_refs_flow_between_calls() {
        let (mut fw, mut bus) = setup(OsKind::NuttX);
        run_steps(&mut fw, &mut bus, 6);
        let prog = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "nxsem_init".into(),
                    args: vec![ArgValue::Int(1)],
                },
                Call {
                    api: "nxsem_trywait".into(),
                    args: vec![ArgValue::ResourceRef(0)],
                },
            ],
        };
        write_prog(&fw, &mut bus, &prog);
        run_steps(&mut fw, &mut bus, 15);
        assert_eq!(fw.stats().execs, 1);
        assert_eq!(fw.stats().faults, 0);
    }

    #[test]
    fn garbage_prog_counts_decode_failure() {
        let (mut fw, mut bus) = setup(OsKind::Zephyr);
        run_steps(&mut fw, &mut bus, 6);
        bus.ram
            .write_u32(fw.layout.prog_addr, 16, bus.endianness)
            .unwrap();
        bus.ram
            .write(fw.layout.prog_addr + 4, b"NOT A VALID PROG")
            .unwrap();
        run_steps(&mut fw, &mut bus, 6);
        assert_eq!(fw.stats().decode_failures, 1);
        assert_eq!(fw.stats().execs, 0);
    }

    #[test]
    fn cov_buffer_full_traps_until_host_drains() {
        let board = eof_hal::BoardCatalog::qemu_virt_arm();
        let mut layout = AgentLayout::for_board(&board);
        // Tiny buffer so one call overflows it.
        layout.cov = eof_coverage::CovRegion::new(board.ram_base + 0x3000, 4);
        let kernel = make_kernel(OsKind::FreeRtos);
        let cov = CovState::instrumented(InstrumentMode::Full, layout.cov);
        let mut bus = Bus::new(board.ram_base, board.ram_size, Endianness::Little);
        let mut fw = AgentFirmware::new(kernel, cov, layout, WireOrder::Little);
        fw.on_reset(&mut bus);
        run_steps(&mut fw, &mut bus, 6);
        let prog = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "json_parse".into(),
                    args: vec![ArgValue::Buffer(br#"{"a":[1,2,3]}"#.to_vec())],
                },
                Call {
                    api: "json_parse".into(),
                    args: vec![ArgValue::Buffer(b"[]".to_vec())],
                },
            ],
        };
        write_prog(&fw, &mut bus, &prog);
        // Run until the trap.
        let mut trapped = false;
        for _ in 0..30 {
            let s = fw.step(&mut bus);
            if s.pc() == fw.layout().pc_buf_full() {
                trapped = true;
                break;
            }
        }
        assert!(trapped, "agent never trapped at _kcmp_buf_full");
        // Stalls while the buffer stays full.
        let s = fw.step(&mut bus);
        assert!(matches!(s, StepResult::Stalled { .. }));
        // Host drains: reset the region whenever the agent traps again,
        // until the prog completes.
        let region = fw.layout().cov;
        for _ in 0..50 {
            if fw.stats().execs == 1 {
                break;
            }
            let s = fw.step(&mut bus);
            if s.pc() == fw.layout().pc_buf_full() {
                region.reset(&mut bus.ram, bus.endianness).unwrap();
            }
        }
        assert_eq!(fw.stats().execs, 1);
    }
}
