//! `eof-agent` — the cross-platform execution agent EOF deploys on the
//! target (paper §4.3.2).
//!
//! The agent is the small piece of code embedded in the flashed image
//! that deserialises test cases and executes them against the OS,
//! synchronising with the host fuzzer through hardware breakpoints at
//! its well-known sync points:
//!
//! ```text
//! executor_main ──▶ read_prog ──▶ execute_one ──▶ (loop)
//!                                   │
//!                  handle_exception ◀ fault        _kcmp_buf_full ◀ cov full
//! ```
//!
//! The host writes a prog (length-prefixed wire bytes) into the agent's
//! RAM buffer over the debug port, resumes the target, and the agent
//! decodes it "using only primitive operations" — the decode here is
//! byte slicing and integer assembly straight out of target RAM. Faults
//! raised by the kernel route execution to the OS's exception (or
//! assertion) symbol, where the exception monitor's breakpoint catches
//! them; hanging faults stall the PC, feeding the stall watchdog.

pub mod firmware;
pub mod layout;
pub mod loader;

pub use firmware::{AgentFirmware, AgentStats, Phase};
pub use layout::AgentLayout;
pub use loader::{agent_loader, api_table_of, boot_machine, wire_order_of};
