//! The bootloader glue: flash image → agent firmware.
//!
//! This is the per-OS "adaptation" of the paper's §4.6 — the ~50 lines
//! that add system initialisation and boot-check logic to the agent. The
//! [`agent_loader`] closure is installed as the machine's firmware
//! loader: on every reset it re-reads the kernel partition, validates
//! the image (corruption ⇒ boot failure) and instantiates the right
//! kernel model with the instrumentation state the image was built with.

use crate::firmware::AgentFirmware;
use crate::layout::AgentLayout;
use eof_coverage::InstrumentMode;
use eof_hal::{BoardSpec, Endianness, FirmwareLoader, Machine};
use eof_rtos::ctx::CovState;
use eof_rtos::image::parse_image;
use eof_rtos::kernel::OsKind;
use eof_rtos::registry::make_kernel;
use eof_speclang::wire::{ApiBinding, ApiTable, WireOrder};

/// Map a board's endianness onto the wire byte order.
pub fn wire_order_of(board: &BoardSpec) -> WireOrder {
    match board.endianness {
        Endianness::Little => WireOrder::Little,
        Endianness::Big => WireOrder::Big,
    }
}

/// Host-side view of an OS's API table (name ⇄ id), for prog encoding.
pub fn api_table_of(os: OsKind) -> ApiTable {
    ApiTable::new(make_kernel(os).api_table().iter().map(|d| ApiBinding {
        id: d.id,
        name: d.name.to_string(),
    }))
}

/// A firmware loader that boots whatever OS image is in the kernel
/// partition.
pub fn agent_loader() -> FirmwareLoader {
    Box::new(|flash, board| {
        let image = flash.read_partition("kernel")?;
        let info = parse_image(&image)?;
        let layout = AgentLayout::for_board(board);
        let cov = match &info.mode {
            InstrumentMode::None => CovState::uninstrumented(),
            mode => CovState::instrumented(mode.clone(), layout.cov).with_cmp(layout.cmp),
        };
        let kernel = make_kernel(info.os);
        let order = match board.endianness {
            Endianness::Little => WireOrder::Little,
            Endianness::Big => WireOrder::Big,
        };
        Ok(Box::new(AgentFirmware::new(kernel, cov, layout, order)))
    })
}

/// Convenience: build a machine for `board`, flash an `os` image built
/// with `mode`/`profile`, and boot it.
pub fn boot_machine(
    board: BoardSpec,
    os: OsKind,
    profile: eof_rtos::image::ImageProfile,
    mode: &InstrumentMode,
) -> Machine {
    let mut m = Machine::new(board, agent_loader());
    let image = eof_rtos::image::build_image(os, profile, mode);
    m.reflash_partition("kernel", &image)
        .expect("image fits the kernel partition");
    m.reset();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_hal::{BoardCatalog, BootState, RunExit};
    use eof_rtos::image::ImageProfile;

    #[test]
    fn boots_every_os_on_its_default_board() {
        for os in OsKind::ALL {
            let board = eof_rtos::registry::default_board(os);
            let m = boot_machine(board, os, ImageProfile::FullSystem, &InstrumentMode::Full);
            assert_eq!(*m.state(), BootState::Running, "{os}");
            assert!(m.symbol("executor_main").is_some());
        }
    }

    #[test]
    fn corrupted_image_fails_boot_until_reflash() {
        let mut m = boot_machine(
            BoardCatalog::qemu_virt_arm(),
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        // Corrupt the kernel partition mid-image.
        let part = m.flash().table().get("kernel").unwrap().clone();
        m.flash_mut().flip_bit(part.offset + 4096, 2).unwrap();
        m.reset();
        assert!(matches!(m.state(), BootState::Dead(_)));
        // Reflash heals it.
        let image = eof_rtos::image::build_image(
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        m.reflash_partition("kernel", &image).unwrap();
        m.reset();
        assert_eq!(*m.state(), BootState::Running);
    }

    #[test]
    fn breakpoint_at_executor_main_fires_on_boot() {
        let mut m = boot_machine(
            BoardCatalog::esp32_devkit(),
            OsKind::FreeRtos,
            ImageProfile::FullSystem,
            &InstrumentMode::Full,
        );
        let addr = m.symbol("executor_main").unwrap();
        m.set_breakpoint(addr).unwrap();
        match m.run(10_000) {
            RunExit::Breakpoint { pc } => assert_eq!(pc, addr),
            other => panic!("expected executor_main breakpoint, got {other:?}"),
        }
    }

    #[test]
    fn api_table_is_consistent_with_kernel() {
        for os in OsKind::ALL {
            let table = api_table_of(os);
            let kernel = make_kernel(os);
            assert_eq!(table.len(), kernel.api_table().len());
            for d in kernel.api_table() {
                assert_eq!(table.id_of(d.name), Some(d.id), "{os}: {}", d.name);
            }
        }
    }

    #[test]
    fn wire_order_tracks_endianness() {
        assert!(matches!(
            wire_order_of(&BoardCatalog::esp32_devkit()),
            WireOrder::Little
        ));
        assert!(matches!(
            wire_order_of(&BoardCatalog::ppc_eval()),
            WireOrder::Big
        ));
    }
}
