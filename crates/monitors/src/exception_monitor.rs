//! The exception monitor: breakpoints at the OS's fault handlers.
//!
//! "During fuzzing initialization, EOF also inserts breakpoints at
//! various embedded OS-specific exception functions like
//! `panic_handler()` in FreeRTOS and `common_exception()` in RT-Thread.
//! Once the agent reaches these functions, the fuzzer captures the
//! relevant crash information." (§4.5.2)
//!
//! The monitor arms one breakpoint on the exception symbol and one on
//! the assertion symbol, classifies halt addresses, and recovers the
//! symbolised backtrace from the crash banner the handler printed.

use crate::patterns::Pattern;
use eof_dap::{DapError, DebugTransport};

/// What kind of handler a halt address corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionKind {
    /// The OS's hard-fault / panic handler.
    Exception,
    /// The OS's assertion reporter.
    Assertion,
}

/// An armed exception monitor for one target.
#[derive(Debug, Clone)]
pub struct ExceptionMonitor {
    exception_addr: u32,
    assert_addr: u32,
    exceptions_seen: u64,
    asserts_seen: u64,
}

impl ExceptionMonitor {
    /// Resolve the handler symbols and install hardware breakpoints.
    pub fn arm(
        transport: &mut DebugTransport,
        exception_symbol: &str,
        assert_symbol: &str,
    ) -> Result<Self, DapError> {
        let exception_addr = transport
            .symbol(exception_symbol)
            .ok_or_else(|| DapError::Protocol(format!("no symbol {exception_symbol:?}")))?;
        let assert_addr = transport
            .symbol(assert_symbol)
            .ok_or_else(|| DapError::Protocol(format!("no symbol {assert_symbol:?}")))?;
        transport.set_breakpoint(exception_addr)?;
        transport.set_breakpoint(assert_addr)?;
        Ok(ExceptionMonitor {
            exception_addr,
            assert_addr,
            exceptions_seen: 0,
            asserts_seen: 0,
        })
    }

    /// Classify a halt PC; counts sightings.
    pub fn classify(&mut self, pc: u32) -> Option<ExceptionKind> {
        if pc == self.exception_addr {
            self.exceptions_seen += 1;
            Some(ExceptionKind::Exception)
        } else if pc == self.assert_addr {
            self.asserts_seen += 1;
            Some(ExceptionKind::Assertion)
        } else {
            None
        }
    }

    /// Address of the exception handler breakpoint.
    pub fn exception_addr(&self) -> u32 {
        self.exception_addr
    }

    /// Address of the assertion breakpoint.
    pub fn assert_addr(&self) -> u32 {
        self.assert_addr
    }

    /// Exceptions observed so far.
    pub fn exceptions_seen(&self) -> u64 {
        self.exceptions_seen
    }

    /// Assertions observed so far.
    pub fn asserts_seen(&self) -> u64 {
        self.asserts_seen
    }
}

/// Recover the symbolised backtrace from banner lines — the inverse of
/// the agent's Figure-6-style `Level: N: frame` output. Returns frames
/// innermost first.
pub fn parse_backtrace(lines: &[String]) -> Vec<String> {
    let level = Pattern::new("^Level: ");
    let mut frames = Vec::new();
    for line in lines {
        if level.matches(line) {
            if let Some((_, frame)) = line.split_once(": ").and_then(|(_, rest)| {
                rest.split_once(": ")
                    .map(|(n, f)| (n, f.trim().to_string()))
            }) {
                frames.push(frame);
            } else if let Some((_, frame)) = line.rsplit_once(": ") {
                frames.push(frame.trim().to_string());
            }
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_agent::boot_machine;
    use eof_coverage::InstrumentMode;
    use eof_dap::LinkConfig;
    use eof_hal::BoardCatalog;
    use eof_rtos::image::ImageProfile;
    use eof_rtos::OsKind;

    fn transport(os: OsKind) -> DebugTransport {
        let m = boot_machine(
            BoardCatalog::qemu_virt_arm(),
            os,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        DebugTransport::attach(m, LinkConfig::default())
    }

    #[test]
    fn arms_on_real_target_symbols() {
        let mut t = transport(OsKind::RtThread);
        let mon = ExceptionMonitor::arm(&mut t, "common_exception", "rt_assert_handler").unwrap();
        assert_ne!(mon.exception_addr(), mon.assert_addr());
        assert_eq!(t.machine().breakpoints().len(), 2);
    }

    #[test]
    fn unknown_symbol_is_error() {
        let mut t = transport(OsKind::Zephyr);
        assert!(ExceptionMonitor::arm(&mut t, "not_a_symbol", "also_not").is_err());
    }

    #[test]
    fn classification_counts() {
        let mut t = transport(OsKind::Zephyr);
        let mut mon = ExceptionMonitor::arm(&mut t, "z_fatal_error", "assert_post_action").unwrap();
        let e = mon.exception_addr();
        let a = mon.assert_addr();
        assert_eq!(mon.classify(e), Some(ExceptionKind::Exception));
        assert_eq!(mon.classify(a), Some(ExceptionKind::Assertion));
        assert_eq!(mon.classify(0x1234), None);
        assert_eq!(mon.exceptions_seen(), 1);
        assert_eq!(mon.asserts_seen(), 1);
    }

    #[test]
    fn backtrace_recovery_from_banner() {
        let lines = vec![
            "BUG: unexpected stop: bus fault in _serial_poll_tx".to_string(),
            "Stack frames at BUG: unexpected stop:".to_string(),
            "Level: 1: rt_serial_write".to_string(),
            "Level: 2: rt_device_write".to_string(),
            "Level: 3: _kputs".to_string(),
            "Level: 4: rt_kprintf".to_string(),
            "Level: 5: sal_socket".to_string(),
        ];
        let frames = parse_backtrace(&lines);
        assert_eq!(
            frames,
            vec![
                "rt_serial_write",
                "rt_device_write",
                "_kputs",
                "rt_kprintf",
                "sal_socket"
            ]
        );
    }

    #[test]
    fn backtrace_ignores_unrelated_lines() {
        let lines = vec![
            "I (1) boot: ok".to_string(),
            "Level: 1: frame_a".to_string(),
        ];
        assert_eq!(parse_backtrace(&lines), vec!["frame_a"]);
    }
}
