//! State restoration: reflash every partition and reboot.
//!
//! Algorithm 1's `StateRestoration()`: when a liveness watchdog trips,
//! EOF "resets the system by reflashing the image and rebooting it using
//! the debug interface" — a plain reboot is insufficient when the image
//! is damaged (§4.4.2). The restoration holds golden images for every
//! partition named by the build configuration and writes them all back,
//! then reboots and waits the settle delay (`sleep(5s)`, line 19).

use crate::kconfig::KConfig;
use crate::watchdog::LivenessWatchdog;
use eof_dap::{DapError, DebugTransport, Txn, TxnResult};
use eof_hal::clock::secs_to_cycles;
use eof_hal::flash::fnv1a;
use eof_hal::PartitionTable;
use eof_telemetry as tel;

/// Post-reboot settle delay (Algorithm 1 line 19).
pub const SETTLE_SECS: u64 = 5;

/// A restoration plan: partition map plus golden images.
#[derive(Debug, Clone)]
pub struct StateRestoration {
    table: PartitionTable,
    images: Vec<(String, Vec<u8>)>,
    /// Golden checksums of each partition *as flashed* (image padded
    /// with erased bytes to the partition size).
    golden: Vec<(String, u64)>,
    restorations: u64,
    reflashes: u64,
    vectored: bool,
}

impl StateRestoration {
    /// Build from the target's build configuration and the golden images
    /// to flash (`(partition name, image bytes)`).
    pub fn from_kconfig(
        kconfig: &KConfig,
        flash_size: u32,
        images: Vec<(String, Vec<u8>)>,
    ) -> Result<Self, eof_hal::HalError> {
        let table = kconfig.partition_table(flash_size)?;
        for (name, image) in &images {
            let part = table.get(name)?;
            if image.len() > part.size as usize {
                return Err(eof_hal::HalError::BadPartitionLayout(format!(
                    "golden image for {name:?} ({} bytes) exceeds partition ({} bytes)",
                    image.len(),
                    part.size
                )));
            }
        }
        let golden = images
            .iter()
            .map(|(name, image)| {
                let part = table.get(name).expect("validated above");
                let mut padded = image.clone();
                padded.resize(part.size as usize, eof_hal::flash::ERASED);
                (name.clone(), fnv1a(&padded))
            })
            .collect();
        Ok(StateRestoration {
            table,
            images,
            golden,
            restorations: 0,
            reflashes: 0,
            vectored: eof_dap::vectored_default(),
        })
    }

    /// Select vectored (batched) or scalar debug-port traffic for the
    /// verify/reflash paths. Campaigns thread their `vectored` knob here.
    pub fn set_vectored(&mut self, vectored: bool) {
        self.vectored = vectored;
    }

    /// The partition map extracted from kconfig.
    pub fn partition_table(&self) -> &PartitionTable {
        &self.table
    }

    /// Number of restorations performed.
    pub fn restorations(&self) -> u64 {
        self.restorations
    }

    /// Number of partition reflashes actually performed (restorations
    /// whose verify pass found damage).
    pub fn reflashes(&self) -> u64 {
        self.reflashes
    }

    /// Algorithm 1 lines 14–19: if the watchdog says the target is not
    /// alive, reflash every partition, reboot and settle. Returns whether
    /// a restoration was performed.
    pub fn restore_if_needed(
        &mut self,
        watchdog: &mut LivenessWatchdog,
        pipe: &mut DebugTransport,
    ) -> Result<bool, DapError> {
        if watchdog.check(pipe).is_alive() {
            return Ok(false);
        }
        self.restore(pipe)?;
        watchdog.reset();
        Ok(true)
    }

    /// Restoration: verify each partition against its golden checksum
    /// (target-side CRC, like OpenOCD `verify_image`) and reflash only
    /// the damaged ones, then reboot and settle. An intact image after a
    /// mere hang thus costs seconds, not a full multi-megabyte flash.
    pub fn restore(&mut self, pipe: &mut DebugTransport) -> Result<(), DapError> {
        let span = tel::span_start("restore.verify_reflash", pipe.now());
        if self.vectored {
            self.restore_vectored(pipe)?;
        } else {
            for (i, (name, image)) in self.images.iter().enumerate() {
                let intact = pipe
                    .flash_checksum(name)
                    .map(|cs| cs == self.golden[i].1)
                    .unwrap_or(false);
                if intact {
                    tel::count("restore.partitions_verified_intact", 1);
                } else {
                    pipe.flash_partition(name, image)?;
                    self.reflashes += 1;
                    tel::count("restore.partitions_reflashed", 1);
                }
            }
            pipe.reset_target()?;
        }
        pipe.sleep(secs_to_cycles(SETTLE_SECS));
        self.restorations += 1;
        tel::count("restore.restorations", 1);
        tel::span_end(span, pipe.now());
        Ok(())
    }

    /// Vectored verify/reflash: every partition checksum in one
    /// transaction, then every damaged partition plus the reboot in a
    /// second. A checksum transaction refused by the target (flash port
    /// down) marks everything damaged — the same conclusion the scalar
    /// path reaches one `unwrap_or(false)` at a time.
    fn restore_vectored(&mut self, pipe: &mut DebugTransport) -> Result<(), DapError> {
        let mut verify = Txn::new();
        for (name, _) in &self.images {
            verify.flash_checksum(name);
        }
        let damaged: Vec<bool> = match pipe.run_txn(&verify) {
            Ok(results) => results
                .iter()
                .zip(self.golden.iter())
                .map(|(r, (_, golden))| !matches!(r, TxnResult::Checksum(cs) if cs == golden))
                .collect(),
            Err(e) if e.is_connection_loss() => return Err(e),
            Err(_) => vec![true; self.images.len()],
        };
        let mut reflash = Txn::new();
        for ((name, image), damaged) in self.images.iter().zip(&damaged) {
            if *damaged {
                reflash.flash_write(name, image);
            } else {
                tel::count("restore.partitions_verified_intact", 1);
            }
        }
        let reflashed = reflash.len() as u64;
        reflash.reset_target();
        pipe.run_txn(&reflash)?;
        self.reflashes += reflashed;
        if reflashed > 0 {
            tel::count("restore.partitions_reflashed", reflashed);
        }
        Ok(())
    }

    /// Unconditional golden reflash: write every partition back without
    /// trusting the target-side checksum, then reboot and settle. The
    /// supervisor escalates here when a verified restore did not stick —
    /// e.g. the checksum engine itself answers garbage.
    pub fn restore_full(&mut self, pipe: &mut DebugTransport) -> Result<(), DapError> {
        let span = tel::span_start("restore.full_reflash", pipe.now());
        if self.vectored {
            // Whole golden set plus the reboot, one transaction.
            let mut txn = Txn::new();
            for (name, image) in &self.images {
                txn.flash_write(name, image);
            }
            txn.reset_target();
            pipe.run_txn(&txn)?;
            self.reflashes += self.images.len() as u64;
            tel::count("restore.partitions_reflashed", self.images.len() as u64);
        } else {
            for (name, image) in &self.images {
                pipe.flash_partition(name, image)?;
                self.reflashes += 1;
                tel::count("restore.partitions_reflashed", 1);
            }
            pipe.reset_target()?;
        }
        pipe.sleep(secs_to_cycles(SETTLE_SECS));
        self.restorations += 1;
        tel::count("restore.restorations", 1);
        tel::span_end(span, pipe.now());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kconfig::{parse_kconfig, render_kconfig};
    use eof_agent::{agent_loader, boot_machine};
    use eof_coverage::InstrumentMode;
    use eof_dap::LinkConfig;
    use eof_hal::{BoardCatalog, FaultPlan, InjectedFault, Machine};
    use eof_rtos::image::{build_image, ImageProfile};
    use eof_rtos::OsKind;

    fn setup() -> (StateRestoration, DebugTransport) {
        let board = BoardCatalog::qemu_virt_arm();
        let image = build_image(
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        let kconfig_text = render_kconfig("arm", &board.default_partitions());
        let kconfig = parse_kconfig(&kconfig_text).unwrap();
        let restoration = StateRestoration::from_kconfig(
            &kconfig,
            board.flash_size,
            vec![("kernel".to_string(), image.clone())],
        )
        .unwrap();
        let mut m = Machine::new(board, agent_loader());
        m.reflash_partition("kernel", &image).unwrap();
        m.reset();
        (
            restoration,
            DebugTransport::attach(m, LinkConfig::default()),
        )
    }

    #[test]
    fn healthy_target_is_left_alone() {
        let (mut resto, mut t) = setup();
        let mut w = LivenessWatchdog::new();
        let _ = t.continue_until_halt(200);
        let did = resto.restore_if_needed(&mut w, &mut t).unwrap();
        assert!(!did);
        assert_eq!(resto.restorations(), 0);
    }

    #[test]
    fn dead_core_gets_reflashed_and_revives() {
        let (mut resto, mut t) = setup();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::KillCore));
        let _ = t.continue_until_halt(100);
        assert!(t.read_pc().is_err());
        let mut w = LivenessWatchdog::new();
        let did = resto.restore_if_needed(&mut w, &mut t).unwrap();
        assert!(did);
        assert_eq!(resto.restorations(), 1);
        // The target is back.
        assert!(t.read_pc().is_ok());
        let _ = t.continue_until_halt(200);
        assert!(w.check(&mut t).is_alive());
    }

    #[test]
    fn corrupted_flash_gets_restored() {
        let (mut resto, mut t) = setup();
        // Corrupt the kernel image and reboot: boot failure.
        let part = t.machine().flash().table().get("kernel").unwrap().clone();
        t.machine_mut()
            .flash_mut()
            .flip_bit(part.offset + 100, 1)
            .unwrap();
        t.reset_target().unwrap();
        assert!(t.read_pc().is_err());
        let mut w = LivenessWatchdog::new();
        assert!(resto.restore_if_needed(&mut w, &mut t).unwrap());
        assert!(t.read_pc().is_ok());
    }

    #[test]
    fn restoration_costs_time() {
        let (mut resto, mut t) = setup();
        let before = t.now();
        resto.restore(&mut t).unwrap();
        let elapsed = t.now() - before;
        assert!(
            elapsed >= secs_to_cycles(SETTLE_SECS),
            "restoration must include the settle delay; took {elapsed}"
        );
    }

    #[test]
    fn oversize_golden_image_rejected() {
        let board = BoardCatalog::stm32f4_disco();
        let kconfig = parse_kconfig(&render_kconfig("arm", &board.default_partitions())).unwrap();
        let too_big = vec![0u8; board.flash_size as usize];
        let err = StateRestoration::from_kconfig(
            &kconfig,
            board.flash_size,
            vec![("kernel".to_string(), too_big)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_partition_rejected() {
        let board = BoardCatalog::stm32f4_disco();
        let kconfig = parse_kconfig(&render_kconfig("arm", &board.default_partitions())).unwrap();
        let err = StateRestoration::from_kconfig(
            &kconfig,
            board.flash_size,
            vec![("nvram".to_string(), vec![0u8; 16])],
        );
        assert!(err.is_err());
    }

    #[test]
    fn boot_machine_helper_matches_kconfig_layout() {
        // The kconfig render of a board's default partitions must agree
        // with the machine the agent boots on.
        let board = BoardCatalog::qemu_virt_arm();
        let m = boot_machine(
            board.clone(),
            OsKind::NuttX,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        let kconfig = parse_kconfig(&render_kconfig("arm", m.flash().table())).unwrap();
        let table = kconfig.partition_table(board.flash_size).unwrap();
        assert_eq!(&table, m.flash().table());
    }
}
