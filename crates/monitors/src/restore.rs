//! State restoration: reflash every partition and reboot.
//!
//! Algorithm 1's `StateRestoration()`: when a liveness watchdog trips,
//! EOF "resets the system by reflashing the image and rebooting it using
//! the debug interface" — a plain reboot is insufficient when the image
//! is damaged (§4.4.2). The restoration holds golden images for every
//! partition named by the build configuration and writes them all back,
//! then reboots and waits the settle delay (`sleep(5s)`, line 19).

use crate::kconfig::KConfig;
use crate::watchdog::LivenessWatchdog;
use eof_dap::{DapError, DebugTransport, Txn, TxnResult};
use eof_hal::clock::secs_to_cycles;
use eof_hal::flash::{fnv1a, sector_checksums_of, ERASED, SECTOR_SIZE};
use eof_hal::{PartitionTable, Snapshot};
use eof_telemetry as tel;

/// Post-reflash settle delay (Algorithm 1 line 19): a freshly
/// programmed image gets its first boot time to initialise.
pub const SETTLE_SECS: u64 = 5;

/// Settle after a plain reboot of a *verified-intact* image — the same
/// image that booted before needs only the reset rung's settle, not the
/// first-boot allowance.
pub const REBOOT_SETTLE_SECS: u64 = 1;

/// Sectors per full-reflash block (256 KiB at the 4 KiB sector size).
/// The unconditional golden stream is programmed block-by-block — the
/// way real flash loaders work — so a link fault mid-stream forfeits
/// one block's wire time, not the whole multi-megabyte transfer.
const FULL_REFLASH_BLOCK_SECTORS: usize = 64;

/// A restoration plan: partition map plus golden images.
#[derive(Debug, Clone)]
pub struct StateRestoration {
    table: PartitionTable,
    images: Vec<(String, Vec<u8>)>,
    /// Golden checksums of each partition *as flashed* (image padded
    /// with erased bytes to the partition size).
    golden: Vec<(String, u64)>,
    /// Golden per-sector checksums of each partition as flashed,
    /// parallel to `golden` — the reference the sector-delta repair
    /// diffs target sectors against.
    golden_sectors: Vec<Vec<u64>>,
    restorations: u64,
    reflashes: u64,
    vectored: bool,
    snapshot_mode: bool,
    /// Armed board snapshot: the parked state a delta restore returns to.
    snapshot: Option<Snapshot>,
    snapshot_captures: u64,
    snapshot_restores: u64,
    /// Flash generation counter the last time every partition was
    /// proven golden (verified intact or just rewritten). A matching
    /// counter at restore time proves the flash untouched since — the
    /// same suspicion rule the snapshot uses — so the verify pass can
    /// be skipped outright.
    golden_generation: Option<u64>,
}

impl StateRestoration {
    /// Build from the target's build configuration and the golden images
    /// to flash (`(partition name, image bytes)`).
    pub fn from_kconfig(
        kconfig: &KConfig,
        flash_size: u32,
        images: Vec<(String, Vec<u8>)>,
    ) -> Result<Self, eof_hal::HalError> {
        let table = kconfig.partition_table(flash_size)?;
        for (name, image) in &images {
            let part = table.get(name)?;
            if image.len() > part.size as usize {
                return Err(eof_hal::HalError::BadPartitionLayout(format!(
                    "golden image for {name:?} ({} bytes) exceeds partition ({} bytes)",
                    image.len(),
                    part.size
                )));
            }
        }
        let mut golden = Vec::with_capacity(images.len());
        let mut golden_sectors = Vec::with_capacity(images.len());
        for (name, image) in &images {
            let part = table.get(name).expect("validated above");
            let mut padded = image.clone();
            padded.resize(part.size as usize, ERASED);
            golden.push((name.clone(), fnv1a(&padded)));
            golden_sectors.push(sector_checksums_of(&padded));
        }
        Ok(StateRestoration {
            table,
            images,
            golden,
            golden_sectors,
            restorations: 0,
            reflashes: 0,
            vectored: eof_dap::vectored_default(),
            snapshot_mode: eof_dap::snapshot_default(),
            snapshot: None,
            snapshot_captures: 0,
            snapshot_restores: 0,
            golden_generation: None,
        })
    }

    /// Select vectored (batched) or scalar debug-port traffic for the
    /// verify/reflash paths. Campaigns thread their `vectored` knob here.
    pub fn set_vectored(&mut self, vectored: bool) {
        self.vectored = vectored;
    }

    /// Enable or disable the snapshot/delta-restore fast path. Campaigns
    /// thread their `snapshot` knob here; disabling disarms any captured
    /// snapshot.
    pub fn set_snapshot_mode(&mut self, on: bool) {
        self.snapshot_mode = on;
        if !on {
            self.snapshot = None;
        }
    }

    /// Whether the snapshot fast path is enabled.
    pub fn snapshot_mode(&self) -> bool {
        self.snapshot_mode
    }

    /// Whether a snapshot is currently armed.
    pub fn snapshot_armed(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Snapshots captured.
    pub fn snapshot_captures(&self) -> u64 {
        self.snapshot_captures
    }

    /// Delta restores performed from the armed snapshot.
    pub fn snapshot_restores(&self) -> u64 {
        self.snapshot_restores
    }

    /// Capture (re-arm) the board snapshot. The wire only carries the
    /// pages written since the previous capture or power-on — the charge
    /// is proportional to the dirty-page count. No-op when snapshot mode
    /// is off; returns whether a capture was performed.
    pub fn capture_snapshot(&mut self, pipe: &mut DebugTransport) -> Result<bool, DapError> {
        if !self.snapshot_mode {
            return Ok(false);
        }
        let snap = pipe.capture_snapshot()?;
        self.snapshot = Some(snap);
        self.snapshot_captures += 1;
        tel::count("restore.snapshot.captures", 1);
        Ok(true)
    }

    /// Whether the armed snapshot still belongs to the target's current
    /// boot epoch. Host-side bookkeeping only — the host performed every
    /// reset itself, so this costs no wire traffic; flash mutations are
    /// deliberately NOT checked here (that is the recovery-time
    /// generation probe's job, see [`Self::snapshot_ready`]).
    pub fn snapshot_current_epoch(&self, pipe: &DebugTransport) -> bool {
        self.snapshot
            .as_ref()
            .is_some_and(|s| s.boot_epoch() == pipe.machine().boot_epoch())
    }

    /// Recovery-time validity probe: snapshot mode on, a snapshot armed
    /// in the current boot epoch, and the flash generation counter read
    /// back over the wire matching the capture — the suspicion rule. A
    /// mutated flash (reflash, injected bit flip) or an unreachable
    /// flash port reports not-ready and the ladder escalates to the
    /// reflash rungs instead.
    pub fn snapshot_ready(&self, pipe: &mut DebugTransport) -> bool {
        if !self.snapshot_mode {
            return false;
        }
        let Some(snap) = &self.snapshot else {
            return false;
        };
        if snap.boot_epoch() != pipe.machine().boot_epoch() {
            return false;
        }
        pipe.flash_generation()
            .map(|g| g == snap.flash_generation())
            .unwrap_or(false)
    }

    /// Delta restore from the armed snapshot: ship every dirty page back
    /// and restart the core at the reset vector, without a reboot and
    /// without touching flash. Vectored mode sends the whole delta as
    /// ONE transaction (scatter write + register restore, all-or-
    /// nothing); the scalar fallback writes page by page. The caller is
    /// expected to have checked [`Self::snapshot_ready`].
    pub fn snapshot_restore(&mut self, pipe: &mut DebugTransport) -> Result<(), DapError> {
        let Some(snap) = &self.snapshot else {
            return Err(DapError::Protocol("no snapshot armed".into()));
        };
        let span = tel::span_start("restore.snapshot", pipe.now());
        let pages: Vec<(u32, Vec<u8>)> = pipe
            .machine()
            .dirty_pages()
            .into_iter()
            .map(|p| (snap.page_addr(p), snap.page(p).to_vec()))
            .collect();
        let shipped = pages.len() as u64;
        if self.vectored {
            let mut txn = Txn::new();
            txn.write_pages(pages).restore_core();
            pipe.run_txn(&txn)?;
        } else {
            for (addr, data) in &pages {
                pipe.write_mem(*addr, data)?;
            }
            pipe.restore_core()?;
        }
        self.snapshot_restores += 1;
        tel::count("restore.snapshot.restores", 1);
        tel::observe("restore.snapshot.pages", shipped);
        tel::span_end(span, pipe.now());
        Ok(())
    }

    /// The partition map extracted from kconfig.
    pub fn partition_table(&self) -> &PartitionTable {
        &self.table
    }

    /// Number of restorations performed.
    pub fn restorations(&self) -> u64 {
        self.restorations
    }

    /// Number of partition reflashes actually performed (restorations
    /// whose verify pass found damage).
    pub fn reflashes(&self) -> u64 {
        self.reflashes
    }

    /// Golden bytes of one sector of partition `i`, as flashed (the
    /// image padded with erased bytes to the partition size).
    fn golden_sector_bytes(&self, i: usize, sector: usize) -> Vec<u8> {
        let part = self
            .table
            .get(&self.images[i].0)
            .expect("validated at construction");
        let image = &self.images[i].1;
        let start = sector * SECTOR_SIZE;
        let end = (start + SECTOR_SIZE).min(part.size as usize);
        let mut bytes = vec![ERASED; end - start];
        if start < image.len() {
            let n = (image.len() - start).min(bytes.len());
            bytes[..n].copy_from_slice(&image[start..start + n]);
        }
        bytes
    }

    /// Diff target sector checksums of partition `i` against the golden
    /// set and return the `(sector index, golden bytes)` repair list.
    fn sector_delta(&self, i: usize, target: &[u64]) -> Vec<(u32, Vec<u8>)> {
        self.golden_sectors[i]
            .iter()
            .enumerate()
            .filter(|&(s, golden)| target.get(s) != Some(golden))
            .map(|(s, _)| (s as u32, self.golden_sector_bytes(i, s)))
            .collect()
    }

    /// Algorithm 1 lines 14–19: if the watchdog says the target is not
    /// alive, reflash every partition, reboot and settle. Returns whether
    /// a restoration was performed.
    pub fn restore_if_needed(
        &mut self,
        watchdog: &mut LivenessWatchdog,
        pipe: &mut DebugTransport,
    ) -> Result<bool, DapError> {
        if watchdog.check(pipe).is_alive() {
            return Ok(false);
        }
        self.restore(pipe)?;
        watchdog.reset();
        Ok(true)
    }

    /// Cheap preflight before any reflash traffic: one read of the
    /// flash controller's generation register proves the flash port
    /// answers at all. A browned-out or hard-locked board refuses
    /// programming only *after* the image bytes have been streamed at
    /// it, so opening a multi-hundred-kilobyte transfer against a port
    /// that cannot ack wastes the entire transfer's wire time — real
    /// flash tools probe the target (IDCODE/status read) before
    /// streaming for exactly this reason. Failing here lets the
    /// supervisor escalate to the rung that can actually revive the
    /// board (usually the power rail) at register-read cost instead of
    /// image-stream cost. Returns the generation read, which doubles as
    /// the proven-golden shortcut input for [`Self::restore`].
    fn preflight(pipe: &mut DebugTransport) -> Result<u64, DapError> {
        match pipe.flash_generation() {
            Ok(generation) => Ok(generation),
            Err(e) => {
                tel::count("restore.preflight_refused", 1);
                Err(e)
            }
        }
    }

    /// Restoration: verify each partition against its golden checksum
    /// (target-side CRC, like OpenOCD `verify_image`) and repair only
    /// the damaged ones — and within a damaged partition, only the
    /// sectors whose checksums disagree, the way probe-rs/OpenOCD
    /// flashers diff sectors before programming. A flipped bit thus
    /// costs one sector's stream, not a multi-megabyte image.
    pub fn restore(&mut self, pipe: &mut DebugTransport) -> Result<(), DapError> {
        let generation = Self::preflight(pipe)?;
        let span = tel::span_start("restore.verify_reflash", pipe.now());
        let reflashes_before = self.reflashes;
        if Some(generation) == self.golden_generation {
            // The generation counter has not moved since every partition
            // was last proven golden — and every erase, program and
            // injected bit flip bumps it — so the flash is provably
            // untouched. Skip the checksum pass and go straight to the
            // reboot.
            tel::count("restore.generation_shortcut", 1);
            pipe.reset_target()?;
        } else if self.vectored {
            self.restore_vectored(pipe)?;
        } else {
            for i in 0..self.images.len() {
                let name = self.images[i].0.clone();
                // As in the vectored path: an unreadable checksum means
                // the board is sick, not that the flash is damaged.
                let intact = pipe.flash_checksum(&name)? == self.golden[i].1;
                if intact {
                    tel::count("restore.partitions_verified_intact", 1);
                    continue;
                }
                let target = pipe.flash_sector_checksums(&name)?;
                let delta = self.sector_delta(i, &target);
                if delta.is_empty() {
                    // The partition checksum disagreed but every sector
                    // matched — a lying checksum engine. Distrust it and
                    // stream the whole image.
                    pipe.flash_partition(&name, &self.images[i].1)?;
                } else {
                    tel::count("restore.sectors_reflashed", delta.len() as u64);
                    pipe.flash_write_sectors(&name, &delta)?;
                }
                self.reflashes += 1;
                tel::count("restore.partitions_reflashed", 1);
            }
            pipe.reset_target()?;
        }
        if self.reflashes == reflashes_before {
            // Nothing was programmed: reads and the reboot leave the
            // counter where the preflight saw it, so that read IS the
            // proven-golden proof for the next episode — and an image
            // that was intact all along needs only a plain reboot's
            // settle, not the first-boot allowance.
            self.golden_generation = Some(generation);
            pipe.sleep(secs_to_cycles(REBOOT_SETTLE_SECS));
        } else {
            // Repairs moved the counter; the post-repair value is the
            // new proof. (Programming is write-exact here; the
            // full_reflash rung above still covers a checksum engine
            // that answers garbage.) A refused read just drops the
            // shortcut until the next full verify.
            self.golden_generation = pipe.flash_generation().ok();
            pipe.sleep(secs_to_cycles(SETTLE_SECS));
        }
        self.restorations += 1;
        tel::count("restore.restorations", 1);
        tel::span_end(span, pipe.now());
        Ok(())
    }

    /// Vectored verify/reflash: every partition checksum in one
    /// transaction; then, for the damaged partitions, every per-sector
    /// checksum in a second; then the sector repairs plus the reboot in
    /// a third. Only a checksum that *answered* and disagreed counts as
    /// damage; a refused checksum transaction (flash port down, fault
    /// mid-episode) proves the board cannot take a reflash either, so
    /// the error propagates and the ladder escalates instead of
    /// streaming golden images at a port that will refuse them. The
    /// `full_reflash` rung above still covers a checksum engine that
    /// answers garbage.
    fn restore_vectored(&mut self, pipe: &mut DebugTransport) -> Result<(), DapError> {
        let mut verify = Txn::new();
        for (name, _) in &self.images {
            verify.flash_checksum(name);
        }
        let damaged: Vec<usize> = pipe
            .run_txn(&verify)?
            .iter()
            .zip(self.golden.iter())
            .enumerate()
            .filter(|(_, (r, (_, golden)))| !matches!(r, TxnResult::Checksum(cs) if cs == golden))
            .map(|(i, _)| i)
            .collect();
        tel::count(
            "restore.partitions_verified_intact",
            (self.images.len() - damaged.len()) as u64,
        );
        let mut repair = Txn::new();
        if !damaged.is_empty() {
            // Localise the damage: per-sector checksums of every damaged
            // partition, one transaction.
            let mut locate = Txn::new();
            for &i in &damaged {
                locate
                    .flash_sector_checksums(&self.images[i].0, self.golden_sectors[i].len() as u32);
            }
            let located = pipe.run_txn(&locate)?;
            for (&i, res) in damaged.iter().zip(located.iter()) {
                let delta = match res {
                    TxnResult::Checksums(target) => self.sector_delta(i, target),
                    _ => Vec::new(),
                };
                if delta.is_empty() {
                    // Partition checksum disagreed yet every sector
                    // matched: the checksum engine is lying. Distrust it
                    // and stream the whole image.
                    repair.flash_write(&self.images[i].0, &self.images[i].1);
                } else {
                    tel::count("restore.sectors_reflashed", delta.len() as u64);
                    repair.flash_write_sectors(&self.images[i].0, delta);
                }
            }
        }
        repair.reset_target();
        pipe.run_txn(&repair)?;
        self.reflashes += damaged.len() as u64;
        if !damaged.is_empty() {
            tel::count("restore.partitions_reflashed", damaged.len() as u64);
        }
        Ok(())
    }

    /// Unconditional golden reflash: write every sector of every
    /// partition back without trusting the target-side checksum, then
    /// reboot and settle. The supervisor escalates here when a verified
    /// restore did not stick — e.g. the checksum engine itself answers
    /// garbage.
    ///
    /// The stream is programmed in [`FULL_REFLASH_BLOCK_SECTORS`]
    /// blocks, each its own transaction, and the FIRST faulted block
    /// fails the whole rung. A monolithic multi-megabyte transfer spans
    /// hundreds of simulated seconds — at chaos fault density it almost
    /// always collides with the *next* scheduled link fault and
    /// forfeits the entire transfer's wire time. Retrying blocks is
    /// worse still: retries push a doomed stream onward through
    /// successive fault windows, paying the full image plus backoffs
    /// before the final park fails anyway. Failing on the first faulted
    /// block bounds a doomed attempt at one block's wire time and lets
    /// the ladder escalate while the fault is still the problem.
    pub fn restore_full(&mut self, pipe: &mut DebugTransport) -> Result<(), DapError> {
        Self::preflight(pipe)?;
        let span = tel::span_start("restore.full_reflash", pipe.now());
        for i in 0..self.images.len() {
            let name = self.images[i].0.clone();
            let n_sectors = self.golden_sectors[i].len();
            for block in (0..n_sectors).step_by(FULL_REFLASH_BLOCK_SECTORS) {
                let sectors: Vec<(u32, Vec<u8>)> = (block
                    ..(block + FULL_REFLASH_BLOCK_SECTORS).min(n_sectors))
                    .map(|s| (s as u32, self.golden_sector_bytes(i, s)))
                    .collect();
                if self.vectored {
                    let mut txn = Txn::new();
                    txn.flash_write_sectors(&name, sectors);
                    pipe.run_txn(&txn)?;
                } else {
                    pipe.flash_write_sectors(&name, &sectors)?;
                }
            }
            self.reflashes += 1;
            tel::count("restore.partitions_reflashed", 1);
        }
        pipe.reset_target()?;
        // The whole image was just rewritten: the post-stream counter
        // is the proven-golden proof for the next episode.
        self.golden_generation = pipe.flash_generation().ok();
        pipe.sleep(secs_to_cycles(SETTLE_SECS));
        self.restorations += 1;
        tel::count("restore.restorations", 1);
        tel::span_end(span, pipe.now());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kconfig::{parse_kconfig, render_kconfig};
    use eof_agent::{agent_loader, boot_machine};
    use eof_coverage::InstrumentMode;
    use eof_dap::LinkConfig;
    use eof_hal::{BoardCatalog, FaultPlan, InjectedFault, Machine};
    use eof_rtos::image::{build_image, ImageProfile};
    use eof_rtos::OsKind;

    fn setup() -> (StateRestoration, DebugTransport) {
        let board = BoardCatalog::qemu_virt_arm();
        let image = build_image(
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        let kconfig_text = render_kconfig("arm", &board.default_partitions());
        let kconfig = parse_kconfig(&kconfig_text).unwrap();
        let restoration = StateRestoration::from_kconfig(
            &kconfig,
            board.flash_size,
            vec![("kernel".to_string(), image.clone())],
        )
        .unwrap();
        let mut m = Machine::new(board, agent_loader());
        m.reflash_partition("kernel", &image).unwrap();
        m.reset();
        (
            restoration,
            DebugTransport::attach(m, LinkConfig::default()),
        )
    }

    #[test]
    fn healthy_target_is_left_alone() {
        let (mut resto, mut t) = setup();
        let mut w = LivenessWatchdog::new();
        let _ = t.continue_until_halt(200);
        let did = resto.restore_if_needed(&mut w, &mut t).unwrap();
        assert!(!did);
        assert_eq!(resto.restorations(), 0);
    }

    #[test]
    fn dead_core_refused_by_preflight_until_power_cycled() {
        let (mut resto, mut t) = setup();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::KillCore));
        let _ = t.continue_until_halt(100);
        assert!(t.read_pc().is_err());
        // A hard-locked core cannot ack a flash stream: the preflight
        // refuses at register-read cost instead of paying the whole
        // image's wire time, and the ladder's power rung takes over.
        let before = t.now();
        assert!(resto.restore(&mut t).is_err());
        assert!(
            t.now() - before < secs_to_cycles(1),
            "refusal must cost a register read, not an image stream"
        );
        assert_eq!(resto.restorations(), 0);
        // The power rail releases the latch; restoration then proceeds.
        t.power_cycle(secs_to_cycles(1));
        resto.restore(&mut t).unwrap();
        assert_eq!(resto.restorations(), 1);
        assert!(t.read_pc().is_ok());
        let _ = t.continue_until_halt(200);
        let mut w = LivenessWatchdog::new();
        assert!(w.check(&mut t).is_alive());
    }

    #[test]
    fn corrupted_flash_gets_restored() {
        let (mut resto, mut t) = setup();
        // Corrupt the kernel image and reboot: boot failure.
        let part = t.machine().flash().table().get("kernel").unwrap().clone();
        t.machine_mut()
            .flash_mut()
            .flip_bit(part.offset + 100, 1)
            .unwrap();
        t.reset_target().unwrap();
        assert!(t.read_pc().is_err());
        let mut w = LivenessWatchdog::new();
        assert!(resto.restore_if_needed(&mut w, &mut t).unwrap());
        assert!(t.read_pc().is_ok());
    }

    #[test]
    fn restoration_costs_time() {
        let (mut resto, mut t) = setup();
        let before = t.now();
        resto.restore(&mut t).unwrap();
        let elapsed = t.now() - before;
        assert!(
            elapsed >= secs_to_cycles(SETTLE_SECS),
            "restoration must include the settle delay; took {elapsed}"
        );
    }

    #[test]
    fn generation_shortcut_skips_verify_on_proven_golden_flash() {
        let (mut resto, mut t) = setup();
        // First restore pays the verify pass and records the counter.
        let before = t.now();
        resto.restore(&mut t).unwrap();
        let first = t.now() - before;
        // Second restore: counter unmoved, checksum pass skipped — the
        // whole restoration costs reboot time, strictly under half the
        // verified one.
        let before = t.now();
        resto.restore(&mut t).unwrap();
        let second = t.now() - before;
        assert!(
            second * 2 < first,
            "proven-golden restore must skip the verify pass ({second} vs {first})"
        );
        // A bit flip bumps the counter and voids the proof: the next
        // restore verifies, repairs, and re-proves.
        let part = t.machine().flash().table().get("kernel").unwrap().clone();
        t.machine_mut()
            .flash_mut()
            .flip_bit(part.offset + 64, 1)
            .unwrap();
        let before = t.now();
        resto.restore(&mut t).unwrap();
        let repaired = t.now() - before;
        assert!(
            repaired > second,
            "a voided proof must force the verify pass again"
        );
        assert_eq!(resto.reflashes(), 1);
        // And the repair re-proved the flash: shortcut active again.
        let before = t.now();
        resto.restore(&mut t).unwrap();
        let fourth = t.now() - before;
        assert!(fourth * 2 < first);
    }

    #[test]
    fn oversize_golden_image_rejected() {
        let board = BoardCatalog::stm32f4_disco();
        let kconfig = parse_kconfig(&render_kconfig("arm", &board.default_partitions())).unwrap();
        let too_big = vec![0u8; board.flash_size as usize];
        let err = StateRestoration::from_kconfig(
            &kconfig,
            board.flash_size,
            vec![("kernel".to_string(), too_big)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_partition_rejected() {
        let board = BoardCatalog::stm32f4_disco();
        let kconfig = parse_kconfig(&render_kconfig("arm", &board.default_partitions())).unwrap();
        let err = StateRestoration::from_kconfig(
            &kconfig,
            board.flash_size,
            vec![("nvram".to_string(), vec![0u8; 16])],
        );
        assert!(err.is_err());
    }

    #[test]
    fn snapshot_capture_arms_and_restore_rewinds() {
        let (mut resto, mut t) = setup();
        let _ = t.continue_until_halt(200);
        assert!(resto.capture_snapshot(&mut t).unwrap());
        assert!(resto.snapshot_armed());
        assert!(resto.snapshot_ready(&mut t));

        // Scribble over RAM and freeze the core, then delta-restore.
        let base = t.machine().board().ram_base;
        t.write_mem(base + 0x400, &[0xaa; 512]).unwrap();
        resto.snapshot_restore(&mut t).unwrap();
        assert_eq!(resto.snapshot_restores(), 1);
        let mut buf = [0u8; 4];
        t.read_mem(base + 0x400, &mut buf).unwrap();
        assert_ne!(buf, [0xaa; 4], "dirty page must rewind to the snapshot");
        // The target runs again from the restored state.
        assert!(t.read_pc().is_ok());
        let _ = t.continue_until_halt(200);
        let mut w = LivenessWatchdog::new();
        assert!(w.check(&mut t).is_alive());
    }

    #[test]
    fn snapshot_not_ready_after_flash_mutation_or_reboot() {
        let (mut resto, mut t) = setup();
        let _ = t.continue_until_halt(200);
        resto.capture_snapshot(&mut t).unwrap();
        assert!(resto.snapshot_ready(&mut t));

        // A flash bit flip bumps the generation counter: the suspicion
        // rule refuses the delta fast path.
        let part = t.machine().flash().table().get("kernel").unwrap().clone();
        t.machine_mut()
            .flash_mut()
            .flip_bit(part.offset + 100, 1)
            .unwrap();
        assert!(!resto.snapshot_ready(&mut t));

        // Heal the flash and reboot: new boot epoch, still not ready
        // without a fresh capture — and the epoch check needs no wire.
        resto.restore(&mut t).unwrap();
        assert!(!resto.snapshot_current_epoch(&t));
        assert!(!resto.snapshot_ready(&mut t));
        resto.capture_snapshot(&mut t).unwrap();
        assert!(resto.snapshot_ready(&mut t));
        assert_eq!(resto.snapshot_captures(), 2);
    }

    #[test]
    fn snapshot_mode_off_never_arms() {
        let (mut resto, mut t) = setup();
        resto.set_snapshot_mode(false);
        assert!(!resto.capture_snapshot(&mut t).unwrap());
        assert!(!resto.snapshot_armed());
        assert!(!resto.snapshot_ready(&mut t));
    }

    #[test]
    fn scalar_snapshot_restore_matches_vectored() {
        let (mut resto, mut t) = setup();
        resto.set_vectored(false);
        let _ = t.continue_until_halt(200);
        resto.capture_snapshot(&mut t).unwrap();
        let base = t.machine().board().ram_base;
        t.write_mem(base + 0x800, &[0x55; 64]).unwrap();
        resto.snapshot_restore(&mut t).unwrap();
        let mut buf = [0u8; 4];
        t.read_mem(base + 0x800, &mut buf).unwrap();
        assert_ne!(buf, [0x55; 4]);
        assert!(t.read_pc().is_ok());
    }

    #[test]
    fn boot_machine_helper_matches_kconfig_layout() {
        // The kconfig render of a board's default partitions must agree
        // with the machine the agent boots on.
        let board = BoardCatalog::qemu_virt_arm();
        let m = boot_machine(
            board.clone(),
            OsKind::NuttX,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        let kconfig = parse_kconfig(&render_kconfig("arm", m.flash().table())).unwrap();
        let table = kconfig.partition_table(board.flash_size).unwrap();
        assert_eq!(&table, m.flash().table());
    }
}
