//! Power-signal liveness (the paper's §6 extension).
//!
//! "We can leverage hardware signals, such as power consumption, to spot
//! spikes/plateaus that indicate liveness issues … These signals can
//! inform EOF to stop unproductive runs and reset quickly." The current
//! probe is an instrument independent of the debug link, so this channel
//! keeps working when the link itself is wedged.
//!
//! Detection logic: a healthy core doing varied work draws *varied*
//! current; a tight spin loop draws a flat plateau; a dead core draws
//! idle current. The watchdog samples the rail across a short window of
//! target run time and classifies.

use eof_dap::DebugTransport;

/// Classification of a power window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerVerdict {
    /// Varied draw: the core is doing real work.
    Active,
    /// Flat non-idle draw: a spin loop / stalled execution.
    Plateau {
        /// The flat level observed, in milliwatts.
        level_mw: f32,
    },
    /// Idle-level draw: the core is dead or held in reset.
    Dead,
}

impl PowerVerdict {
    /// Whether the verdict demands recovery.
    pub fn is_liveness_issue(self) -> bool {
        !matches!(self, PowerVerdict::Active)
    }
}

/// A power-rail watchdog.
#[derive(Debug, Clone)]
pub struct PowerWatchdog {
    /// Samples per window.
    pub window: usize,
    /// Target run cycles between samples.
    pub spacing_cycles: u64,
    /// Draw at or below this level counts as dead (mW).
    pub dead_mw: f32,
    /// Max spread within a window still considered flat (mW).
    pub flat_mw: f32,
    checks: u64,
    plateaus: u64,
    deads: u64,
}

impl Default for PowerWatchdog {
    fn default() -> Self {
        PowerWatchdog {
            window: 8,
            spacing_cycles: 32,
            dead_mw: 2.0,
            flat_mw: 1.5,
            checks: 0,
            plateaus: 0,
            deads: 0,
        }
    }
}

impl PowerWatchdog {
    /// A watchdog with default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify a pre-collected sample window.
    pub fn classify(&self, samples: &[f32]) -> PowerVerdict {
        if samples.is_empty() {
            return PowerVerdict::Dead;
        }
        let max = samples.iter().copied().fold(f32::MIN, f32::max);
        let min = samples.iter().copied().fold(f32::MAX, f32::min);
        if max <= self.dead_mw {
            return PowerVerdict::Dead;
        }
        if max - min <= self.flat_mw {
            return PowerVerdict::Plateau { level_mw: max };
        }
        PowerVerdict::Active
    }

    /// Run one check: let the target run in short bursts, sampling the
    /// rail between bursts, then classify the window.
    pub fn check(&mut self, pipe: &mut DebugTransport) -> PowerVerdict {
        self.checks += 1;
        let mut samples = Vec::with_capacity(self.window);
        for _ in 0..self.window {
            samples.push(pipe.sample_power());
            let _ = pipe.continue_until_halt(self.spacing_cycles);
        }
        let verdict = self.classify(&samples);
        match verdict {
            PowerVerdict::Plateau { .. } => self.plateaus += 1,
            PowerVerdict::Dead => self.deads += 1,
            PowerVerdict::Active => {}
        }
        verdict
    }

    /// Checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Plateaus detected.
    pub fn plateaus(&self) -> u64 {
        self.plateaus
    }

    /// Dead windows detected.
    pub fn deads(&self) -> u64 {
        self.deads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_agent::boot_machine;
    use eof_coverage::InstrumentMode;
    use eof_dap::LinkConfig;
    use eof_hal::{BoardCatalog, FaultPlan, InjectedFault};
    use eof_rtos::image::ImageProfile;
    use eof_rtos::OsKind;

    fn transport() -> DebugTransport {
        let m = boot_machine(
            BoardCatalog::qemu_virt_arm(),
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        DebugTransport::attach(m, LinkConfig::default())
    }

    #[test]
    fn classify_windows() {
        let w = PowerWatchdog::new();
        assert_eq!(w.classify(&[1.0, 1.1, 1.2]), PowerVerdict::Dead);
        assert!(matches!(
            w.classify(&[24.0, 24.0, 24.0]),
            PowerVerdict::Plateau { .. }
        ));
        assert_eq!(w.classify(&[18.0, 25.0, 21.0, 30.0]), PowerVerdict::Active);
        assert_eq!(w.classify(&[]), PowerVerdict::Dead);
    }

    #[test]
    fn healthy_target_reads_active() {
        let mut t = transport();
        let _ = t.continue_until_halt(500);
        let mut w = PowerWatchdog::new();
        assert_eq!(w.check(&mut t), PowerVerdict::Active);
        assert_eq!(w.plateaus(), 0);
    }

    #[test]
    fn frozen_target_reads_plateau() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(10, InjectedFault::FreezeFirmware));
        let _ = t.continue_until_halt(500);
        let mut w = PowerWatchdog::new();
        let verdict = w.check(&mut t);
        assert!(verdict.is_liveness_issue(), "{verdict:?}");
        assert!(matches!(verdict, PowerVerdict::Plateau { .. }));
    }

    #[test]
    fn dead_core_reads_dead_even_with_link_down() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(10, InjectedFault::KillCore));
        let _ = t.continue_until_halt(500);
        // The debug link times out…
        assert!(t.read_pc().is_err());
        // …but the power probe still answers, and says dead.
        let mut w = PowerWatchdog::new();
        assert_eq!(w.check(&mut t), PowerVerdict::Dead);
        assert_eq!(w.deads(), 1);
    }
}
