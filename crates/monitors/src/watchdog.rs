//! The liveness watchdogs of Algorithm 1.
//!
//! Two host-side checks over the debug link, requiring no target
//! instrumentation:
//!
//! 1. **connection timeout** — any debug operation timing out means the
//!    target failed to boot or is entirely unresponsive (lines 4–5);
//! 2. **PC stall** — if resuming execution does not change the program
//!    counter, the core cannot make progress (lines 6–10).
//!
//! `check()` returns [`Liveness`]; anything but [`Liveness::Alive`]
//! routes to [`crate::restore::StateRestoration`].

use eof_dap::DebugTransport;

/// Result of one liveness check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Target is responsive and making progress.
    Alive,
    /// The debug connection timed out (boot failure / dead core).
    ConnectionTimeout,
    /// The PC did not move between checks (execution stall).
    Stalled {
        /// The stuck program counter.
        pc: u32,
    },
}

impl Liveness {
    /// `LivenessWatchDog()`'s boolean: is the system healthy?
    pub fn is_alive(self) -> bool {
        self == Liveness::Alive
    }
}

/// Algorithm 1's `LivenessWatchDog` state (`LastPC ← INT_MIN`).
#[derive(Debug, Clone, Default)]
pub struct LivenessWatchdog {
    last_pc: Option<u32>,
    checks: u64,
    timeouts: u64,
    stalls: u64,
}

impl LivenessWatchdog {
    /// Fresh watchdog with no PC history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run one check over the debug pipe. Mirrors Algorithm 1 lines
    /// 3–11, with one practical refinement: between observations the
    /// target is *resumed briefly*, so a healthy-but-halted target (for
    /// example one sitting at a sync breakpoint) is not misread as
    /// stalled.
    pub fn check(&mut self, pipe: &mut DebugTransport) -> Liveness {
        self.checks += 1;
        // ConnectionTimeout(DebugPipe)?
        let pc = match pipe.read_pc() {
            Ok(pc) => pc,
            Err(e) if e.is_connection_loss() => {
                self.timeouts += 1;
                self.last_pc = None;
                return Liveness::ConnectionTimeout;
            }
            Err(_) => {
                // A non-connection error still means no PC observation;
                // treat as unresponsive.
                self.timeouts += 1;
                self.last_pc = None;
                return Liveness::ConnectionTimeout;
            }
        };
        match self.last_pc {
            None => {
                // LastPC = INT_MIN: first observation only records.
                self.last_pc = Some(pc);
                Liveness::Alive
            }
            Some(last) if last == pc => {
                // -exec-continue failed to change the PC?  Give the core
                // a short run first; only a PC frozen across a genuine
                // resume is a stall. A breakpoint re-hit counts as
                // progress — the core executed its loop and came back.
                use eof_dap::LinkEvent;
                match pipe.continue_until_halt(64) {
                    Ok(LinkEvent::BreakpointHit { pc: hit }) => {
                        self.last_pc = Some(hit);
                        Liveness::Alive
                    }
                    Ok(LinkEvent::WatchdogReset) => {
                        self.last_pc = None;
                        Liveness::Alive
                    }
                    Ok(LinkEvent::TargetDead) | Err(_) => {
                        self.timeouts += 1;
                        self.last_pc = None;
                        Liveness::ConnectionTimeout
                    }
                    Ok(LinkEvent::StillRunning) => match pipe.read_pc() {
                        Ok(pc2) if pc2 == pc => {
                            self.stalls += 1;
                            self.last_pc = None;
                            Liveness::Stalled { pc }
                        }
                        Ok(pc2) => {
                            self.last_pc = Some(pc2);
                            Liveness::Alive
                        }
                        Err(_) => {
                            self.timeouts += 1;
                            self.last_pc = None;
                            Liveness::ConnectionTimeout
                        }
                    },
                }
            }
            Some(_) => {
                self.last_pc = Some(pc);
                Liveness::Alive
            }
        }
    }

    /// Reset PC history (after a restoration).
    pub fn reset(&mut self) {
        self.last_pc = None;
    }

    /// Total checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Connection timeouts observed.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Stalls observed.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_agent::boot_machine;
    use eof_coverage::InstrumentMode;
    use eof_dap::LinkConfig;
    use eof_hal::{BoardCatalog, FaultPlan, InjectedFault};
    use eof_rtos::image::ImageProfile;
    use eof_rtos::OsKind;

    fn transport() -> DebugTransport {
        let m = boot_machine(
            BoardCatalog::qemu_virt_arm(),
            OsKind::FreeRtos,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        DebugTransport::attach(m, LinkConfig::default())
    }

    #[test]
    fn healthy_target_is_alive() {
        let mut t = transport();
        let mut w = LivenessWatchdog::new();
        for _ in 0..5 {
            let _ = t.continue_until_halt(500);
            assert_eq!(w.check(&mut t), Liveness::Alive);
        }
        assert_eq!(w.stalls(), 0);
        assert_eq!(w.timeouts(), 0);
    }

    #[test]
    fn dead_core_times_out() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(0, InjectedFault::KillCore));
        let _ = t.continue_until_halt(100);
        let mut w = LivenessWatchdog::new();
        assert_eq!(w.check(&mut t), Liveness::ConnectionTimeout);
        assert_eq!(w.timeouts(), 1);
    }

    #[test]
    fn frozen_firmware_is_stalled() {
        let mut t = transport();
        t.machine_mut()
            .set_fault_plan(FaultPlan::none().at(10, InjectedFault::FreezeFirmware));
        let _ = t.continue_until_halt(500);
        let mut w = LivenessWatchdog::new();
        // First check records the PC; second detects the stall.
        assert_eq!(w.check(&mut t), Liveness::Alive);
        let verdict = w.check(&mut t);
        assert!(matches!(verdict, Liveness::Stalled { .. }), "{verdict:?}");
        assert_eq!(w.stalls(), 1);
    }

    #[test]
    fn halted_at_breakpoint_is_not_a_stall() {
        let mut t = transport();
        let main = t.symbol("executor_main").unwrap();
        t.set_breakpoint(main).unwrap();
        let _ = t.continue_until_halt(10_000);
        let mut w = LivenessWatchdog::new();
        assert_eq!(w.check(&mut t), Liveness::Alive);
        // The watchdog's verification resume moves the PC off the
        // breakpoint, so a healthy looping target stays Alive.
        assert_eq!(w.check(&mut t), Liveness::Alive);
        assert_eq!(w.stalls(), 0);
    }

    #[test]
    fn reset_clears_history() {
        let mut t = transport();
        let mut w = LivenessWatchdog::new();
        let _ = w.check(&mut t);
        w.reset();
        // After reset, the next check is a first observation again.
        assert_eq!(w.check(&mut t), Liveness::Alive);
    }
}
