//! Build-configuration parsing: the partition table source.
//!
//! Algorithm 1's `StateRestoration` begins with
//! `PartitionMap ← GetPartitionTable(KConfig)`: the memory partition
//! table is "a configuration file supplied by the developer" (§4.4.2).
//! This module reads (and writes) that file in the familiar
//! `CONFIG_…=value` kconfig style:
//!
//! ```text
//! CONFIG_ARCH="arm"
//! CONFIG_PARTITION_BOOTLOADER_OFFSET=0x0
//! CONFIG_PARTITION_BOOTLOADER_SIZE=0x10000
//! CONFIG_PARTITION_KERNEL_OFFSET=0x10000
//! CONFIG_PARTITION_KERNEL_SIZE=0x3d0000
//! ```

use eof_hal::{HalError, Partition, PartitionTable};
use std::collections::BTreeMap;

/// A parsed build configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KConfig {
    /// Raw `CONFIG_` keys and values (quotes stripped).
    pub values: BTreeMap<String, String>,
}

impl KConfig {
    /// Look up a raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Extract the partition table (Algorithm 1's `GetPartitionTable`).
    pub fn partition_table(&self, flash_size: u32) -> Result<PartitionTable, HalError> {
        let mut parts = Vec::new();
        for (key, value) in &self.values {
            let Some(rest) = key.strip_prefix("CONFIG_PARTITION_") else {
                continue;
            };
            let Some(name) = rest.strip_suffix("_OFFSET") else {
                continue;
            };
            let offset = parse_num(value).ok_or_else(|| {
                HalError::BadPartitionLayout(format!("bad offset for {name}: {value:?}"))
            })?;
            let size_key = format!("CONFIG_PARTITION_{name}_SIZE");
            let size = self
                .get(&size_key)
                .and_then(parse_num_ref)
                .ok_or_else(|| HalError::BadPartitionLayout(format!("missing/bad {size_key}")))?;
            parts.push(Partition::new(name.to_lowercase(), offset, size));
        }
        PartitionTable::new(parts, flash_size)
    }
}

fn parse_num(s: &str) -> Option<u32> {
    parse_num_ref(s)
}

fn parse_num_ref(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parse kconfig text. Unknown lines (`# comments`, blanks) are skipped;
/// malformed `CONFIG_` lines are an error.
pub fn parse_kconfig(text: &str) -> Result<KConfig, HalError> {
    let mut cfg = KConfig::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(HalError::BadPartitionLayout(format!(
                "kconfig line {}: missing '=' in {line:?}",
                i + 1
            )));
        };
        if !key.starts_with("CONFIG_") {
            return Err(HalError::BadPartitionLayout(format!(
                "kconfig line {}: key {key:?} lacks CONFIG_ prefix",
                i + 1
            )));
        }
        let value = value.trim().trim_matches('"');
        cfg.values.insert(key.trim().to_string(), value.to_string());
    }
    Ok(cfg)
}

/// Render a board's partition layout as kconfig text — what a target's
/// build system would have produced for EOF to read.
pub fn render_kconfig(arch: &str, table: &PartitionTable) -> String {
    let mut out = String::new();
    out.push_str("# Generated build configuration\n");
    out.push_str(&format!("CONFIG_ARCH=\"{arch}\"\n"));
    for p in table.iter() {
        let name = p.name.to_uppercase();
        out.push_str(&format!("CONFIG_PARTITION_{name}_OFFSET={:#x}\n", p.offset));
        out.push_str(&format!("CONFIG_PARTITION_{name}_SIZE={:#x}\n", p.size));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_hal::BoardCatalog;

    #[test]
    fn parse_extracts_partitions() {
        let cfg = parse_kconfig(
            "# header\n\
             CONFIG_ARCH=\"arm\"\n\
             CONFIG_PARTITION_BOOTLOADER_OFFSET=0x0\n\
             CONFIG_PARTITION_BOOTLOADER_SIZE=0x1000\n\
             CONFIG_PARTITION_KERNEL_OFFSET=0x1000\n\
             CONFIG_PARTITION_KERNEL_SIZE=4096\n",
        )
        .unwrap();
        assert_eq!(cfg.get("CONFIG_ARCH"), Some("arm"));
        let table = cfg.partition_table(0x10_0000).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.get("kernel").unwrap().offset, 0x1000);
        assert_eq!(table.get("kernel").unwrap().size, 4096);
    }

    #[test]
    fn roundtrip_via_render() {
        let board = BoardCatalog::esp32_devkit();
        let table = board.default_partitions();
        let text = render_kconfig("xtensa", &table);
        let cfg = parse_kconfig(&text).unwrap();
        let back = cfg.partition_table(board.flash_size).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_kconfig("CONFIG_NO_EQUALS").is_err());
        assert!(parse_kconfig("NOT_CONFIG=1").is_err());
    }

    #[test]
    fn missing_size_is_error() {
        let cfg = parse_kconfig("CONFIG_PARTITION_KERNEL_OFFSET=0x1000\n").unwrap();
        assert!(cfg.partition_table(0x10_0000).is_err());
    }

    #[test]
    fn bad_offset_is_error() {
        let cfg = parse_kconfig(
            "CONFIG_PARTITION_KERNEL_OFFSET=zzz\nCONFIG_PARTITION_KERNEL_SIZE=0x100\n",
        )
        .unwrap();
        assert!(cfg.partition_table(0x10_0000).is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let cfg = parse_kconfig("\n# only comments\n\n").unwrap();
        assert!(cfg.values.is_empty());
        assert!(cfg.partition_table(0x1000).unwrap().is_empty());
    }
}
