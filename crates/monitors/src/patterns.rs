//! A small wildcard pattern language for crash-signature matching.
//!
//! EOF's log monitor matches UART lines against "predefined patterns
//! using regular expressions" (§4.5.2). The signatures actually needed
//! are substring-and-wildcard shaped, so this module implements exactly
//! that: `*` matches any run of characters (including empty), everything
//! else matches literally, and matching is unanchored unless the pattern
//! starts with `^` or ends with `$`.

/// A compiled pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    source: String,
    anchored_start: bool,
    anchored_end: bool,
    parts: Vec<String>,
}

impl Pattern {
    /// Compile a pattern.
    pub fn new(source: &str) -> Self {
        let mut body = source;
        let anchored_start = body.starts_with('^');
        if anchored_start {
            body = &body[1..];
        }
        let anchored_end = body.ends_with('$') && !body.ends_with("\\$");
        if anchored_end {
            body = &body[..body.len() - 1];
        }
        let parts = body.split('*').map(|s| s.replace("\\$", "$")).collect();
        Pattern {
            source: source.to_string(),
            anchored_start,
            anchored_end,
            parts,
        }
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether `line` matches.
    pub fn matches(&self, line: &str) -> bool {
        let mut pos = 0usize;
        for (i, part) in self.parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let first = i == 0;
            let found = if first && self.anchored_start {
                line[pos..].starts_with(part.as_str()).then_some(0)
            } else {
                line[pos..].find(part.as_str())
            };
            match found {
                Some(off) => pos += off + part.len(),
                None => return false,
            }
        }
        if self.anchored_end {
            if let Some(last) = self.parts.iter().rev().find(|p| !p.is_empty()) {
                // The final literal must sit at the end of the line.
                if !line.ends_with(last.as_str()) {
                    return false;
                }
                // And the match found above must be consistent with it.
                return pos <= line.len();
            }
        }
        true
    }
}

/// An ordered set of patterns; the first match wins.
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pattern sources.
    pub fn from_sources<I, S>(sources: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        PatternSet {
            patterns: sources
                .into_iter()
                .map(|s| Pattern::new(s.as_ref()))
                .collect(),
        }
    }

    /// Add a pattern.
    pub fn push(&mut self, source: &str) {
        self.patterns.push(Pattern::new(source));
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// First matching pattern for a line.
    pub fn first_match(&self, line: &str) -> Option<&Pattern> {
        self.patterns.iter().find(|p| p.matches(line))
    }

    /// The crash signatures EOF ships for all supported OSs: kernel
    /// panics, fatal errors, assertion reports and bus-fault banners.
    pub fn default_crash_patterns() -> Self {
        Self::from_sources([
            "*FATAL ERROR*",
            "*Kernel panic*",
            "PANIC:*",
            "*Guru Meditation*",
            "*assertion failed*",
            "*Assertion failed*",
            "*asserted at*",
            "up_assert:*",
            "_assert:*",
            "BUG:*",
            "*bus fault*",
            "*Bus Fault*",
            "*unexpected stop*",
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_substring() {
        let p = Pattern::new("panic");
        assert!(p.matches("Kernel panic at 0x1000"));
        assert!(!p.matches("all good"));
    }

    #[test]
    fn wildcard_spans() {
        let p = Pattern::new("BUG:*serial*");
        assert!(p.matches("BUG: unexpected stop in serial driver"));
        assert!(!p.matches("serial BUG-free"));
    }

    #[test]
    fn anchors() {
        let start = Pattern::new("^E (");
        assert!(start.matches("E (421) part: bad"));
        assert!(!start.matches("LOG E (421)"));
        let end = Pattern::new("failed$");
        assert!(end.matches("assertion failed"));
        assert!(!end.matches("failed assertion"));
    }

    #[test]
    fn star_at_edges() {
        let p = Pattern::new("*panic*");
        assert!(p.matches("panic"));
        assert!(p.matches("a panic b"));
    }

    #[test]
    fn multiple_literals_in_order() {
        let p = Pattern::new("Level:*rt_serial_write*917");
        assert!(p.matches("Level: 1: /path/serial.c : rt_serial_write : 917"));
        assert!(!p.matches("rt_serial_write Level: 917... wrong order? no 917 after"));
    }

    #[test]
    fn default_set_catches_all_os_banners() {
        let set = PatternSet::default_crash_patterns();
        for line in [
            ">>> ZEPHYR FATAL ERROR 4: Kernel panic in z_impl_k_msgq_get",
            "PANIC: NULL dereference in gettimeofday",
            "Guru Meditation Error: LoadProhibited at load_partitions",
            "(obj != object_find(name)) assertion failed at rt_object_init",
            "up_assert: Assertion failed at env_setenv",
            "BUG: unexpected stop: bus fault in _serial_poll_tx",
        ] {
            assert!(set.first_match(line).is_some(), "missed: {line}");
        }
        for line in [
            "I (123) boot: normal startup",
            "heap_4: 65536 bytes at 0x20001000",
            "I sal: socket 0 created (domain 2)",
        ] {
            assert!(set.first_match(line).is_none(), "false positive: {line}");
        }
    }

    #[test]
    fn set_ordering_first_wins() {
        let set = PatternSet::from_sources(["*panic*", "*FATAL*"]);
        let hit = set.first_match("FATAL panic").unwrap();
        assert_eq!(hit.source(), "*panic*");
    }
}
