//! The log monitor: UART stream → crash signatures.
//!
//! EOF "redirects all kernel and user logs to the stdout channel and
//! monitors it for any output that matches predefined patterns"
//! (§4.5.2). The stream arrives in arbitrary chunks over the debug port,
//! so the monitor re-segments lines itself and keeps partial tails
//! across feeds. It catches the bugs whose only signal is an assertion
//! banner (Table 2: bugs #5, #8, #17).

use crate::patterns::PatternSet;

/// One matched crash line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHit {
    /// The full UART line that matched.
    pub line: String,
    /// The pattern source that matched it.
    pub pattern: String,
}

/// A stateful UART-log scanner.
#[derive(Debug, Clone)]
pub struct LogMonitor {
    patterns: PatternSet,
    partial: String,
    hits: Vec<LogHit>,
    lines_scanned: u64,
    /// Recent lines kept for backtrace recovery.
    tail: Vec<String>,
    tail_cap: usize,
}

impl LogMonitor {
    /// A monitor with the default crash-signature set.
    pub fn new() -> Self {
        Self::with_patterns(PatternSet::default_crash_patterns())
    }

    /// A monitor with a custom pattern set.
    pub fn with_patterns(patterns: PatternSet) -> Self {
        LogMonitor {
            patterns,
            partial: String::new(),
            hits: Vec::new(),
            lines_scanned: 0,
            tail: Vec::new(),
            tail_cap: 64,
        }
    }

    /// Feed a chunk of UART bytes; returns hits found in this chunk.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<LogHit> {
        let mut new_hits = Vec::new();
        for &b in bytes {
            if b == b'\n' {
                let line = std::mem::take(&mut self.partial);
                if let Some(hit) = self.scan_line(&line) {
                    new_hits.push(hit);
                }
            } else if b != b'\r' {
                // Tolerate binary garbage: lossy-push as chars.
                self.partial.push(b as char);
            }
        }
        new_hits
    }

    fn scan_line(&mut self, line: &str) -> Option<LogHit> {
        self.lines_scanned += 1;
        self.tail.push(line.to_string());
        if self.tail.len() > self.tail_cap {
            self.tail.remove(0);
        }
        let hit = self.patterns.first_match(line).map(|p| LogHit {
            line: line.to_string(),
            pattern: p.source().to_string(),
        });
        if let Some(h) = &hit {
            self.hits.push(h.clone());
        }
        hit
    }

    /// All hits since construction.
    pub fn hits(&self) -> &[LogHit] {
        &self.hits
    }

    /// Lines scanned since construction.
    pub fn lines_scanned(&self) -> u64 {
        self.lines_scanned
    }

    /// Recent complete lines (newest last), for backtrace recovery.
    pub fn tail(&self) -> &[String] {
        &self.tail
    }

    /// Drop accumulated hits (after the host harvested them).
    pub fn clear_hits(&mut self) {
        self.hits.clear();
    }

    /// Drop the recent-line tail. The fuzzing loop calls this at the
    /// start of each execution so crash attribution never sees banner
    /// lines from a previous test case.
    pub fn clear_tail(&mut self) {
        self.tail.clear();
    }
}

impl Default for LogMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_crash_line() {
        let mut m = LogMonitor::new();
        let hits = m.feed(b"I (1) boot ok\nPANIC: NULL dereference in gettimeofday\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].line.contains("gettimeofday"));
        assert_eq!(m.lines_scanned(), 2);
    }

    #[test]
    fn reassembles_split_lines() {
        let mut m = LogMonitor::new();
        assert!(m.feed(b"Kernel pa").is_empty());
        assert!(m.feed(b"nic in z_impl").is_empty());
        let hits = m.feed(b"_k_msgq_get\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].line.contains("Kernel panic in z_impl_k_msgq_get"));
    }

    #[test]
    fn crlf_normalised() {
        let mut m = LogMonitor::new();
        let hits = m.feed(b"BUG: unexpected stop\r\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, "BUG: unexpected stop");
    }

    #[test]
    fn incomplete_tail_not_scanned() {
        let mut m = LogMonitor::new();
        m.feed(b"PANIC: not yet terminated");
        assert_eq!(m.lines_scanned(), 0);
        assert!(m.hits().is_empty());
    }

    #[test]
    fn tail_keeps_recent_lines() {
        let mut m = LogMonitor::new();
        for i in 0..100 {
            m.feed(format!("line {i}\n").as_bytes());
        }
        assert_eq!(m.tail().len(), 64);
        assert_eq!(m.tail().last().unwrap(), "line 99");
    }

    #[test]
    fn hits_accumulate_and_clear() {
        let mut m = LogMonitor::new();
        m.feed(b"BUG: one\nBUG: two\n");
        assert_eq!(m.hits().len(), 2);
        m.clear_hits();
        assert!(m.hits().is_empty());
    }

    #[test]
    fn binary_garbage_does_not_panic() {
        let mut m = LogMonitor::new();
        m.feed(&[
            0xff, 0xfe, b'\n', 0x00, b'B', b'U', b'G', b':', b' ', b'x', b'\n',
        ]);
        assert_eq!(m.hits().len(), 1);
    }
}
