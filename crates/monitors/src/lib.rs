//! `eof-monitors` — feedback monitors and liveness maintenance.
//!
//! The host side of EOF's observation machinery (paper §4.4 and §4.5.2):
//!
//! * [`patterns`] / [`log_monitor`] — the **log monitor**: scans the
//!   UART stream redirected over the debug port for crash signatures,
//!   using a small in-repo wildcard matcher (no regex dependency — the
//!   pattern language the paper needs is tiny);
//! * [`exception_monitor`] — the **exception monitor**: breakpoints at
//!   each OS's exception and assertion symbols, classification of halt
//!   addresses, and Figure-6-style backtrace recovery from the banner;
//! * [`watchdog`] — the two **liveness watchdogs** of Algorithm 1:
//!   debug-connection timeout and PC-stall detection;
//! * [`kconfig`] / [`restore`] — **state restoration**: partition-table
//!   extraction from the build configuration and checksum-verified
//!   reflash + reboot through the debug port;
//! * [`power`] — the paper's §6 extension: power-rail plateau/dead
//!   detection as a liveness channel independent of the debug link.

pub mod exception_monitor;
pub mod kconfig;
pub mod log_monitor;
pub mod patterns;
pub mod power;
pub mod restore;
pub mod watchdog;

pub use exception_monitor::{parse_backtrace, ExceptionKind, ExceptionMonitor};
pub use kconfig::{parse_kconfig, render_kconfig, KConfig};
pub use log_monitor::{LogHit, LogMonitor};
pub use patterns::{Pattern, PatternSet};
pub use power::{PowerVerdict, PowerWatchdog};
pub use restore::{StateRestoration, REBOOT_SETTLE_SECS, SETTLE_SECS};
pub use watchdog::{Liveness, LivenessWatchdog};
