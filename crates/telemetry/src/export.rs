//! Exporters: Chrome/Perfetto trace, JSONL event journal, and a
//! Prometheus-style text summary.
//!
//! All three render a [`Merged`] set of per-worker registries. The
//! Chrome trace maps each worker (fleet job, in submission order) to one
//! `tid` track, with simulated cycles as the microsecond timebase —
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load it directly and nest spans by containment. The JSONL journal is
//! the lossless form (it keeps wall nanos and event details); the
//! Prometheus text is for scraping dashboards off a results directory.

use crate::registry::{Histogram, Merged};
use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a Chrome trace (`trace.json`): one `X` (complete) event per
/// span, one `i` (instant) event per journal entry, one track per
/// worker. Timestamps are simulated cycles interpreted as microseconds.
pub fn chrome_trace(merged: &Merged) -> String {
    let mut events: Vec<String> = Vec::new();
    for (track, part) in merged.parts.iter().enumerate() {
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {track}, \"args\": {{\"name\": \"worker-{track}\"}}}}"
        ));
        for span in &part.spans {
            events.push(format!(
                "{{\"name\": \"{}\", \"cat\": \"eof\", \"ph\": \"X\", \"pid\": 0, \"tid\": {track}, \"ts\": {}, \"dur\": {}}}",
                json_escape(span.name),
                span.start_cycles,
                span.end_cycles.saturating_sub(span.start_cycles)
            ));
        }
        for ev in &part.events {
            events.push(format!(
                "{{\"name\": \"{}\", \"cat\": \"eof\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": {track}, \"ts\": {}, \"args\": {{\"detail\": \"{}\"}}}}",
                json_escape(ev.name),
                ev.cycles,
                json_escape(&ev.detail)
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Render the JSONL journal: one JSON object per line, lossless (spans
/// keep wall nanos, events keep their detail strings), with final
/// counter/histogram lines per track.
pub fn jsonl_journal(merged: &Merged) -> String {
    let mut out = String::new();
    for (track, part) in merged.parts.iter().enumerate() {
        for span in &part.spans {
            let _ = writeln!(
                out,
                "{{\"track\": {track}, \"type\": \"span\", \"name\": \"{}\", \"start_cycles\": {}, \"end_cycles\": {}, \"wall_ns\": {}}}",
                json_escape(span.name),
                span.start_cycles,
                span.end_cycles,
                span.wall_ns
            );
        }
        for ev in &part.events {
            let _ = writeln!(
                out,
                "{{\"track\": {track}, \"type\": \"event\", \"name\": \"{}\", \"cycles\": {}, \"detail\": \"{}\"}}",
                json_escape(ev.name),
                ev.cycles,
                json_escape(&ev.detail)
            );
        }
        for (name, value) in &part.counters {
            let _ = writeln!(
                out,
                "{{\"track\": {track}, \"type\": \"counter\", \"name\": \"{}\", \"value\": {value}}}",
                json_escape(name)
            );
        }
        if part.spans_dropped > 0 || part.events_dropped > 0 {
            let _ = writeln!(
                out,
                "{{\"track\": {track}, \"type\": \"dropped\", \"spans\": {}, \"events\": {}}}",
                part.spans_dropped, part.events_dropped
            );
        }
    }
    out
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("eof_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn prom_hist(out: &mut String, name: &str, h: &Histogram) {
    let base = prom_name(name);
    let _ = writeln!(out, "# TYPE {base} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        // Bucket i holds values with bit_width == i, i.e. v <= 2^i - 1.
        let le = if i >= 64 {
            "+Inf".to_string()
        } else {
            ((1u128 << i) - 1).to_string()
        };
        let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{base}_sum {}", h.sum);
    let _ = writeln!(out, "{base}_count {}", h.count);
}

/// Render a Prometheus-style text summary of the merged registries.
pub fn prometheus_text(merged: &Merged) -> String {
    let s = merged.summary();
    let mut out = String::new();
    for (name, value) in &s.counters {
        let base = prom_name(name);
        let _ = writeln!(out, "# TYPE {base} counter");
        let _ = writeln!(out, "{base} {value}");
    }
    for (name, h) in &s.hists {
        prom_hist(&mut out, name, h);
    }
    for (name, agg) in &s.spans {
        let base = prom_name(&format!("span.{name}"));
        let _ = writeln!(out, "# TYPE {base}_cycles counter");
        let _ = writeln!(out, "{base}_cycles {}", agg.total_cycles);
        let _ = writeln!(out, "{base}_count {}", agg.count);
    }
    for (name, op) in &s.ops {
        let base = prom_name(&format!("op.{name}"));
        let _ = writeln!(out, "# TYPE {base}_total counter");
        let _ = writeln!(out, "{base}_total {}", op.count);
        let _ = writeln!(out, "{base}_errors {}", op.errors);
        prom_hist(&mut out, &format!("op.{name}.cycles"), &op.cycles);
    }
    let _ = writeln!(out, "eof_telemetry_spans_dropped {}", s.spans_dropped);
    let _ = writeln!(out, "eof_telemetry_events_dropped {}", s.events_dropped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{EventRecord, Registry, SpanRecord};

    fn sample() -> Merged {
        let mut a = Registry::new();
        a.span(SpanRecord {
            name: "exec",
            start_cycles: 100,
            end_cycles: 200,
            wall_ns: 5,
        });
        a.span(SpanRecord {
            name: "exec.translate",
            start_cycles: 110,
            end_cycles: 120,
            wall_ns: 1,
        });
        a.event(EventRecord {
            name: "exec.slow",
            cycles: 150,
            detail: "cycles=1500000 \"quote\"".to_string(),
        });
        a.count("fuzz.execs", 1);
        a.observe("recovery.episode_cycles", 4_000);
        a.op("read_mem", 12, false);
        let mut b = Registry::new();
        b.count("fuzz.execs", 2);
        Merged::from_parts(vec![a, b])
    }

    #[test]
    fn chrome_trace_has_one_track_per_part_and_nests_by_containment() {
        let trace = chrome_trace(&sample());
        assert!(trace.contains("\"tid\": 0"));
        assert!(trace.contains("\"tid\": 1"));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"name\": \"exec.translate\""));
        // The child span is contained in the parent interval.
        assert!(trace.contains("\"ts\": 110, \"dur\": 10"));
        assert!(trace.contains("\"ts\": 100, \"dur\": 100"));
    }

    #[test]
    fn journal_lines_are_json_shaped_and_escape_quotes() {
        let journal = jsonl_journal(&sample());
        for line in journal.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(journal.contains("\\\"quote\\\""));
        assert!(journal.contains("\"wall_ns\": 5"));
    }

    #[test]
    fn prometheus_text_sums_across_parts() {
        let prom = prometheus_text(&sample());
        assert!(prom.contains("eof_fuzz_execs 3"));
        assert!(prom.contains("eof_recovery_episode_cycles_sum 4000"));
        assert!(prom.contains("eof_op_read_mem_total 1"));
    }

    #[test]
    fn snapshot_rung_counters_flow_through_every_exporter() {
        // The exporters are name-generic; this pins that the snapshot
        // rung's counters and the delta-restore spans actually surface,
        // so a rename on either side breaks loudly here.
        let mut r = Registry::new();
        r.count("recovery.rung.snapshot_restore.attempts", 3);
        r.count("recovery.rung.snapshot_restore.successes", 2);
        r.count("restore.snapshot.captures", 1);
        r.observe("restore.snapshot.pages", 17);
        r.span(SpanRecord {
            name: "restore.snapshot",
            start_cycles: 10,
            end_cycles: 60,
            wall_ns: 2,
        });
        let merged = Merged::from_parts(vec![r]);
        let prom = prometheus_text(&merged);
        assert!(prom.contains("eof_recovery_rung_snapshot_restore_attempts 3"));
        assert!(prom.contains("eof_recovery_rung_snapshot_restore_successes 2"));
        assert!(prom.contains("eof_restore_snapshot_captures 1"));
        assert!(prom.contains("eof_restore_snapshot_pages_sum 17"));
        assert!(prom.contains("eof_span_restore_snapshot_cycles 50"));
        let trace = chrome_trace(&merged);
        assert!(trace.contains("\"name\": \"restore.snapshot\""));
        let journal = jsonl_journal(&merged);
        assert!(journal.contains("restore.snapshot"));
    }
}
