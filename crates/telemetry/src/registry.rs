//! The per-worker telemetry store and its deterministic merge.
//!
//! A [`Registry`] records everything one campaign observes: monotonic
//! counters, log-scale histograms, per-operation stats, completed spans
//! and journal events. Every quantity lives in the *simulated-cycle*
//! domain except span wall-nanos, which are auxiliary profiling data and
//! are excluded from [`TelemetrySummary`] — the summary is a pure
//! function of the campaign's inputs, so identical seeds produce
//! byte-identical summaries regardless of host speed or worker count.

use std::collections::BTreeMap;

/// Detailed span records kept per registry; aggregates keep counting
/// past the cap, so summaries stay exact — only trace detail truncates.
pub const MAX_SPANS: usize = 100_000;

/// Detailed journal events kept per registry.
pub const MAX_EVENTS: usize = 10_000;

/// A log₂-bucketed histogram of non-negative integer samples.
///
/// Bucket `i` holds samples whose value `v` satisfies `2^(i-1) < v ≤
/// 2^i - 1`... more precisely bucket index is `bit_width(v)` (0 for
/// v = 0), i.e. 65 buckets cover the whole `u64` range. Count, sum and
/// max are exact, so consistency checks against independently-kept
/// counters can be equality checks, not approximations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total samples observed.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
    /// Log₂ buckets, indexed by `bit_width(value)`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.buckets[bit_width(value)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn absorb(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros`.
pub fn bit_width(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Aggregate over all spans sharing one name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed spans recorded under this name.
    pub count: u64,
    /// Total simulated cycles across those spans.
    pub total_cycles: u64,
    /// Longest single span, in cycles.
    pub max_cycles: u64,
}

impl SpanAgg {
    fn absorb(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_cycles += other.total_cycles;
        self.max_cycles = self.max_cycles.max(other.max_cycles);
    }
}

/// Per-operation stats (debug-port ops and other request-shaped work).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Operations performed.
    pub count: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Cycle-cost distribution.
    pub cycles: Histogram,
}

/// One completed span: a named interval in simulated cycles, with the
/// wall-clock duration as auxiliary (non-deterministic) profiling data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (dot-separated, e.g. `exec.translate`).
    pub name: &'static str,
    /// Enter time, simulated cycles.
    pub start_cycles: u64,
    /// Exit time, simulated cycles.
    pub end_cycles: u64,
    /// Wall-clock duration, nanoseconds. Excluded from summaries.
    pub wall_ns: u64,
}

/// One journal event: a named instant with a free-form detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name (e.g. `exec.slow`, `hal.fault`).
    pub name: &'static str,
    /// When it happened, simulated cycles.
    pub cycles: u64,
    /// Human-readable detail (built lazily; empty when unneeded).
    pub detail: String,
}

/// Everything one campaign (one fleet job) recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Span aggregates by name (exact even past the span cap).
    pub span_aggs: BTreeMap<&'static str, SpanAgg>,
    /// Per-operation stats by op name.
    pub ops: BTreeMap<&'static str, OpStats>,
    /// Detailed spans, capped at [`MAX_SPANS`].
    pub spans: Vec<SpanRecord>,
    /// Journal events, capped at [`MAX_EVENTS`].
    pub events: Vec<EventRecord>,
    /// Spans dropped by the cap (no silent truncation).
    pub spans_dropped: u64,
    /// Events dropped by the cap.
    pub events_dropped: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }

    /// Histogram accessor (None if never touched).
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Record one operation's outcome.
    pub fn op(&mut self, name: &'static str, cycles: u64, failed: bool) {
        let stats = self.ops.entry(name).or_default();
        stats.count += 1;
        if failed {
            stats.errors += 1;
        }
        stats.cycles.observe(cycles);
    }

    /// Record a completed span.
    pub fn span(&mut self, record: SpanRecord) {
        let agg = self.span_aggs.entry(record.name).or_default();
        agg.count += 1;
        let dur = record.end_cycles.saturating_sub(record.start_cycles);
        agg.total_cycles += dur;
        agg.max_cycles = agg.max_cycles.max(dur);
        if self.spans.len() < MAX_SPANS {
            self.spans.push(record);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Record a journal event.
    pub fn event(&mut self, record: EventRecord) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(record);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Deterministic summary of this registry alone.
    pub fn summary(&self) -> TelemetrySummary {
        Merged::from_parts(vec![self.clone()]).summary()
    }
}

/// Several registries merged in a fixed (submission) order — one per
/// fleet job, each becoming one track of the exported trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Merged {
    /// The per-job registries, in submission order (track = index).
    pub parts: Vec<Registry>,
}

impl Merged {
    /// Merge registries in the given order. The order is part of the
    /// determinism contract: benches pass results in submission order,
    /// so `jobs=1` and `jobs=N` produce identical merges.
    pub fn from_parts(parts: Vec<Registry>) -> Self {
        Merged { parts }
    }

    /// The deterministic cross-job summary.
    pub fn summary(&self) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            parts: self.parts.len(),
            ..TelemetrySummary::default()
        };
        for part in &self.parts {
            for (&name, &v) in &part.counters {
                *s.counters.entry(name).or_insert(0) += v;
            }
            for (&name, h) in &part.hists {
                s.hists.entry(name).or_default().absorb(h);
            }
            for (&name, agg) in &part.span_aggs {
                s.spans.entry(name).or_default().absorb(agg);
            }
            for (&name, op) in &part.ops {
                let dst = s.ops.entry(name).or_default();
                dst.count += op.count;
                dst.errors += op.errors;
                dst.cycles.absorb(&op.cycles);
            }
            s.spans_dropped += part.spans_dropped;
            s.events_dropped += part.events_dropped;
        }
        s
    }
}

/// The deterministic merged view: counters, histogram and span
/// aggregates summed across workers. Contains no wall-clock data, so it
/// is a pure function of the campaign inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Registries merged.
    pub parts: usize,
    /// Summed counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Merged histograms.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Merged span aggregates.
    pub spans: BTreeMap<&'static str, SpanAgg>,
    /// Merged per-op stats.
    pub ops: BTreeMap<&'static str, OpStats>,
    /// Total spans dropped by per-registry caps.
    pub spans_dropped: u64,
    /// Total events dropped by per-registry caps.
    pub events_dropped: u64,
}

fn hist_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("[{i}, {c}]"))
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
        h.count,
        h.sum,
        h.max,
        buckets.join(", ")
    )
}

impl TelemetrySummary {
    /// Render as a deterministic JSON object (keys in BTreeMap order,
    /// fixed field order, no floats except derived means with fixed
    /// precision — byte-identical for identical campaigns).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(k, h)| format!("\"{k}\": {}", hist_json(h)))
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(k, a)| {
                format!(
                    "\"{k}\": {{\"count\": {}, \"total_cycles\": {}, \"max_cycles\": {}}}",
                    a.count, a.total_cycles, a.max_cycles
                )
            })
            .collect();
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|(k, o)| {
                format!(
                    "\"{k}\": {{\"count\": {}, \"errors\": {}, \"cycles\": {}}}",
                    o.count,
                    o.errors,
                    hist_json(&o.cycles)
                )
            })
            .collect();
        format!(
            "{{\"parts\": {}, \"counters\": {{{}}}, \"histograms\": {{{}}}, \"spans\": {{{}}}, \"ops\": {{{}}}, \"dropped\": {{\"spans\": {}, \"events\": {}}}}}",
            self.parts,
            counters.join(", "),
            hists.join(", "),
            spans.join(", "),
            ops.join(", "),
            self.spans_dropped,
            self.events_dropped,
        )
    }
}

// ---------------------------------------------------------------------------
// Cross-process merge
// ---------------------------------------------------------------------------

/// Intern a summary key parsed from another process's JSON. Registry
/// keys are `&'static str` by design (recording sites use literals);
/// keys crossing a process boundary arrive as owned strings and are
/// leaked once into a global cache — the key universe is the fixed set
/// of instrumentation names, so the leak is bounded and each name is
/// leaked at most once.
fn intern(name: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<std::collections::BTreeSet<&'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(std::collections::BTreeSet::new()))
        .lock()
        .expect("key intern cache");
    if let Some(&s) = cache.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    cache.insert(leaked);
    leaked
}

impl TelemetrySummary {
    /// Fold another summary into this one — the cross-process merge.
    /// Summing is commutative on every field, so coordinator-side
    /// absorption of per-worker summaries (in any arrival order)
    /// matches a single-process [`Merged::from_parts`] over the same
    /// registries.
    pub fn absorb(&mut self, other: &TelemetrySummary) {
        self.parts += other.parts;
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, h) in &other.hists {
            self.hists.entry(name).or_default().absorb(h);
        }
        for (&name, agg) in &other.spans {
            self.spans.entry(name).or_default().absorb(agg);
        }
        for (&name, op) in &other.ops {
            let dst = self.ops.entry(name).or_default();
            dst.count += op.count;
            dst.errors += op.errors;
            dst.cycles.absorb(&op.cycles);
        }
        self.spans_dropped += other.spans_dropped;
        self.events_dropped += other.events_dropped;
    }

    /// Parse a summary previously rendered by [`Self::to_json`] — how a
    /// coordinator reads a worker process's summary back. The parser
    /// accepts exactly the deterministic shape `to_json` emits (flat
    /// keys, no string escapes, integer values), and round-trips it:
    /// `from_json(s.to_json()) == s`.
    pub fn from_json(text: &str) -> Result<TelemetrySummary, String> {
        let mut p = JsonCursor::new(text);
        let mut s = TelemetrySummary::default();
        p.object(|p, key| {
            match key {
                "parts" => s.parts = p.integer()? as usize,
                "counters" => p.object(|p, k| {
                    s.counters.insert(intern(k), p.integer()?);
                    Ok(())
                })?,
                "histograms" => p.object(|p, k| {
                    let h = p.histogram()?;
                    s.hists.insert(intern(k), h);
                    Ok(())
                })?,
                "spans" => p.object(|p, k| {
                    let mut agg = SpanAgg::default();
                    p.object(|p, f| {
                        match f {
                            "count" => agg.count = p.integer()?,
                            "total_cycles" => agg.total_cycles = p.integer()?,
                            "max_cycles" => agg.max_cycles = p.integer()?,
                            other => return Err(format!("unknown span field {other:?}")),
                        }
                        Ok(())
                    })?;
                    s.spans.insert(intern(k), agg);
                    Ok(())
                })?,
                "ops" => p.object(|p, k| {
                    let mut op = OpStats::default();
                    p.object(|p, f| {
                        match f {
                            "count" => op.count = p.integer()?,
                            "errors" => op.errors = p.integer()?,
                            "cycles" => op.cycles = p.histogram()?,
                            other => return Err(format!("unknown op field {other:?}")),
                        }
                        Ok(())
                    })?;
                    s.ops.insert(intern(k), op);
                    Ok(())
                })?,
                "dropped" => p.object(|p, f| {
                    match f {
                        "spans" => s.spans_dropped = p.integer()?,
                        "events" => s.events_dropped = p.integer()?,
                        other => return Err(format!("unknown dropped field {other:?}")),
                    }
                    Ok(())
                })?,
                other => return Err(format!("unknown summary field {other:?}")),
            }
            Ok(())
        })?;
        p.end()?;
        Ok(s)
    }
}

/// Minimal cursor over the fixed JSON dialect [`TelemetrySummary::
/// to_json`] emits: objects, arrays, unescaped string keys and `u64`
/// integers. Not a general JSON parser on purpose — anything outside
/// the emitted shape is an error, so schema drift is caught loudly.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(text: &'a str) -> Self {
        JsonCursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(|&b| b as char)
            )),
        }
    }

    fn peek(&mut self, byte: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&byte)
    }

    /// An unescaped string literal.
    fn string(&mut self) -> Result<&'a str, String> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return Err(format!("escape in key at byte {}", self.pos));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("bad utf8 in key: {e}"))?;
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn integer(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    /// `{ "key": <value parsed by f>, ... }` — `f` must consume the
    /// value for each key it is handed.
    fn object(
        &mut self,
        mut f: impl FnMut(&mut Self, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.eat(b'{')?;
        if self.peek(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?.to_string();
            self.eat(b':')?;
            f(self, &key)?;
            if self.peek(b',') {
                self.pos += 1;
                continue;
            }
            return self.eat(b'}');
        }
    }

    /// The histogram shape `hist_json` emits.
    fn histogram(&mut self) -> Result<Histogram, String> {
        let mut h = Histogram::default();
        self.object(|p, f| {
            match f {
                "count" => h.count = p.integer()?,
                "sum" => h.sum = p.integer()?,
                "max" => h.max = p.integer()?,
                "buckets" => {
                    p.eat(b'[')?;
                    if p.peek(b']') {
                        p.pos += 1;
                        return Ok(());
                    }
                    loop {
                        p.eat(b'[')?;
                        let idx = p.integer()? as usize;
                        p.eat(b',')?;
                        let count = p.integer()?;
                        p.eat(b']')?;
                        *h.buckets
                            .get_mut(idx)
                            .ok_or_else(|| format!("bucket index {idx} out of range"))? = count;
                        if p.peek(b',') {
                            p.pos += 1;
                            continue;
                        }
                        return p.eat(b']');
                    }
                }
                other => return Err(format!("unknown histogram field {other:?}")),
            }
            Ok(())
        })?;
        Ok(h)
    }

    /// Assert the input is fully consumed.
    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_exact_moments() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[11], 1); // 1024
        assert_eq!(h.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn span_cap_drops_detail_but_not_aggregates() {
        let mut r = Registry::new();
        for i in 0..(MAX_SPANS + 10) {
            r.span(SpanRecord {
                name: "s",
                start_cycles: i as u64,
                end_cycles: i as u64 + 2,
                wall_ns: 0,
            });
        }
        assert_eq!(r.spans.len(), MAX_SPANS);
        assert_eq!(r.spans_dropped, 10);
        let agg = r.span_aggs["s"];
        assert_eq!(agg.count, (MAX_SPANS + 10) as u64);
        assert_eq!(agg.total_cycles, 2 * (MAX_SPANS + 10) as u64);
    }

    #[test]
    fn merge_is_order_independent_for_sums_and_summary_is_deterministic() {
        let mut a = Registry::new();
        a.count("x", 3);
        a.observe("h", 7);
        let mut b = Registry::new();
        b.count("x", 4);
        b.observe("h", 900);
        let ab = Merged::from_parts(vec![a.clone(), b.clone()]).summary();
        let ba = Merged::from_parts(vec![b, a]).summary();
        assert_eq!(ab.counters["x"], 7);
        assert_eq!(ab.to_json(), ba.to_json());
        assert!(ab.to_json().contains("\"x\": 7"));
    }

    fn sample_summary(salt: u64) -> TelemetrySummary {
        let mut r = Registry::new();
        r.count("exec.total", 10 + salt);
        r.count("fleet.jobs", 1);
        r.observe("exec.cycles", 512 + salt);
        r.observe("exec.cycles", 3);
        r.op("dap.read_word", 40, false);
        r.op("dap.read_word", 55, true);
        r.span(SpanRecord {
            name: "campaign",
            start_cycles: 0,
            end_cycles: 1000 + salt,
            wall_ns: 42,
        });
        r.summary()
    }

    #[test]
    fn summary_json_round_trips_across_a_process_boundary() {
        let s = sample_summary(7);
        let back = TelemetrySummary::from_json(&s.to_json()).expect("parse own output");
        assert_eq!(back, s);
        assert_eq!(back.to_json(), s.to_json(), "byte-stable round trip");
    }

    #[test]
    fn from_json_rejects_foreign_shapes() {
        for bad in [
            "",
            "{",
            "{\"parts\": 1}trailing",
            "{\"unknown_field\": 3}",
            "{\"parts\": -1}",
            "{\"counters\": {\"a\": 1}}{",
        ] {
            assert!(
                TelemetrySummary::from_json(bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn absorb_matches_single_process_merge() {
        // Coordinator-side: absorb per-worker summaries (as they would
        // arrive over a process boundary, via JSON)...
        let a = sample_summary(1);
        let b = sample_summary(2);
        let mut absorbed = TelemetrySummary::from_json(&a.to_json()).unwrap();
        absorbed.absorb(&TelemetrySummary::from_json(&b.to_json()).unwrap());

        // ...must equal a single-process merge of the same registries.
        let mut ra = Registry::new();
        ra.count("exec.total", 11);
        ra.count("fleet.jobs", 1);
        ra.observe("exec.cycles", 513);
        ra.observe("exec.cycles", 3);
        ra.op("dap.read_word", 40, false);
        ra.op("dap.read_word", 55, true);
        ra.span(SpanRecord {
            name: "campaign",
            start_cycles: 0,
            end_cycles: 1001,
            wall_ns: 42,
        });
        let mut rb = Registry::new();
        rb.count("exec.total", 12);
        rb.count("fleet.jobs", 1);
        rb.observe("exec.cycles", 514);
        rb.observe("exec.cycles", 3);
        rb.op("dap.read_word", 40, false);
        rb.op("dap.read_word", 55, true);
        rb.span(SpanRecord {
            name: "campaign",
            start_cycles: 0,
            end_cycles: 1002,
            wall_ns: 99, // wall clock must not matter
        });
        let merged = Merged::from_parts(vec![ra, rb]).summary();
        assert_eq!(absorbed, merged);
        // And absorb is order-insensitive.
        let mut reversed = sample_summary(2);
        reversed.absorb(&sample_summary(1));
        assert_eq!(reversed.to_json(), absorbed.to_json());
    }

    #[test]
    fn summary_json_has_no_wall_data() {
        let mut r = Registry::new();
        r.span(SpanRecord {
            name: "exec",
            start_cycles: 10,
            end_cycles: 30,
            wall_ns: 123_456_789,
        });
        let json = r.summary().to_json();
        assert!(json.contains("\"exec\""));
        assert!(!json.contains("123456789"), "wall nanos leaked: {json}");
    }
}
