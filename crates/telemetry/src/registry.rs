//! The per-worker telemetry store and its deterministic merge.
//!
//! A [`Registry`] records everything one campaign observes: monotonic
//! counters, log-scale histograms, per-operation stats, completed spans
//! and journal events. Every quantity lives in the *simulated-cycle*
//! domain except span wall-nanos, which are auxiliary profiling data and
//! are excluded from [`TelemetrySummary`] — the summary is a pure
//! function of the campaign's inputs, so identical seeds produce
//! byte-identical summaries regardless of host speed or worker count.

use std::collections::BTreeMap;

/// Detailed span records kept per registry; aggregates keep counting
/// past the cap, so summaries stay exact — only trace detail truncates.
pub const MAX_SPANS: usize = 100_000;

/// Detailed journal events kept per registry.
pub const MAX_EVENTS: usize = 10_000;

/// A log₂-bucketed histogram of non-negative integer samples.
///
/// Bucket `i` holds samples whose value `v` satisfies `2^(i-1) < v ≤
/// 2^i - 1`... more precisely bucket index is `bit_width(v)` (0 for
/// v = 0), i.e. 65 buckets cover the whole `u64` range. Count, sum and
/// max are exact, so consistency checks against independently-kept
/// counters can be equality checks, not approximations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total samples observed.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
    /// Log₂ buckets, indexed by `bit_width(value)`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.buckets[bit_width(value)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn absorb(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros`.
pub fn bit_width(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Aggregate over all spans sharing one name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed spans recorded under this name.
    pub count: u64,
    /// Total simulated cycles across those spans.
    pub total_cycles: u64,
    /// Longest single span, in cycles.
    pub max_cycles: u64,
}

impl SpanAgg {
    fn absorb(&mut self, other: &SpanAgg) {
        self.count += other.count;
        self.total_cycles += other.total_cycles;
        self.max_cycles = self.max_cycles.max(other.max_cycles);
    }
}

/// Per-operation stats (debug-port ops and other request-shaped work).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Operations performed.
    pub count: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Cycle-cost distribution.
    pub cycles: Histogram,
}

/// One completed span: a named interval in simulated cycles, with the
/// wall-clock duration as auxiliary (non-deterministic) profiling data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (dot-separated, e.g. `exec.translate`).
    pub name: &'static str,
    /// Enter time, simulated cycles.
    pub start_cycles: u64,
    /// Exit time, simulated cycles.
    pub end_cycles: u64,
    /// Wall-clock duration, nanoseconds. Excluded from summaries.
    pub wall_ns: u64,
}

/// One journal event: a named instant with a free-form detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name (e.g. `exec.slow`, `hal.fault`).
    pub name: &'static str,
    /// When it happened, simulated cycles.
    pub cycles: u64,
    /// Human-readable detail (built lazily; empty when unneeded).
    pub detail: String,
}

/// Everything one campaign (one fleet job) recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Span aggregates by name (exact even past the span cap).
    pub span_aggs: BTreeMap<&'static str, SpanAgg>,
    /// Per-operation stats by op name.
    pub ops: BTreeMap<&'static str, OpStats>,
    /// Detailed spans, capped at [`MAX_SPANS`].
    pub spans: Vec<SpanRecord>,
    /// Journal events, capped at [`MAX_EVENTS`].
    pub events: Vec<EventRecord>,
    /// Spans dropped by the cap (no silent truncation).
    pub spans_dropped: u64,
    /// Events dropped by the cap.
    pub events_dropped: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }

    /// Histogram accessor (None if never touched).
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Record one operation's outcome.
    pub fn op(&mut self, name: &'static str, cycles: u64, failed: bool) {
        let stats = self.ops.entry(name).or_default();
        stats.count += 1;
        if failed {
            stats.errors += 1;
        }
        stats.cycles.observe(cycles);
    }

    /// Record a completed span.
    pub fn span(&mut self, record: SpanRecord) {
        let agg = self.span_aggs.entry(record.name).or_default();
        agg.count += 1;
        let dur = record.end_cycles.saturating_sub(record.start_cycles);
        agg.total_cycles += dur;
        agg.max_cycles = agg.max_cycles.max(dur);
        if self.spans.len() < MAX_SPANS {
            self.spans.push(record);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Record a journal event.
    pub fn event(&mut self, record: EventRecord) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(record);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Deterministic summary of this registry alone.
    pub fn summary(&self) -> TelemetrySummary {
        Merged::from_parts(vec![self.clone()]).summary()
    }
}

/// Several registries merged in a fixed (submission) order — one per
/// fleet job, each becoming one track of the exported trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Merged {
    /// The per-job registries, in submission order (track = index).
    pub parts: Vec<Registry>,
}

impl Merged {
    /// Merge registries in the given order. The order is part of the
    /// determinism contract: benches pass results in submission order,
    /// so `jobs=1` and `jobs=N` produce identical merges.
    pub fn from_parts(parts: Vec<Registry>) -> Self {
        Merged { parts }
    }

    /// The deterministic cross-job summary.
    pub fn summary(&self) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            parts: self.parts.len(),
            ..TelemetrySummary::default()
        };
        for part in &self.parts {
            for (&name, &v) in &part.counters {
                *s.counters.entry(name).or_insert(0) += v;
            }
            for (&name, h) in &part.hists {
                s.hists.entry(name).or_default().absorb(h);
            }
            for (&name, agg) in &part.span_aggs {
                s.spans.entry(name).or_default().absorb(agg);
            }
            for (&name, op) in &part.ops {
                let dst = s.ops.entry(name).or_default();
                dst.count += op.count;
                dst.errors += op.errors;
                dst.cycles.absorb(&op.cycles);
            }
            s.spans_dropped += part.spans_dropped;
            s.events_dropped += part.events_dropped;
        }
        s
    }
}

/// The deterministic merged view: counters, histogram and span
/// aggregates summed across workers. Contains no wall-clock data, so it
/// is a pure function of the campaign inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Registries merged.
    pub parts: usize,
    /// Summed counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Merged histograms.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Merged span aggregates.
    pub spans: BTreeMap<&'static str, SpanAgg>,
    /// Merged per-op stats.
    pub ops: BTreeMap<&'static str, OpStats>,
    /// Total spans dropped by per-registry caps.
    pub spans_dropped: u64,
    /// Total events dropped by per-registry caps.
    pub events_dropped: u64,
}

fn hist_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("[{i}, {c}]"))
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
        h.count,
        h.sum,
        h.max,
        buckets.join(", ")
    )
}

impl TelemetrySummary {
    /// Render as a deterministic JSON object (keys in BTreeMap order,
    /// fixed field order, no floats except derived means with fixed
    /// precision — byte-identical for identical campaigns).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(k, h)| format!("\"{k}\": {}", hist_json(h)))
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(k, a)| {
                format!(
                    "\"{k}\": {{\"count\": {}, \"total_cycles\": {}, \"max_cycles\": {}}}",
                    a.count, a.total_cycles, a.max_cycles
                )
            })
            .collect();
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|(k, o)| {
                format!(
                    "\"{k}\": {{\"count\": {}, \"errors\": {}, \"cycles\": {}}}",
                    o.count,
                    o.errors,
                    hist_json(&o.cycles)
                )
            })
            .collect();
        format!(
            "{{\"parts\": {}, \"counters\": {{{}}}, \"histograms\": {{{}}}, \"spans\": {{{}}}, \"ops\": {{{}}}, \"dropped\": {{\"spans\": {}, \"events\": {}}}}}",
            self.parts,
            counters.join(", "),
            hists.join(", "),
            spans.join(", "),
            ops.join(", "),
            self.spans_dropped,
            self.events_dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_exact_moments() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[11], 1); // 1024
        assert_eq!(h.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn span_cap_drops_detail_but_not_aggregates() {
        let mut r = Registry::new();
        for i in 0..(MAX_SPANS + 10) {
            r.span(SpanRecord {
                name: "s",
                start_cycles: i as u64,
                end_cycles: i as u64 + 2,
                wall_ns: 0,
            });
        }
        assert_eq!(r.spans.len(), MAX_SPANS);
        assert_eq!(r.spans_dropped, 10);
        let agg = r.span_aggs["s"];
        assert_eq!(agg.count, (MAX_SPANS + 10) as u64);
        assert_eq!(agg.total_cycles, 2 * (MAX_SPANS + 10) as u64);
    }

    #[test]
    fn merge_is_order_independent_for_sums_and_summary_is_deterministic() {
        let mut a = Registry::new();
        a.count("x", 3);
        a.observe("h", 7);
        let mut b = Registry::new();
        b.count("x", 4);
        b.observe("h", 900);
        let ab = Merged::from_parts(vec![a.clone(), b.clone()]).summary();
        let ba = Merged::from_parts(vec![b, a]).summary();
        assert_eq!(ab.counters["x"], 7);
        assert_eq!(ab.to_json(), ba.to_json());
        assert!(ab.to_json().contains("\"x\": 7"));
    }

    #[test]
    fn summary_json_has_no_wall_data() {
        let mut r = Registry::new();
        r.span(SpanRecord {
            name: "exec",
            start_cycles: 10,
            end_cycles: 30,
            wall_ns: 123_456_789,
        });
        let json = r.summary().to_json();
        assert!(json.contains("\"exec\""));
        assert!(!json.contains("123456789"), "wall nanos leaked: {json}");
    }
}
