//! # eof-telemetry — deterministic, simulated-clock observability
//!
//! A campaign-scoped telemetry layer for the EOF reproduction. Every
//! instrumented layer (DAP transport, HAL fault machinery, executor,
//! fuzzer, recovery supervisor) records into a thread-local
//! [`Registry`] installed for the duration of one campaign; the fleet
//! then merges per-job registries **in submission order**, so identical
//! seeds produce identical merged telemetry regardless of `EOF_JOBS`.
//!
//! ## Determinism contract
//!
//! - All recorded quantities live in the *simulated-cycle* domain
//!   (`eof_hal::clock`), never wall time — except span `wall_ns`, which
//!   is auxiliary profiling data carried only by the detailed trace and
//!   JSONL journal, and excluded from [`TelemetrySummary`].
//! - A recorder is installed per campaign (per fleet job), not per
//!   thread-pool worker: which OS thread ran a job never affects what
//!   that job records.
//! - Record functions check only "is a recorder installed on this
//!   thread" — they do not re-read the `EOF_TRACE` environment — so a
//!   campaign's telemetry cannot change shape mid-run.
//!
//! ## Cost when disabled
//!
//! With `EOF_TRACE` unset no recorder is ever installed, and every
//! record function is a single thread-local boolean load followed by a
//! predictable branch — no allocation, no formatting (event details are
//! built by closures that never run), no locks.
//!
//! ## Usage
//!
//! ```
//! use eof_telemetry as tel;
//!
//! let guard = tel::begin(); // normally: only when tel::enabled()
//! tel::count("fuzz.execs", 1);
//! let span = tel::span_start("exec", 100);
//! tel::span_end(span, 250);
//! tel::event("exec.slow", 250, || "cycles=150".to_string());
//! let registry = guard.finish();
//! assert_eq!(registry.counter("fuzz.execs"), 1);
//! assert_eq!(registry.span_aggs["exec"].total_cycles, 150);
//! ```

mod export;
mod registry;

pub use export::{chrome_trace, jsonl_journal, prometheus_text};
pub use registry::{
    bit_width, EventRecord, Histogram, Merged, OpStats, Registry, SpanAgg, SpanRecord,
    TelemetrySummary, MAX_EVENTS, MAX_SPANS,
};

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;
use std::time::Instant;

thread_local! {
    /// Fast-path flag: true iff a recorder is installed on this thread.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// The installed recorder, if any.
    static CURRENT: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

/// Whether tracing was requested for this process (`EOF_TRACE` set to
/// anything but `0`/empty). Cached on first call; callers use this to
/// decide whether to [`begin`] a recorder — record functions themselves
/// only consult the thread-local installation state.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("EOF_TRACE") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    })
}

/// Whether a recorder is installed on the current thread.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Scope guard for an installed recorder. Obtain via [`begin`]; call
/// [`RecorderGuard::finish`] to take the recorded [`Registry`]. If the
/// guard is dropped without `finish` (e.g. a campaign panicked), the
/// recorder is uninstalled and its data discarded, so panic-isolated
/// fleet jobs never leak a recorder into the next job on that thread.
#[must_use = "dropping the guard discards recorded telemetry; call finish()"]
pub struct RecorderGuard {
    finished: bool,
}

/// Install a fresh recorder on the current thread.
///
/// # Panics
/// Panics if a recorder is already installed (campaigns don't nest).
pub fn begin() -> RecorderGuard {
    ACTIVE.with(|a| {
        assert!(
            !a.get(),
            "telemetry recorder already installed on this thread"
        );
        a.set(true);
    });
    CURRENT.with(|c| *c.borrow_mut() = Some(Registry::new()));
    RecorderGuard { finished: false }
}

impl RecorderGuard {
    /// Uninstall the recorder and return everything it captured.
    pub fn finish(mut self) -> Registry {
        self.finished = true;
        ACTIVE.with(|a| a.set(false));
        CURRENT
            .with(|c| c.borrow_mut().take())
            .expect("recorder guard live but no registry installed")
    }
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|a| a.set(false));
            CURRENT.with(|c| *c.borrow_mut() = None);
        }
    }
}

/// Run `f` with any installed recorder temporarily uninstalled, then
/// restore it. Auxiliary work that re-executes instrumented layers —
/// replaying a persisted reproducer, minimizing a crash on a fresh
/// executor — would otherwise pollute the campaign's counters and break
/// its drift invariants; wrapping such work in `suspended` keeps the
/// campaign registry describing only the campaign. The recorder is
/// restored even if `f` panics.
pub fn suspended<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Registry>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(reg) = self.0.take() {
                CURRENT.with(|c| *c.borrow_mut() = Some(reg));
                ACTIVE.with(|a| a.set(true));
            }
        }
    }
    let saved = if active() {
        ACTIVE.with(|a| a.set(false));
        CURRENT.with(|c| c.borrow_mut().take())
    } else {
        None
    };
    let _restore = Restore(saved);
    f()
}

#[inline]
fn with_registry(f: impl FnOnce(&mut Registry)) {
    if !active() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(reg) = c.borrow_mut().as_mut() {
            f(reg);
        }
    });
}

/// Add `delta` to the named monotonic counter.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    with_registry(|r| r.count(name, delta));
}

/// Record a histogram sample.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    with_registry(|r| r.observe(name, value));
}

/// Record one operation outcome (count + error flag + cycle cost).
/// Cheaper than a span for hot request-shaped paths like DAP ops.
#[inline]
pub fn op(name: &'static str, cycles: u64, failed: bool) {
    with_registry(|r| r.op(name, cycles, failed));
}

/// An open span. Produced by [`span_start`]; close with [`span_end`].
/// When no recorder is installed the token is inert (`wall` is `None`)
/// and `span_end` is a single branch.
#[derive(Debug)]
pub struct SpanToken {
    name: &'static str,
    start_cycles: u64,
    wall: Option<Instant>,
}

/// Open a span at the given simulated-cycle timestamp.
#[inline]
pub fn span_start(name: &'static str, start_cycles: u64) -> SpanToken {
    let wall = if active() { Some(Instant::now()) } else { None };
    SpanToken {
        name,
        start_cycles,
        wall,
    }
}

/// Close a span at the given simulated-cycle timestamp.
#[inline]
pub fn span_end(token: SpanToken, end_cycles: u64) {
    let Some(started) = token.wall else { return };
    let wall_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    with_registry(|r| {
        r.span(SpanRecord {
            name: token.name,
            start_cycles: token.start_cycles,
            end_cycles,
            wall_ns,
        })
    });
}

/// Record a journal event. The detail string is built lazily: `detail`
/// never runs unless a recorder is installed, so callers may format
/// freely without a disabled-path cost.
#[inline]
pub fn event(name: &'static str, cycles: u64, detail: impl FnOnce() -> String) {
    if !active() {
        return;
    }
    let detail = detail();
    with_registry(|r| {
        r.event(EventRecord {
            name,
            cycles,
            detail,
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_calls_are_noops_without_a_recorder() {
        assert!(!active());
        count("x", 1);
        observe("h", 2);
        op("o", 3, false);
        let t = span_start("s", 0);
        assert!(t.wall.is_none());
        span_end(t, 10);
        let mut ran = false;
        event("e", 0, || {
            ran = true;
            String::new()
        });
        assert!(!ran, "event detail closure ran while disabled");
        // A subsequent recorder sees none of it.
        let guard = begin();
        let reg = guard.finish();
        assert!(reg.counters.is_empty());
        assert!(reg.spans.is_empty());
    }

    #[test]
    fn guard_captures_and_finish_uninstalls() {
        let guard = begin();
        assert!(active());
        count("fuzz.execs", 2);
        count("fuzz.execs", 3);
        observe("lat", 16);
        op("read_mem", 4, true);
        let t = span_start("exec", 100);
        event("note", 150, || "hello".to_string());
        span_end(t, 250);
        let reg = guard.finish();
        assert!(!active());
        assert_eq!(reg.counter("fuzz.execs"), 5);
        assert_eq!(reg.hist("lat").unwrap().count, 1);
        assert_eq!(reg.ops["read_mem"].errors, 1);
        assert_eq!(reg.spans.len(), 1);
        assert_eq!(reg.spans[0].end_cycles, 250);
        assert_eq!(reg.events[0].detail, "hello");
    }

    #[test]
    fn dropped_guard_discards_and_allows_reinstall() {
        {
            let _guard = begin();
            count("x", 1);
            // dropped without finish(), as after a campaign panic
        }
        assert!(!active());
        let guard = begin();
        count("x", 10);
        let reg = guard.finish();
        assert_eq!(reg.counter("x"), 10);
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn nested_begin_panics() {
        let _a = begin();
        let _b = begin();
    }

    #[test]
    fn suspended_hides_records_and_restores_recorder() {
        let guard = begin();
        count("kept", 1);
        let out = suspended(|| {
            assert!(!active(), "recorder visible inside suspended scope");
            count("hidden", 7);
            42
        });
        assert_eq!(out, 42);
        assert!(active(), "recorder not restored");
        count("kept", 1);
        let reg = guard.finish();
        assert_eq!(reg.counter("kept"), 2);
        assert_eq!(reg.counter("hidden"), 0, "suspended work leaked");
    }

    #[test]
    fn suspended_without_recorder_is_a_noop() {
        assert!(!active());
        let out = suspended(|| {
            count("x", 1);
            5
        });
        assert_eq!(out, 5);
        assert!(!active());
    }

    #[test]
    fn suspended_restores_after_panic() {
        let guard = begin();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            suspended(|| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert!(active(), "recorder lost after panic inside suspended");
        count("after", 3);
        assert_eq!(guard.finish().counter("after"), 3);
    }
}
