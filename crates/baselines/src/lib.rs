//! `eof-baselines` — the comparison fuzzers of the paper's evaluation.
//!
//! Tardis, Gustave, GDBFuzz and SHIFT are re-implemented as
//! configurations of the shared `eof-core` engine, differing *only* in
//! the properties the paper attributes to them:
//!
//! | fuzzer | substrate | inputs | feedback | bug detection | liveness |
//! |---|---|---|---|---|---|
//! | EOF | hardware (debug port) | API-aware | coverage + crash/log | exception bp + log monitor | watchdogs + reflash |
//! | EOF-nf | hardware | API-aware | none | exception bp + log monitor | watchdogs + reflash |
//! | Tardis | QEMU (shared memory) | API-aware | coverage | timeout only | reboot only |
//! | Gustave | customised QEMU | API-aware¹ | coverage | timeout only | reboot only |
//! | GDBFuzz | hardware (GDB) | random bytes | sparse (hw breakpoints) | exception bp | timeout, reboot |
//! | SHIFT | hardware (semihosting) | random bytes | coverage (sanitizer) | exception bp | timeout, reboot |
//!
//! ¹ Gustave decodes AFL byte input into guest syscalls through its
//! customised QEMU board, so at the API boundary it behaves API-aware;
//! its AFL lineage shows in the missing crash-signal feedback.
//!
//! [`capabilities`] additionally reproduces Table 1's support matrix.

pub mod capabilities;
pub mod kinds;

pub use capabilities::{supports_cell, table1_matrix, Table1Row, TargetClass, Tool};
pub use kinds::BaselineKind;
