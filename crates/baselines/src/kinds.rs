//! Baseline fuzzer configurations.

use eof_core::config::{DetectionConfig, FuzzerConfig, GenerationMode, RecoveryConfig};
use eof_coverage::InstrumentMode;
use eof_hal::BoardCatalog;
use eof_rtos::image::ImageProfile;
use eof_rtos::OsKind;

/// Tardis's hang patience in simulated seconds (its only detector).
pub const TARDIS_TIMEOUT_SECS: u64 = 15;

/// QEMU TCG execution-cost multiplier relative to silicon.
pub const QEMU_COST: f64 = 1.5;

/// Semihosting trap execution-cost multiplier.
pub const SEMIHOST_COST: f64 = 2.0;

/// Fraction of edges GDBFuzz's rotating hardware breakpoints observe.
pub const GDBFUZZ_OBSERVE: f64 = 0.20;

/// The fuzzers compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// EOF itself.
    Eof,
    /// EOF without feedback guidance.
    EofNf,
    /// Tardis: Syzkaller-derived, QEMU shared-memory, timeout-only.
    Tardis,
    /// Gustave: AFL-derived, customised QEMU, POK-class targets.
    Gustave,
    /// GDBFuzz: on-hardware via GDB, random buffers, breakpoint coverage.
    GdbFuzz,
    /// SHIFT: semi-hosted fuzzing, FreeRTOS application level.
    Shift,
}

impl BaselineKind {
    /// All kinds.
    pub const ALL: [BaselineKind; 6] = [
        BaselineKind::Eof,
        BaselineKind::EofNf,
        BaselineKind::Tardis,
        BaselineKind::Gustave,
        BaselineKind::GdbFuzz,
        BaselineKind::Shift,
    ];

    /// Display name as the paper prints it.
    pub fn display(self) -> &'static str {
        match self {
            BaselineKind::Eof => "EOF",
            BaselineKind::EofNf => "EOF-nf",
            BaselineKind::Tardis => "Tardis",
            BaselineKind::Gustave => "Gustave",
            BaselineKind::GdbFuzz => "GDBFuzz",
            BaselineKind::Shift => "SHIFT",
        }
    }

    /// Whether this fuzzer can run full-system campaigns on an OS
    /// (Table 3's populated cells).
    pub fn supports_full_system(self, os: OsKind) -> bool {
        match self {
            BaselineKind::Eof | BaselineKind::EofNf => true,
            // Tardis supports the four conventional RTOSes, not POK.
            BaselineKind::Tardis => os != OsKind::PokOs,
            // Gustave's customised QEMU board is POK-specific.
            BaselineKind::Gustave => os == OsKind::PokOs,
            // Application-level tools do not do full-system testing.
            BaselineKind::GdbFuzz => false,
            BaselineKind::Shift => false,
        }
    }

    /// Full-system campaign configuration (Table 3 / Figure 7), or
    /// `None` when the tool cannot target the OS.
    pub fn full_system_config(self, os: OsKind, seed: u64) -> Option<FuzzerConfig> {
        if !self.supports_full_system(os) {
            return None;
        }
        let mut cfg = FuzzerConfig::eof(os, seed);
        match self {
            BaselineKind::Eof => {}
            BaselineKind::EofNf => {
                cfg.coverage_feedback = false;
                cfg.crash_feedback = false;
            }
            BaselineKind::Tardis | BaselineKind::Gustave => {
                // Emulation-based: runs on the QEMU board regardless of
                // the hardware target, with TCG's execution cost, a
                // timeout as the only monitor, and reboot-only recovery.
                cfg.board = BoardCatalog::qemu_virt_arm();
                cfg.detection = DetectionConfig::timeout_only(TARDIS_TIMEOUT_SECS);
                cfg.recovery = RecoveryConfig::reboot_only();
                cfg.crash_feedback = false;
                cfg.exec_cost_multiplier = QEMU_COST;
                cfg.exclude_pseudo = true;
            }
            BaselineKind::GdbFuzz | BaselineKind::Shift => unreachable!(),
        }
        Some(cfg)
    }

    /// Whether this fuzzer participates in the application-level
    /// comparison (Table 4 / Figure 8: HTTP server + JSON on FreeRTOS).
    pub fn supports_app_level(self) -> bool {
        matches!(
            self,
            BaselineKind::Eof | BaselineKind::GdbFuzz | BaselineKind::Shift
        )
    }

    /// Application-level configuration: FreeRTOS on the ESP32-class
    /// board, instrumentation strictly confined to the two modules.
    pub fn app_level_config(self, seed: u64) -> Option<FuzzerConfig> {
        if !self.supports_app_level() {
            return None;
        }
        let modules = vec!["json".to_string(), "http".to_string()];
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, seed);
        cfg.board = BoardCatalog::esp32_devkit();
        cfg.profile = ImageProfile::AppLevel;
        cfg.instrument = InstrumentMode::Modules(modules.clone());
        cfg.module_filter = Some(modules);
        match self {
            BaselineKind::Eof => {}
            BaselineKind::GdbFuzz => {
                // Random byte buffers; coverage only through the rotating
                // hardware-breakpoint window; no log monitor; reboot-only.
                cfg.gen_mode = GenerationMode::RandomBytes;
                cfg.cov_observe_fraction = GDBFUZZ_OBSERVE;
                cfg.crash_feedback = false;
                cfg.detection = DetectionConfig {
                    exception_breakpoints: true,
                    log_monitor: false,
                    timeout_only_secs: None,
                };
                cfg.recovery = RecoveryConfig {
                    stall_watchdog: true,
                    reflash: false,
                    power_liveness: false,
                };
            }
            BaselineKind::Shift => {
                // Sanitizer coverage through semihosting (full
                // observation, double execution cost), random buffers.
                cfg.gen_mode = GenerationMode::RandomBytes;
                cfg.exec_cost_multiplier = SEMIHOST_COST;
                cfg.crash_feedback = false;
                cfg.detection = DetectionConfig {
                    exception_breakpoints: true,
                    log_monitor: false,
                    timeout_only_secs: None,
                };
                cfg.recovery = RecoveryConfig {
                    stall_watchdog: true,
                    reflash: false,
                    power_liveness: false,
                };
            }
            _ => unreachable!(),
        }
        Some(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_system_support_matches_paper() {
        // Table 3's rows: EOF & EOF-nf everywhere, Tardis on the four
        // RTOSes, Gustave only on PoK.
        for os in [
            OsKind::FreeRtos,
            OsKind::RtThread,
            OsKind::NuttX,
            OsKind::Zephyr,
        ] {
            assert!(BaselineKind::Eof.supports_full_system(os));
            assert!(BaselineKind::Tardis.supports_full_system(os));
            assert!(!BaselineKind::Gustave.supports_full_system(os));
        }
        assert!(!BaselineKind::Tardis.supports_full_system(OsKind::PokOs));
        assert!(BaselineKind::Gustave.supports_full_system(OsKind::PokOs));
        assert!(!BaselineKind::GdbFuzz.supports_full_system(OsKind::FreeRtos));
    }

    #[test]
    fn tardis_differs_only_where_the_paper_says() {
        let eof = BaselineKind::Eof
            .full_system_config(OsKind::Zephyr, 1)
            .unwrap();
        let tardis = BaselineKind::Tardis
            .full_system_config(OsKind::Zephyr, 1)
            .unwrap();
        // Same generation model and instrumentation.
        assert_eq!(eof.gen_mode, tardis.gen_mode);
        assert_eq!(eof.instrument, tardis.instrument);
        assert!(tardis.coverage_feedback);
        // Different monitors, recovery, substrate.
        assert!(tardis.detection.timeout_only_secs.is_some());
        assert!(!tardis.detection.exception_breakpoints);
        assert!(!tardis.recovery.reflash);
        assert!(tardis.exec_cost_multiplier > 1.0);
        assert_eq!(tardis.board.name, "qemu-virt-arm");
    }

    #[test]
    fn app_level_participants() {
        assert!(BaselineKind::Eof.app_level_config(1).is_some());
        assert!(BaselineKind::GdbFuzz.app_level_config(1).is_some());
        assert!(BaselineKind::Shift.app_level_config(1).is_some());
        assert!(BaselineKind::Tardis.app_level_config(1).is_none());
        let gdb = BaselineKind::GdbFuzz.app_level_config(1).unwrap();
        assert_eq!(gdb.gen_mode, GenerationMode::RandomBytes);
        assert!(gdb.cov_observe_fraction < 1.0);
        assert!(gdb.module_filter.is_some());
        let shift = BaselineKind::Shift.app_level_config(1).unwrap();
        assert_eq!(shift.exec_cost_multiplier, SEMIHOST_COST);
    }

    #[test]
    fn display_names() {
        assert_eq!(BaselineKind::EofNf.display(), "EOF-nf");
        assert_eq!(BaselineKind::GdbFuzz.display(), "GDBFuzz");
    }
}
