//! Table 1: supported targets per tool.
//!
//! The matrix is the paper's, row for row: target systems × architectures
//! × {EOF, GDBFuzz, Tardis, SHIFT}. EOF's cells additionally come with a
//! smoke-boot check in the tests — a supported cell means the simulated
//! board really boots that OS and answers over its debug port.

use eof_hal::Arch;
use eof_rtos::OsKind;

/// The tools compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// This work.
    Eof,
    /// GDBFuzz (ISSTA '23).
    GdbFuzz,
    /// Tardis (TCAD '22).
    Tardis,
    /// SHIFT (USENIX Security '24).
    Shift,
}

impl Tool {
    /// All tools, in the paper's column order.
    pub const ALL: [Tool; 4] = [Tool::Eof, Tool::GdbFuzz, Tool::Tardis, Tool::Shift];

    /// Column label.
    pub fn display(self) -> &'static str {
        match self {
            Tool::Eof => "EOF",
            Tool::GdbFuzz => "GDBFuzz",
            Tool::Tardis => "Tardis",
            Tool::Shift => "SHIFT",
        }
    }
}

/// Row class: an OS, or the application-level row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClass {
    /// A full embedded OS.
    Os(OsKind),
    /// Application-level fuzzing targets.
    Applications,
}

impl TargetClass {
    /// Row label as the paper prints it.
    pub fn display(self) -> &'static str {
        match self {
            TargetClass::Os(OsKind::FreeRtos) => "FreeRTOS",
            TargetClass::Os(OsKind::RtThread) => "RTThread",
            TargetClass::Os(OsKind::NuttX) => "Nuttx",
            TargetClass::Os(OsKind::Zephyr) => "Zephyr",
            TargetClass::Os(OsKind::PokOs) => "PoKOS",
            TargetClass::Applications => "Applications",
        }
    }
}

/// One (target, arch) row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Target class.
    pub target: TargetClass,
    /// Architecture.
    pub arch: Arch,
    /// Support cells in [`Tool::ALL`] order.
    pub cells: [bool; 4],
}

/// Whether a tool supports a (target, arch) cell — the paper's ✓/- data.
pub fn supports_cell(tool: Tool, target: TargetClass, arch: Arch) -> bool {
    use Arch::*;
    match (tool, target, arch) {
        // EOF: FreeRTOS on ARM+RISC-V; RT-Thread/NuttX/Zephyr on ARM;
        // applications on ARM+RISC-V.
        (Tool::Eof, TargetClass::Os(OsKind::FreeRtos), Arm | RiscV) => true,
        (Tool::Eof, TargetClass::Os(OsKind::RtThread), Arm) => true,
        (Tool::Eof, TargetClass::Os(OsKind::NuttX), Arm) => true,
        (Tool::Eof, TargetClass::Os(OsKind::Zephyr), Arm) => true,
        (Tool::Eof, TargetClass::Applications, Arm | RiscV) => true,
        (Tool::Eof, _, _) => false,

        // GDBFuzz: applications only, ARM and MSP430.
        (Tool::GdbFuzz, TargetClass::Applications, Arm | Msp430) => true,
        (Tool::GdbFuzz, _, _) => false,

        // Tardis: the four OSs on ARM, FreeRTOS also on RISC-V; no apps.
        (Tool::Tardis, TargetClass::Os(OsKind::FreeRtos), Arm | RiscV) => true,
        (Tool::Tardis, TargetClass::Os(OsKind::RtThread), Arm) => true,
        (Tool::Tardis, TargetClass::Os(OsKind::NuttX), Arm) => true,
        (Tool::Tardis, TargetClass::Os(OsKind::Zephyr), Arm) => true,
        (Tool::Tardis, _, _) => false,

        // SHIFT: FreeRTOS across four architectures, apps likewise.
        (Tool::Shift, TargetClass::Os(OsKind::FreeRtos), Arm | RiscV | PowerPc | Mips) => true,
        (Tool::Shift, TargetClass::Applications, Arm | RiscV | PowerPc | Mips) => true,
        (Tool::Shift, _, _) => false,
    }
}

/// Build Table 1 in the paper's row order.
pub fn table1_matrix() -> Vec<Table1Row> {
    let rows: Vec<(TargetClass, Arch)> = vec![
        (TargetClass::Os(OsKind::FreeRtos), Arch::Arm),
        (TargetClass::Os(OsKind::FreeRtos), Arch::RiscV),
        (TargetClass::Os(OsKind::FreeRtos), Arch::PowerPc),
        (TargetClass::Os(OsKind::FreeRtos), Arch::Mips),
        (TargetClass::Os(OsKind::RtThread), Arch::Arm),
        (TargetClass::Os(OsKind::NuttX), Arch::Arm),
        (TargetClass::Os(OsKind::Zephyr), Arch::Arm),
        (TargetClass::Applications, Arch::Arm),
        (TargetClass::Applications, Arch::RiscV),
        (TargetClass::Applications, Arch::PowerPc),
        (TargetClass::Applications, Arch::Mips),
        (TargetClass::Applications, Arch::Msp430),
    ];
    rows.into_iter()
        .map(|(target, arch)| {
            let mut cells = [false; 4];
            for (i, tool) in Tool::ALL.into_iter().enumerate() {
                cells[i] = supports_cell(tool, target, arch);
            }
            Table1Row {
                target,
                arch,
                cells,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_cells() {
        // Spot checks against Table 1.
        assert!(supports_cell(
            Tool::Eof,
            TargetClass::Os(OsKind::FreeRtos),
            Arch::Arm
        ));
        assert!(supports_cell(
            Tool::Eof,
            TargetClass::Os(OsKind::FreeRtos),
            Arch::RiscV
        ));
        assert!(!supports_cell(
            Tool::Eof,
            TargetClass::Os(OsKind::FreeRtos),
            Arch::PowerPc
        ));
        assert!(supports_cell(
            Tool::Shift,
            TargetClass::Os(OsKind::FreeRtos),
            Arch::PowerPc
        ));
        assert!(!supports_cell(
            Tool::GdbFuzz,
            TargetClass::Os(OsKind::FreeRtos),
            Arch::Arm
        ));
        assert!(supports_cell(
            Tool::GdbFuzz,
            TargetClass::Applications,
            Arch::Msp430
        ));
        assert!(!supports_cell(
            Tool::Tardis,
            TargetClass::Applications,
            Arch::Arm
        ));
        assert!(!supports_cell(
            Tool::Shift,
            TargetClass::Os(OsKind::RtThread),
            Arch::Arm
        ));
    }

    #[test]
    fn eof_supports_more_os_rows_than_gdbfuzz() {
        let matrix = table1_matrix();
        let count = |i: usize| matrix.iter().filter(|r| r.cells[i]).count();
        let eof = count(0);
        let gdbfuzz = count(1);
        assert!(eof > gdbfuzz);
    }

    #[test]
    fn eof_cells_agree_with_registry() {
        // Every EOF ✓ on an OS row is backed by a board in the registry.
        for row in table1_matrix() {
            if let TargetClass::Os(os) = row.target {
                if row.cells[0] {
                    assert!(
                        eof_rtos::registry::eof_supports(os, row.arch),
                        "{:?} {:?}",
                        os,
                        row.arch
                    );
                }
            }
        }
    }

    #[test]
    fn eof_supported_os_cells_actually_boot() {
        use eof_agent::boot_machine;
        use eof_coverage::InstrumentMode;
        use eof_rtos::image::ImageProfile;
        for row in table1_matrix() {
            let TargetClass::Os(os) = row.target else {
                continue;
            };
            if !row.cells[0] {
                continue;
            }
            let board = eof_rtos::registry::supported_boards(os)
                .into_iter()
                .find(|b| b.arch == row.arch)
                .expect("registry provides a board for the supported arch");
            let mut m = boot_machine(board, os, ImageProfile::FullSystem, &InstrumentMode::None);
            assert!(
                matches!(m.state(), eof_hal::BootState::Running),
                "{os} on {:?} does not boot",
                row.arch
            );
            assert!(m.debug_pc().is_ok());
        }
    }
}
