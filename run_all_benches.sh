#!/bin/bash
# Reproduce every table and figure at the paper's scale.
set -u
cd "$(dirname "$0")"
export EOF_BENCH_HOURS=${EOF_BENCH_HOURS:-24} EOF_BENCH_REPS=${EOF_BENCH_REPS:-5}
# Campaign fan-out: EOF_JOBS workers per batch (empty = all host cores).
export EOF_JOBS=${EOF_JOBS:-}
for b in table1 table2 table3 table4 fig7 fig8 overhead_mem overhead_exec \
         ablate_inputs ablate_watchdogs ablate_validation ablate_sched \
         ablate_power ablate_irq periph fleet trace; do
  echo "=== $b ($(date +%T)) ==="
  cargo run --release -p eof-bench --bin "$b" 2>/dev/null
done
echo "=== all done ($(date +%T)) ==="
