//! Offline stand-in for the `crossbeam` crate: scoped threads with the
//! `crossbeam::thread::scope(|s| s.spawn(|_| ...))` API shape, backed
//! by `std::thread::scope` (stable since Rust 1.63).

/// Scoped threads.
pub mod thread {
    use std::thread as stdthread;

    /// Result of [`scope`]: `Err` carries a child panic payload.
    pub type ScopeResult<R> = stdthread::Result<R>;

    /// A handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = stdthread::ScopedJoinHandle<'scope, T>;

    /// The spawning context handed to the scope closure and to every
    /// spawned thread (crossbeam passes it so children can spawn
    /// siblings).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope's lifetime.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all children are joined before this returns. A panic in
    /// an unjoined child propagates (std semantics), so the `Ok` wrapper
    /// exists purely for crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(0u64);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    *sums.lock().unwrap() += part;
                });
            }
        })
        .unwrap();
        assert_eq!(sums.into_inner().unwrap(), 10);
    }
}
