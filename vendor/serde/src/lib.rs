//! Offline stand-in for the `serde` crate.
//!
//! The workspace only *derives* `Serialize` on a handful of report
//! types (no serializer is ever instantiated — the benches emit CSV and
//! text by hand), so the stand-in reduces serialization to marker
//! traits with blanket impls and inert derive macros. Swapping the real
//! serde back in requires no source changes.

/// Marker for serializable types. Blanket-implemented: every type in
/// this workspace is "serializable" as far as trait bounds go.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (unused, kept for API parity).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
