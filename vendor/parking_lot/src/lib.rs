//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`
//! primitives. Matches the upstream API shape the workspace uses:
//! `lock()` returns a guard directly (poison from a panicked holder is
//! swallowed, like parking_lot's non-poisoning locks).

use std::sync::{self, TryLockError};

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a lock.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
