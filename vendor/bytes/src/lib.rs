//! Offline stand-in for the `bytes` crate. The workspace declares the
//! dependency but never references it in code; these minimal owned
//! buffer types exist so dependency resolution succeeds offline.

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Append `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
