//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses: a deterministic
//! seedable RNG ([`rngs::StdRng`], xoshiro256++ seeded through
//! SplitMix64) plus the [`RngExt`] sampling helpers (`random`,
//! `random_bool`, `random_range`). Streams are *not* bit-compatible
//! with the upstream crate, but they are stable across platforms and
//! releases of this workspace, which is what campaign determinism
//! needs.

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait StandardValue {
    /// Sample one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    ///
    /// Panics when the range is empty, like the upstream crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Sampling helpers over any [`RngCore`] (the subset of upstream's
/// `Rng` this workspace calls).
pub trait RngExt: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: StandardValue>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Upstream-compatible alias: `rand::Rng` is the sampling trait.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = r.random_range(0..=2u32);
            assert!(w <= 2);
            let f = r.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
