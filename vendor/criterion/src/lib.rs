//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!`/`bench_function`
//! surface with a simple adaptive wall-clock measurement: warm up,
//! then run batches until ~`EOF_CRITERION_MS` milliseconds (default
//! 200) have elapsed, and report mean ns/iter. No statistics, plots,
//! or baselines — just honest numbers on stderr/stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched setup costs are amortised (accepted, not used — every
/// batch re-runs setup exactly once per measured routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh setup for every single iteration.
    PerIteration,
}

/// Measurement budget per benchmark, in milliseconds.
fn budget() -> Duration {
    let ms = std::env::var("EOF_CRITERION_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms.max(1))
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup.
        for _ in 0..3 {
            std_black_box(routine());
        }
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget {
            let t0 = Instant::now();
            std_black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Measure `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{id:<32} (no iterations)");
        } else {
            let ns = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{id:<32} {ns:>14.1} ns/iter ({} iters)", b.iters);
        }
        self
    }
}

/// Declare a group function running each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
