//! Inert derives for the offline serde stand-in: the `serde` crate in
//! `vendor/` blanket-implements its marker traits, so the derives only
//! need to exist (and swallow `#[serde(...)]` helper attributes).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
