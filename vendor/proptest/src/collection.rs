//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::collections::BTreeMap;

/// A size specification: fixed, `a..b`, or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut Rng) -> usize {
        if self.max <= self.min {
            return self.min;
        }
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector of `size` elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// Strategy for `BTreeMap<K, V>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut Rng) -> BTreeMap<K::Value, V::Value> {
        let want = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys shrink the map; retry a bounded number of
        // times to reach the requested size.
        for _ in 0..want.saturating_mul(16).max(16) {
            if map.len() >= want {
                break;
            }
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// A map of `size` entries with keys from `key` and values from
/// `value`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}
