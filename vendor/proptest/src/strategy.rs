//! The [`Strategy`] trait and combinators (generation-only — no
//! shrink trees).

use crate::test_runner::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (bounded retries, then the last
    /// candidate is returned regardless — tests should use permissive
    /// filters).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> S::Value {
        let mut candidate = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.f)(&candidate) {
                break;
            }
            candidate = self.inner.generate(rng);
        }
        candidate
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next() as u128 % span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + ((rng.next() as u128 % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

/// Character-class patterns (`"[a-z0-9_]{0,24}"`, `"\\PC{0,128}"`, …)
/// are string strategies.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
