//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::marker::PhantomData;

/// Types with a canonical uniform strategy.
pub trait Arbitrary {
    /// Sample one value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                rng.next() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut Rng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next() % 0x5f) as u8) as char
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
