//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use —
//! `proptest!`, `prop_assert*`, `prop_oneof!`, `any::<T>()`, integer
//! ranges, tuple strategies, `collection::{vec, btree_map}`, and
//! character-class string patterns like `"[a-z0-9_]{0,24}"` — with
//! deterministic generation and **no shrinking**: a failing case is
//! reported with its full `Debug` rendering instead of a minimised one.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(arg
/// in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)+);
                $crate::test_runner::run(
                    stringify!($name),
                    __config,
                    __strategy,
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        // Weights are ignored (uniform choice) — acceptable for a
        // generation-only stand-in.
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
