//! Deterministic case runner: generate N inputs, run the body, report
//! the first failure with its full input (no shrinking).

use crate::strategy::Strategy;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A deterministic xoshiro256++ generator for test inputs.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeded generator (SplitMix64-expanded).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        self.next() % bound
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property (`PROPTEST_CASES` env overrides).
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure raised by `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Execute `cases` generated inputs against `test`. Deterministic: the
/// input stream is a pure function of the property name.
pub fn run<S, F>(name: &str, config: ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let mut rng = Rng::new(fnv1a(name) ^ 0x50f7_e57e_5eed_0001);
    for case in 0..cases {
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                panic!("property '{name}' failed at case {case}: {e}\n       input: {rendered}")
            }
            Err(payload) => {
                eprintln!("property '{name}' panicked at case {case}; input: {rendered}");
                resume_unwind(payload);
            }
        }
    }
}
