//! Generation-only support for the character-class string patterns the
//! workspace's tests use: one class (or `\PC`) followed by an optional
//! `{m,n}` repetition, e.g. `"[a-z0-9_]{0,24}"` or
//! `"[ -~&&[^$#]]{0,128}"` (Java-style class intersection).

use crate::test_runner::Rng;
use std::collections::BTreeSet;

/// Characters considered "any printable" (`\PC`, class negation
/// universe): printable ASCII plus newline and tab.
fn universe() -> BTreeSet<char> {
    let mut set: BTreeSet<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
    set.insert('\n');
    set.insert('\t');
    set
}

fn parse_escape(p: &[char], i: &mut usize) -> char {
    // *i points at the char after '\'.
    let c = p[*i];
    *i += 1;
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parse `[...]` starting at `p[*i] == '['`; leaves `*i` one past the
/// closing `]`.
fn parse_class(p: &[char], i: &mut usize) -> BTreeSet<char> {
    assert_eq!(p[*i], '[', "pattern class must start with '['");
    *i += 1;
    let negated = p.get(*i) == Some(&'^');
    if negated {
        *i += 1;
    }
    let mut set = BTreeSet::new();
    let mut intersections: Vec<BTreeSet<char>> = Vec::new();
    while *i < p.len() && p[*i] != ']' {
        // `&&[...]` — intersect with a nested class.
        if p[*i] == '&' && p.get(*i + 1) == Some(&'&') && p.get(*i + 2) == Some(&'[') {
            *i += 2;
            intersections.push(parse_class(p, i));
            continue;
        }
        let first = if p[*i] == '\\' {
            *i += 1;
            parse_escape(p, i)
        } else {
            let c = p[*i];
            *i += 1;
            c
        };
        // `a-z` range (a trailing '-' right before ']' is a literal).
        if p.get(*i) == Some(&'-') && p.get(*i + 1).is_some_and(|&c| c != ']') {
            *i += 1;
            let last = if p[*i] == '\\' {
                *i += 1;
                parse_escape(p, i)
            } else {
                let c = p[*i];
                *i += 1;
                c
            };
            for code in (first as u32)..=(last as u32) {
                if let Some(c) = char::from_u32(code) {
                    set.insert(c);
                }
            }
        } else {
            set.insert(first);
        }
    }
    assert!(*i < p.len(), "unterminated character class");
    *i += 1; // consume ']'
    if negated {
        set = universe().difference(&set).copied().collect();
    }
    for other in intersections {
        set = set.intersection(&other).copied().collect();
    }
    set
}

/// Parse an optional `{m}` / `{m,n}` repetition; defaults to `{1}`.
fn parse_repeat(p: &[char], i: &mut usize) -> (usize, usize) {
    if p.get(*i) != Some(&'{') {
        return (1, 1);
    }
    *i += 1;
    let digits = |p: &[char], i: &mut usize| -> usize {
        let mut v = 0usize;
        while let Some(d) = p.get(*i).and_then(|c| c.to_digit(10)) {
            v = v * 10 + d as usize;
            *i += 1;
        }
        v
    };
    let min = digits(p, i);
    let max = if p.get(*i) == Some(&',') {
        *i += 1;
        digits(p, i)
    } else {
        min
    };
    assert_eq!(p.get(*i), Some(&'}'), "malformed repetition");
    *i += 1;
    (min, max)
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut Rng) -> String {
    let p: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let set: Vec<char> = if p.get(0) == Some(&'\\') && p.get(1) == Some(&'P') {
        // `\PC` — "not a control character".
        i = 3;
        universe().into_iter().collect()
    } else {
        parse_class(&p, &mut i).into_iter().collect()
    };
    let (min, max) = parse_repeat(&p, &mut i);
    assert_eq!(i, p.len(), "unsupported pattern tail in {pattern:?}");
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    let len = min + rng.below((max - min + 1) as u64) as usize;
    (0..len)
        .map(|_| set[rng.below(set.len() as u64) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(99)
    }

    #[test]
    fn simple_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9_]{0,24}", &mut r);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn intersection_with_negation() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[ -~&&[^$#]]{0,128}", &mut r);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) && c != '$' && c != '#'));
        }
    }

    #[test]
    fn bounded_min_len() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_from_pattern("[a-zA-Z0-9,:]{4,64}", &mut r);
            assert!((4..=64).contains(&s.len()));
        }
    }

    #[test]
    fn not_control() {
        let mut r = rng();
        let s = generate_from_pattern("\\PC{0,256}", &mut r);
        assert!(s.chars().all(|c| !c.is_control() || c == '\n' || c == '\t'));
    }

    #[test]
    fn escapes_and_trailing_dash() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9_\\[\\]():,= #\n-]{0,32}", &mut r);
            assert!(s.chars().all(|c| "[]():,= #\n-_".contains(c)
                || c.is_ascii_lowercase()
                || c.is_ascii_digit()));
        }
    }
}
