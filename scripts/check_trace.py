#!/usr/bin/env python3
"""Validate an EOF Chrome/Perfetto trace (results/<bench>.trace.json).

Checks, with a nonzero exit on any violation:

  1. the file parses as JSON with a non-empty ``traceEvents`` array;
  2. every event is one of the phases the exporter emits (``M`` thread
     metadata, ``X`` complete span, ``i`` instant) with the fields that
     phase requires;
  3. per track (tid), the ``X`` spans nest properly: sorted by start,
     every span is either fully contained in the enclosing open span or
     starts after it ends — partial overlap means the span recorder
     emitted garbage;
  4. every track with spans has a ``thread_name`` metadata record.

Usage: check_trace.py TRACE.json [--min-spans N]
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument(
        "--min-spans",
        type=int,
        default=1,
        help="minimum total X span events expected (default 1)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans_by_tid = defaultdict(list)
    named_tids = set()
    instants = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("M", "X", "i"):
            fail(f"event {i}: unexpected phase {ph!r}")
        if "pid" not in ev or "tid" not in ev:
            fail(f"event {i}: missing pid/tid")
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add(ev["tid"])
        elif ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, int) or not isinstance(dur, int) or ts < 0 or dur < 0:
                fail(f"event {i}: X span needs integer ts/dur >= 0, got ts={ts} dur={dur}")
            spans_by_tid[ev["tid"]].append((ts, ts + dur, ev.get("name", "?")))
        else:
            if not isinstance(ev.get("ts"), int):
                fail(f"event {i}: instant needs integer ts")
            instants += 1

    total_spans = sum(len(s) for s in spans_by_tid.values())
    if total_spans < args.min_spans:
        fail(f"expected >= {args.min_spans} span events, found {total_spans}")

    for tid, spans in spans_by_tid.items():
        if tid not in named_tids:
            fail(f"tid {tid} has spans but no thread_name metadata")
        # Longest-first at equal start so a parent precedes the children
        # it contains.
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        stack = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                p_start, p_end, p_name = stack[-1]
                fail(
                    f"tid {tid}: span {name!r} [{start}, {end}) partially overlaps "
                    f"{p_name!r} [{p_start}, {p_end})"
                )
            stack.append((start, end, name))

    print(
        f"check_trace: OK: {len(events)} events — {total_spans} spans across "
        f"{len(spans_by_tid)} track(s), {instants} instants, {len(named_tids)} named track(s)"
    )


if __name__ == "__main__":
    main()
