#!/usr/bin/env python3
"""Plot Figure 7/8 curves from the CSVs in results/.

Usage: python3 scripts/plot_curves.py results/fig7.csv [out-prefix]

Produces one PNG per target OS (fig7) or a single PNG (fig8) with the
mean line and min/max band per fuzzer, mirroring the paper's shaded
plots. Requires matplotlib; falls back to a text summary without it.
"""
import csv
import sys
from collections import defaultdict


def load(path):
    series = defaultdict(list)  # (os?, fuzzer) -> [(h, mean, min, max)]
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    for row in rows:
        key = (row.get("os", ""), row["fuzzer"])
        series[key].append(
            (float(row["hours"]), float(row["mean"]), float(row["min"]), float(row["max"]))
        )
    return series


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "results/fig7.csv"
    prefix = sys.argv[2] if len(sys.argv) > 2 else path.rsplit(".", 1)[0]
    series = load(path)
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable — text summary:")
        for (os_name, fuzzer), pts in sorted(series.items()):
            last = pts[-1]
            print(f"  {os_name or '-':10} {fuzzer:8} -> {last[1]:.0f} branches @ {last[0]:.0f}h")
        return

    oses = sorted({os_name for (os_name, _) in series})
    for os_name in oses:
        fig, ax = plt.subplots(figsize=(5, 3.2))
        for (o, fuzzer), pts in sorted(series.items()):
            if o != os_name:
                continue
            hs = [p[0] for p in pts]
            means = [p[1] for p in pts]
            los = [p[2] for p in pts]
            his = [p[3] for p in pts]
            (line,) = ax.plot(hs, means, label=fuzzer)
            ax.fill_between(hs, los, his, alpha=0.2, color=line.get_color())
        ax.set_xlabel("simulated hours")
        ax.set_ylabel("branch coverage")
        title = os_name or "application-level"
        ax.set_title(title)
        ax.legend(fontsize=8)
        fig.tight_layout()
        out = f"{prefix}-{title or 'all'}.png".replace(" ", "_")
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
